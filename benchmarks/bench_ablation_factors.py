"""Section 6 robustness ablations: feedback factors and initial
probabilities.

"the probabilities at each node do not need to increase and decrease by a
precise factor ... Similarly, the initial values ... may vary from node to
node, without any significant impact on performance".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.experiments.ablations import (
    factor_ablation,
    initial_probability_ablation,
)
from repro.experiments.tables import format_table


@pytest.fixture(scope="module")
def factors(scale):
    return factor_ablation(
        n=scale.ablation_n, trials=scale.ablation_trials, master_seed=1601
    )


@pytest.fixture(scope="module")
def initials(scale):
    return initial_probability_ablation(
        n=scale.ablation_n, trials=scale.ablation_trials, master_seed=1602
    )


def test_ablation_regenerate(benchmark, scale):
    def run_small_ablation():
        return factor_ablation(
            factor_pairs=((0.5, 2.0), (0.3, 3.0)),
            n=60,
            trials=5,
            master_seed=5,
        )

    result = benchmark(run_small_ablation)
    assert len(result.points) == 2


def test_factor_robustness(benchmark, factors, scale):
    rows = [
        [p.extra["down"], p.extra["up"], f"{p.mean:.1f}", f"{p.std:.1f}"]
        for p in factors.points
    ]
    benchmark(
        format_table, ["down factor", "up factor", "mean rounds", "std"], rows
    )
    report(
        f"ABLATION (scale={scale.name}): feedback factors on "
        f"G({scale.ablation_n}, 1/2)",
        format_table(["down factor", "up factor", "mean rounds", "std"], rows),
    )
    baseline = factors.points[0].mean  # (0.5, 2.0) = the paper's algorithm
    for point in factors.points[1:]:
        assert point.mean < 3.0 * baseline, point.series


def test_initial_probability_robustness(benchmark, initials, scale):
    rows = [
        [p.x, f"{p.mean:.1f}", f"{p.std:.1f}"] for p in initials.points
    ]
    benchmark(format_table, ["initial p", "mean rounds", "std"], rows)
    report(
        f"ABLATION (scale={scale.name}): initial probabilities on "
        f"G({scale.ablation_n}, 1/2)",
        format_table(["initial p", "mean rounds", "std"], rows),
    )
    baseline = initials.points[0].mean  # p0 = 1/2
    for point in initials.points[1:]:
        assert point.mean < 3.0 * baseline, point.series
