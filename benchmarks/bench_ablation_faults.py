"""Robustness under channel noise (extending the Section 6 claims).

The fault model perturbs only the probability-feedback observations; the
output must remain a valid MIS (validated inside the driver) and the round
count must degrade gracefully, not collapse.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.experiments.ablations import fault_ablation
from repro.experiments.tables import format_table


@pytest.fixture(scope="module")
def faults(scale):
    return fault_ablation(
        loss_probabilities=(0.0, 0.1, 0.2),
        spurious_probabilities=(0.0, 0.1),
        n=min(scale.ablation_n, 120),
        trials=max(scale.ablation_trials // 2, 5),
        master_seed=1603,
    )


def test_fault_regenerate(benchmark):
    def run_small():
        return fault_ablation(
            loss_probabilities=(0.1,),
            spurious_probabilities=(0.1,),
            n=40,
            trials=3,
            master_seed=6,
        )

    result = benchmark(run_small)
    assert len(result.points) == 1


def test_noise_degrades_gracefully(benchmark, faults, scale):
    rows = [
        [p.extra["loss"], p.extra["spurious"], f"{p.mean:.1f}", f"{p.std:.1f}"]
        for p in faults.points
    ]
    benchmark(
        format_table, ["beep loss", "spurious rate", "mean rounds", "std"], rows
    )
    report(
        f"ABLATION (scale={scale.name}): noisy feedback channel",
        format_table(
            ["beep loss", "spurious rate", "mean rounds", "std"], rows
        ),
    )
    clean = next(
        p.mean
        for p in faults.points
        if p.extra["loss"] == 0.0 and p.extra["spurious"] == 0.0
    )
    for point in faults.points:
        # Every noisy configuration terminates within a small multiple of
        # the clean round count (every trial also verified MIS-ness).
        assert point.mean < 5.0 * clean, point.series
