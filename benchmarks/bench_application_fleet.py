"""Application kernel vs the per-node MIS-peeling loop on one colouring cell.

Before ISSUE 6 the MIS applications (colouring, matching, dominating and
ruling sets) only ran through the per-node reductions in
:mod:`repro.applications` — one Python MIS run per peeling layer, per
trial.  This bench runs one identical colouring cell through both
runners:

- **fleet**: :class:`repro.engine.applications.ApplicationFleetSimulator`
  with :class:`~repro.engine.applications.ColoringRule` — every trial's
  full peeling stack as one counter-mode lockstep batch;
- **loop**: :func:`repro.applications.coloring.mis_coloring` with the
  per-node :class:`~repro.beeping.feedback.FeedbackMIS` reference, one
  trial at a time.

The two consume randomness differently (the loop side burns `Random`
streams, the fleet side the counter fabric) and agree in law only — the
exact bit-equality story lives in ``tests/engine/test_applications.py``,
where the loop side replays the fleet's draws via ``EngineMIS``.  Here
both validate every trial and the fleet side must clear the ISSUE's
conservative >=3x CI floor.  Results land in
``BENCH_application_fleet.json`` via the shared conftest helper.

Run with ``pytest benchmarks/bench_application_fleet.py``.
"""

from __future__ import annotations

import time
from random import Random

from benchmarks.conftest import report, write_bench_result
from repro.applications.coloring import mis_coloring
from repro.beeping.rng import derive_seed_block, spawn_rng
from repro.engine.applications import ApplicationFleetSimulator, ColoringRule
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 80
EDGE_PROBABILITY = 0.15
TRIALS = 16
MASTER_SEED = 1606
SPEEDUP_FLOOR = 3.0


def _make_graph():
    return gnp_random_graph(N, EDGE_PROBABILITY, Random(MASTER_SEED))


def _run_fleet(graph):
    seeds = derive_seed_block(MASTER_SEED, 0, count=TRIALS)
    simulator = ApplicationFleetSimulator(graph, ColoringRule())
    return simulator.run_fleet(seeds, validate=True)


def _run_loop(graph):
    return [
        mis_coloring(graph, spawn_rng(MASTER_SEED, 1, trial))
        for trial in range(TRIALS)
    ]


def _measure(graph, repeats: int = 3):
    fleet_run = loop_results = None
    fleet_seconds = loop_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fleet_run = _run_fleet(graph)
        fleet_seconds = min(fleet_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        loop_results = _run_loop(graph)
        loop_seconds = min(loop_seconds, time.perf_counter() - start)
    return {
        "fleet_seconds": fleet_seconds,
        "loop_seconds": loop_seconds,
        "speedup": loop_seconds / max(fleet_seconds, 1e-9),
        "fleet_run": fleet_run,
        "loop_results": loop_results,
    }


def test_application_fleet_speedup_floor():
    graph = _make_graph()
    measurement = _measure(graph)
    if measurement["speedup"] < SPEEDUP_FLOOR:
        # One retry absorbs a noisy-neighbour first attempt on CI boxes.
        retry = _measure(graph, repeats=5)
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    speedup = measurement["speedup"]
    rows = [
        ["per-node peeling loop (mis_coloring)",
         f"{measurement['loop_seconds'] * 1000:.1f}"],
        ["application fleet (ColoringRule)",
         f"{measurement['fleet_seconds'] * 1000:.1f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    report(
        "APPLICATION FLEET: lockstep colouring vs per-node peeling "
        f"(n={N}, trials={TRIALS})",
        format_table(["runner", "ms"], rows),
    )
    write_bench_result(
        "application_fleet",
        params={
            "n": N,
            "edge_probability": EDGE_PROBABILITY,
            "trials": TRIALS,
            "master_seed": MASTER_SEED,
            "algorithm": "mis-coloring",
        },
        results={
            "fleet_seconds": measurement["fleet_seconds"],
            "loop_seconds": measurement["loop_seconds"],
            "speedup": speedup,
        },
        floor=SPEEDUP_FLOOR,
    )

    # Same cell out of both runners, every trial validated inside; the
    # runs agree in law, so colour counts and rounds must be in the same
    # ballpark.
    fleet_run, loop_results = measurement["fleet_run"], measurement["loop_results"]
    assert fleet_run.trials == len(loop_results) == TRIALS
    fleet_colors = sum(fleet_run.num_colors(t) for t in range(TRIALS)) / TRIALS
    loop_colors = sum(r.num_colors for r in loop_results) / TRIALS
    assert abs(fleet_colors - loop_colors) <= 0.5 * max(fleet_colors, loop_colors)
    fleet_rounds = sum(int(r) for r in fleet_run.rounds) / TRIALS
    loop_rounds = sum(r.total_rounds for r in loop_results) / TRIALS
    assert abs(fleet_rounds - loop_rounds) <= 0.5 * max(fleet_rounds, loop_rounds)

    assert speedup >= SPEEDUP_FLOOR, (
        f"application fleet only {speedup:.1f}x faster than the per-node "
        f"peeling loop (floor {SPEEDUP_FLOOR}x)"
    )
