"""Section 5: bit complexity per channel.

"the expected bit complexity per channel for this algorithm does not
increase at all with the number of nodes."  This bench measures bits per
channel for the feedback algorithm across sizes (must stay flat and small)
and contrasts it with the message-passing baselines, whose per-channel
traffic carries O(log n)-bit values.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import report
from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.luby import LubyMIS
from repro.algorithms.metivier import MetivierMIS
from repro.beeping.rng import spawn_rng
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph


def _bits_per_channel(run) -> float:
    if run.graph.num_edges == 0:
        return 0.0
    return run.bits / run.graph.num_edges


@pytest.fixture(scope="module")
def bit_sweep(scale):
    sizes = [n for n in scale.figure5_sizes if n >= 25]
    trials = max(scale.figure5_trials // 10, 5)
    algorithms = {
        "feedback": FeedbackMIS(),
        "luby-permutation": LubyMIS("permutation"),
        "metivier": MetivierMIS(),
    }
    results = {}
    for name, algorithm in algorithms.items():
        per_size = []
        for size_index, n in enumerate(sizes):
            values = []
            for t in range(trials):
                graph = gnp_random_graph(
                    n, 0.5, spawn_rng(1900, size_index, t)
                )
                run = algorithm.run(graph, spawn_rng(1901, size_index, t))
                values.append(_bits_per_channel(run))
            per_size.append(sum(values) / len(values))
        results[name] = per_size
    return sizes, trials, results


def test_bits_regenerate(benchmark):
    algorithm = FeedbackMIS()

    def run_once():
        graph = gnp_random_graph(60, 0.5, spawn_rng(3, 0))
        return algorithm.run(graph, spawn_rng(4, 0))

    run = benchmark(run_once)
    assert run.bits > 0


def test_bits_per_channel_flat_for_feedback(benchmark, bit_sweep, scale):
    sizes, trials, results = bit_sweep
    benchmark(format_table, ["x"], [[s] for s in sizes])
    rows = []
    for i, n in enumerate(sizes):
        rows.append(
            [
                n,
                f"{results['feedback'][i]:.2f}",
                f"{results['luby-permutation'][i]:.1f}",
                f"{results['metivier'][i]:.1f}",
            ]
        )
    report(
        f"SECTION 5 (scale={scale.name}): mean bits per channel on G(n, 1/2)",
        format_table(
            ["n", "feedback (1-bit beeps)", "luby (log n-bit values)",
             "metivier (bitwise values)"],
            rows,
        ),
    )
    feedback = results["feedback"]
    # Flat: the largest size costs at most ~2x the smallest, and stays
    # under a small constant of bits per channel.
    assert feedback[-1] < 2.0 * feedback[0] + 0.5
    assert max(feedback) < 8.0
    # The numeric-message baselines carry far more traffic per channel.
    assert results["luby-permutation"][-1] > 3.0 * feedback[-1]
