"""Bitboard fleet backend vs. the float32 GEMM dense backend at n = 1000.

The dense fleet backend pays one ``(trials, n) x (n, n)`` float32 GEMM
per reduction — at n = 1000 that is a 4 MB adjacency operand and a
megaflop per round even after most trials have finished.  The bitboard
backend (:mod:`repro.engine.bitboard`) packs flags and adjacency rows
into ``uint64`` lanes (128 KB for the whole adjacency), computes the
same reductions with AND + popcount, compacts finished trials away
instead of masking them, and hands the late sparse rounds to an
entry-level frontier.  This bench measures the swap on the ISSUE's
headline workload — one fleet batch of ``G(1000, 1/2)`` with 100 trials
in counter rng mode:

- ``test_bitboard_fleet_floor`` (default run, CI): the bitboard backend
  must clear **2x** over the dense backend.  Measured margin on the
  recording machine: ~3.9-4.0x (``BENCH_bitboard_fleet.json``,
  ``docs/perf.md``).

Simulator construction (adjacency packing vs. the float32 densification)
is inside the timed region on both sides: the sweep pays it per cell, so
the bench does too.  Both sides run the identical workload — the
conformance suite pins them bit for bit, and the sanity test below
re-checks it on this exact cell.

Run with ``pytest benchmarks/bench_bitboard_fleet.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import report, write_bench_result
from repro.beeping.rng import RngStream, derive_seed_block
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 1000
TRIALS = 100
EDGE_PROBABILITY = 0.5
MASTER_SEED = 2207
CELL_FLOOR = 2.0


def _cell_graph():
    return gnp_random_graph(N, EDGE_PROBABILITY, RngStream(MASTER_SEED).child(0))


def _seeds():
    return derive_seed_block(MASTER_SEED, 0, 1, count=TRIALS)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(repeats: int) -> dict:
    graph = _cell_graph()
    seeds = _seeds()

    def dense_cell():
        FleetSimulator(graph, backend="dense").run_fleet(
            FeedbackRule(), seeds, rng_mode="counter"
        )

    def bitboard_cell():
        FleetSimulator(graph, backend="bitboard").run_fleet(
            FeedbackRule(), seeds, rng_mode="counter"
        )

    dense_cell()
    bitboard_cell()  # warm BLAS and lane caches
    dense_seconds = _best_of(dense_cell, repeats)
    bitboard_seconds = _best_of(bitboard_cell, repeats)
    return {
        "n": N,
        "trials": TRIALS,
        "dense_seconds": dense_seconds,
        "bitboard_seconds": bitboard_seconds,
        "speedup": dense_seconds / max(bitboard_seconds, 1e-9),
    }


def _report_and_record(measurement: dict) -> None:
    report(
        "BITBOARD vs float32-GEMM dense fleet backend "
        f"(n={N}, trials={TRIALS}, counter rng)",
        format_table(
            ["path", "ms"],
            [
                [
                    "dense: float32 GEMM per round",
                    f"{measurement['dense_seconds'] * 1000:.1f}",
                ],
                [
                    "bitboard: uint64 AND+popcount",
                    f"{measurement['bitboard_seconds'] * 1000:.1f}",
                ],
                ["speedup", f"{measurement['speedup']:.1f}x"],
            ],
        ),
    )
    write_bench_result(
        "bitboard_fleet",
        params={
            "n": N,
            "trials": TRIALS,
            "edge_probability": EDGE_PROBABILITY,
            "master_seed": MASTER_SEED,
        },
        results={
            key: measurement[key]
            for key in ("dense_seconds", "bitboard_seconds", "speedup")
        },
        floor=CELL_FLOOR,
    )


def test_bitboard_fleet_floor():
    """The n=1000 headline cell must clear the 2x CI floor."""
    measurement = _measure(repeats=3)
    if measurement["speedup"] < CELL_FLOOR:
        # One re-measure absorbs scheduler noise on shared CI boxes; a
        # real regression fails both samples.
        retry = _measure(repeats=3)
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    _report_and_record(measurement)
    assert measurement["speedup"] >= CELL_FLOOR, (
        f"bitboard backend only {measurement['speedup']:.2f}x faster than "
        f"the dense fleet backend on the n={N} cell (floor {CELL_FLOOR}x)"
    )


def test_bitboard_cell_is_reproducible_and_complete():
    """The timed workload is sane: bit-identical to the dense backend."""
    graph = _cell_graph()
    seeds = _seeds()[:10]
    dense = FleetSimulator(graph, backend="dense").run_fleet(
        FeedbackRule(), seeds, validate=True, rng_mode="counter"
    )
    bitboard = FleetSimulator(graph, backend="bitboard").run_fleet(
        FeedbackRule(), seeds, validate=True, rng_mode="counter"
    )
    assert np.array_equal(dense.rounds, bitboard.rounds)
    assert np.array_equal(dense.membership, bitboard.membership)
    assert np.array_equal(dense.beeps_by_node, bitboard.beeps_by_node)
