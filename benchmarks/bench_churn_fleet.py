"""Churn-injected fleet vs. the per-trial engine loop.

ISSUE 9 threads the churn axis (leaves, sleeps, wakes, joins with
self-repair) through every engine.  The fleet applies one `(trials, n)`
mask batch per event round and shares the deterministic resolution pass
across all live trials; the per-trial loop rebuilds the same masks once
per trial.  This bench runs one identical churned workload — same
universe graph, same schedule, same seeds — through both and asserts a
conservative >= 2x floor for the fleet side (the measured margin is far
larger; the floor absorbs noisy CI boxes).

Both sides validate every trial against the surviving subgraph and must
agree bit for bit — a slow-but-wrong kernel cannot pass.

Run with ``pytest benchmarks/bench_churn_fleet.py``.
"""

from __future__ import annotations

import time
from random import Random

import numpy as np

from benchmarks.conftest import report, write_bench_result
from repro.beeping.faults import ChurnSchedule, FaultModel
from repro.beeping.rng import derive_seed_block
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.engine.simulator import VectorizedSimulator
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 150
EDGE_PROBABILITY = 0.3
TRIALS = 64
MASTER_SEED = 2203
GRAPH_SEED = 907
SPEEDUP_FLOOR = 2.0

CHURN_EVENTS = (
    ("leave", 1, 0),
    ("leave", 2, 1),
    ("sleep", 2, 7),
    ("wake", 6, 7),
    ("join", 4, N, (0, 3, 9)),
    ("join", 4, N + 1, (5, 11)),
    ("sleep", 5, 13),
    ("wake", 9, 13),
    ("leave", 8, N + 1),
)


def _workload():
    graph = gnp_random_graph(N, EDGE_PROBABILITY, Random(GRAPH_SEED))
    faults = FaultModel(
        churn_schedule=ChurnSchedule.from_events(CHURN_EVENTS)
    )
    seeds = derive_seed_block(MASTER_SEED, 0, count=TRIALS)
    return graph, faults, seeds


def _run_fleet(graph, faults, seeds):
    return FleetSimulator(graph).run_fleet(
        FeedbackRule(), seeds, validate=True, faults=faults,
        rng_mode="counter",
    )


def _run_per_trial(graph, faults, seeds):
    simulator = VectorizedSimulator(graph)
    return [
        simulator.run(
            FeedbackRule(), int(seed), validate=True, faults=faults,
            rng_mode="counter",
        )
        for seed in seeds
    ]


def _measure(repeats: int = 3):
    graph, faults, seeds = _workload()
    fleet_seconds = min(
        _timed(lambda: _run_fleet(graph, faults, seeds))[1]
        for _ in range(repeats)
    )
    loop_seconds = min(
        _timed(lambda: _run_per_trial(graph, faults, seeds))[1]
        for _ in range(repeats)
    )
    return {
        "fleet_seconds": fleet_seconds,
        "loop_seconds": loop_seconds,
        "speedup": loop_seconds / max(fleet_seconds, 1e-9),
    }


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _report_and_record(measurement) -> None:
    report(
        "CHURN SWEEP: fleet vs per-trial loop "
        f"(n={N}, trials={TRIALS}, events={len(CHURN_EVENTS)})",
        format_table(
            ["runner", "ms"],
            [
                ["per-trial loop", f"{measurement['loop_seconds'] * 1000:.1f}"],
                ["fleet (batched churn)",
                 f"{measurement['fleet_seconds'] * 1000:.1f}"],
                ["speedup", f"{measurement['speedup']:.1f}x"],
            ],
        ),
    )
    write_bench_result(
        "churn_fleet",
        params={
            "n": N,
            "trials": TRIALS,
            "edge_probability": EDGE_PROBABILITY,
            "master_seed": MASTER_SEED,
            "graph_seed": GRAPH_SEED,
            "churn_events": [list(event) for event in CHURN_EVENTS],
        },
        results={
            key: measurement[key]
            for key in ("loop_seconds", "fleet_seconds", "speedup")
        },
        floor=SPEEDUP_FLOOR,
    )


def test_churn_fleet_speedup_floor():
    measurement = _measure(repeats=3)
    if measurement["speedup"] < SPEEDUP_FLOOR:
        # One re-measure absorbs scheduler noise on shared CI boxes; a
        # real regression fails both samples.
        retry = _measure(repeats=3)
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    _report_and_record(measurement)
    assert measurement["speedup"] >= SPEEDUP_FLOOR, (
        f"churned fleet only {measurement['speedup']:.2f}x faster than the "
        f"per-trial loop (floor {SPEEDUP_FLOOR}x)"
    )


def test_churn_workload_is_reproducible_and_valid():
    """The timed workload is sane: the fleet agrees bit for bit with the
    per-trial engine, every trial recovered, repair times recorded."""
    graph, faults, seeds = _workload()
    fleet = _run_fleet(graph, faults, seeds[:8])
    runs = _run_per_trial(graph, faults, seeds[:8])
    for t, run in enumerate(runs):
        trial = fleet.trial_run(t)
        assert trial.rounds == run.rounds
        assert trial.mis == run.mis
        assert trial.absent == run.absent
        assert trial.repair_rounds == run.repair_rounds
        assert trial.recovered and run.recovered
        assert np.array_equal(trial.beeps_by_node, run.beeps_by_node)
