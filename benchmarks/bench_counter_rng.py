"""Counter-mode armada vs. the PR-3 stream fleet on a figure-shaped cell.

After PR 3 the fleet engine was tensorised everywhere except two Python
loops on the figure hot path: the per-trial ``Generator.random`` draw
loop executed every round, and the per-graph round-loop in
``run_fleet_trials``.  The counter RNG fabric deletes the first (each
round's uniforms are one stateless block call, and the sparse frontier
evaluates single entries), and the armada batch deletes the second (all
same-n graph groups advance in one slot-row lockstep loop with a sparse
frontier tail).  This bench measures both on the ISSUE's acceptance
workload — a Figure 3-shaped cell: n = 200, trials = 100 spread over 5
graphs of ``G(n, 1/2)``:

The measured quantity is everything ``run_fleet_trials`` pays per cell
beyond drawing the graphs (which this PR does not touch and is identical
on both sides): simulator construction plus the lockstep execution.
Stream side: five per-graph :class:`FleetSimulator` batches — exactly
the PR-3 path.  Counter side: one :class:`ArmadaSimulator` batch.

Two floors, following the ISSUE's acceptance shape:

- ``test_counter_armada_cell_floor`` (default run, CI): the named
  n = 200 cell must clear **2x**.
- ``test_counter_armada_paper_scale_floor`` (``-m slow``): the same cell
  shape at the figure's larger sizes (n = 800; Figure 3 runs to
  n = 1000), where the armada's margin keeps growing, must clear **3x**.

The speedup grows with n because the armada amortises more per round as
the stream side's per-graph Python costs (adjacency build, draw loop,
round bodies) scale up, while the sparse frontier keeps the armada's
tail rounds entry-proportional.  Both sides run identical workloads;
only the execution strategy differs.  (The two rng modes draw different
uniforms, hence different — equally valid — trajectories; per-mode
bit-reproducibility is the conformance suite's job, not this file's.)
Measured numbers land in ``BENCH_counter_rng*.json`` and
``docs/perf.md``.

Run with ``pytest benchmarks/bench_counter_rng.py`` (add ``-m slow``
for the paper-scale floor).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import report, write_bench_result
from repro.beeping.rng import RngStream, derive_seed_block
from repro.engine.fleet import ArmadaSimulator, FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 200
PAPER_N = 800
TRIALS = 100
GRAPHS = 5
EDGE_PROBABILITY = 0.5
MASTER_SEED = 1604
CELL_FLOOR = 2.0
PAPER_FLOOR = 3.0


def _cell_graphs(n: int):
    stream = RngStream(MASTER_SEED)
    return [
        gnp_random_graph(n, EDGE_PROBABILITY, stream.child(g, 0))
        for g in range(GRAPHS)
    ]


def _seed_rows():
    return [
        derive_seed_block(MASTER_SEED, g, 1, count=TRIALS // GRAPHS)
        for g in range(GRAPHS)
    ]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_cell(n: int, repeats: int) -> dict:
    graphs = _cell_graphs(n)
    seed_rows = _seed_rows()

    def stream_cell():
        for graph, row in zip(graphs, seed_rows):
            FleetSimulator(graph).run_fleet(
                FeedbackRule(), row, rng_mode="stream"
            )

    def counter_cell():
        ArmadaSimulator(graphs).run_armada(FeedbackRule(), seed_rows)

    stream_cell()
    counter_cell()  # warm BLAS and lane caches
    stream_seconds = _best_of(stream_cell, repeats)
    counter_seconds = _best_of(counter_cell, repeats)
    return {
        "n": n,
        "trials": TRIALS,
        "graphs": GRAPHS,
        "stream_seconds": stream_seconds,
        "counter_seconds": counter_seconds,
        "speedup": stream_seconds / max(counter_seconds, 1e-9),
    }


def _report_and_record(name: str, measurement: dict, floor: float) -> None:
    report(
        "COUNTER RNG + ARMADA vs the PR-3 stream fleet path "
        f"(n={measurement['n']}, trials={TRIALS}, graphs={GRAPHS})",
        format_table(
            ["path", "ms"],
            [
                [
                    "stream: per-graph fleets (PR-3)",
                    f"{measurement['stream_seconds'] * 1000:.1f}",
                ],
                [
                    "counter: one armada batch",
                    f"{measurement['counter_seconds'] * 1000:.1f}",
                ],
                ["speedup", f"{measurement['speedup']:.1f}x"],
            ],
        ),
    )
    write_bench_result(
        name,
        params={
            "n": measurement["n"],
            "trials": TRIALS,
            "graphs": GRAPHS,
            "edge_probability": EDGE_PROBABILITY,
            "master_seed": MASTER_SEED,
        },
        results={
            key: measurement[key]
            for key in ("stream_seconds", "counter_seconds", "speedup")
        },
        floor=floor,
    )


def test_counter_armada_cell_floor():
    """The named acceptance cell (n=200) must clear the 2x CI floor."""
    measurement = _measure_cell(N, repeats=5)
    if measurement["speedup"] < CELL_FLOOR:
        # One re-measure absorbs scheduler noise on shared CI boxes; a
        # real regression fails both samples.
        retry = _measure_cell(N, repeats=5)
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    _report_and_record("counter_rng", measurement, CELL_FLOOR)
    assert measurement["speedup"] >= CELL_FLOOR, (
        f"counter-mode armada only {measurement['speedup']:.2f}x faster "
        f"than the stream fleet path on the n={N} figure3 cell "
        f"(floor {CELL_FLOOR}x)"
    )


@pytest.mark.slow
def test_counter_armada_paper_scale_floor():
    """At the figure's larger sizes the margin must clear 3x."""
    measurement = _measure_cell(PAPER_N, repeats=3)
    _report_and_record("counter_rng_paper", measurement, PAPER_FLOOR)
    assert measurement["speedup"] >= PAPER_FLOOR, (
        f"counter-mode armada only {measurement['speedup']:.2f}x faster "
        f"than the stream fleet path on the n={PAPER_N} figure3 cell "
        f"(floor {PAPER_FLOOR}x)"
    )


def test_counter_cell_is_reproducible_and_complete():
    """The timed workload is sane: bit-identical per-graph fleet runs."""
    graphs = _cell_graphs(N)
    seed_rows = _seed_rows()
    runs = ArmadaSimulator(graphs).run_armada(
        FeedbackRule(), seed_rows, validate=True
    )
    assert [run.trials for run in runs] == [TRIALS // GRAPHS] * GRAPHS
    for graph, row, run in zip(graphs, seed_rows, runs):
        lone = FleetSimulator(graph).run_fleet(
            FeedbackRule(), row, rng_mode="counter"
        )
        assert np.array_equal(run.rounds, lone.rounds)
        assert np.array_equal(run.beeps_by_node, lone.beeps_by_node)
