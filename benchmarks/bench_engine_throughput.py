"""Engine microbenchmarks: reference vs vectorised throughput, and the
baseline algorithms' wall-clock on a common workload.

Not a paper artefact — this is the harness's own performance regression
suite, and the justification for having two engines at all.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.luby import LubyMIS
from repro.algorithms.metivier import MetivierMIS
from repro.beeping.rng import spawn_rng
from repro.engine.rules import FeedbackRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.random_graphs import gnp_random_graph


@pytest.fixture(scope="module")
def workload():
    return gnp_random_graph(200, 0.5, spawn_rng(31, 0))


def test_reference_engine_throughput(benchmark, workload):
    algorithm = FeedbackMIS()
    counter = iter(range(10_000))

    def run_once():
        return algorithm.run(workload, Random(next(counter)))

    run = benchmark(run_once)
    assert run.rounds >= 1


def test_vectorized_engine_throughput(benchmark, workload):
    simulator = VectorizedSimulator(workload)
    counter = iter(range(10_000))

    def run_once():
        return simulator.run(FeedbackRule(), next(counter))

    run = benchmark(run_once)
    assert run.rounds >= 1


def test_fleet_engine_throughput(benchmark, workload):
    """Whole 32-trial batches per iteration — the fleet's unit of work."""
    from repro.beeping.rng import derive_seed_block
    from repro.engine.fleet import FleetSimulator

    simulator = FleetSimulator(workload)
    counter = iter(range(10_000))

    def run_once():
        seeds = derive_seed_block(97, next(counter), count=32)
        return simulator.run_fleet(FeedbackRule(), seeds)

    run = benchmark(run_once)
    assert int(run.rounds.min()) >= 1


def test_luby_throughput(benchmark, workload):
    algorithm = LubyMIS("permutation")
    counter = iter(range(10_000))

    def run_once():
        return algorithm.run(workload, Random(next(counter)))

    run = benchmark(run_once)
    assert run.rounds >= 1


def test_metivier_throughput(benchmark, workload):
    algorithm = MetivierMIS()
    counter = iter(range(10_000))

    def run_once():
        return algorithm.run(workload, Random(next(counter)))

    run = benchmark(run_once)
    assert run.rounds >= 1
