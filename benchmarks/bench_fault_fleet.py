"""Fault-injected fleet vs. the per-node reference engine.

Before ISSUE 3 every fault-injected trial had to run on the per-node
reference engine; now the fleet engine injects the same fault model as
vectorised masks on its ``(trials, n)`` tensors.  This bench runs one
identical robustness grid — same graph family, same fault levels, same
trial counts — through both runners and asserts the ISSUE's acceptance
floor: the fleet side at least 3x faster (the measured margin is far
larger; the floor is deliberately conservative for CI boxes).

The two sides sample beep loss differently (per-edge draws vs. the
collapsed ``1 - loss**k`` per-node draw), so they agree in law, not bit
for bit — both are validated trial by trial.

Run with ``pytest benchmarks/bench_fault_fleet.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.faults import FaultModel
from repro.beeping.rng import derive_seed
from repro.engine.rules import FeedbackRule
from repro.experiments.runner import run_fleet_trials, run_trials
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 120
EDGE_PROBABILITY = 0.5
TRIALS = 24
LOSS_LEVELS = (0.0, 0.1)
SPURIOUS_LEVELS = (0.0, 0.1)
MASTER_SEED = 1604
SPEEDUP_FLOOR = 3.0


def _grid():
    index = 0
    for loss in LOSS_LEVELS:
        for spurious in SPURIOUS_LEVELS:
            yield index, FaultModel(
                beep_loss_probability=loss,
                spurious_beep_probability=spurious,
            )
            index += 1


def _graph_factory(rng):
    return gnp_random_graph(N, EDGE_PROBABILITY, rng)


def _run_fleet_grid():
    return [
        run_fleet_trials(
            FeedbackRule,
            _graph_factory,
            TRIALS,
            derive_seed(MASTER_SEED, index),
            faults=faults,
        )
        for index, faults in _grid()
    ]


def _run_reference_grid():
    return [
        run_trials(
            FeedbackMIS,
            _graph_factory,
            TRIALS,
            derive_seed(MASTER_SEED, index),
            faults=faults,
        )
        for index, faults in _grid()
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_fault_fleet_speedup_floor():
    fleet_rows, fleet_seconds = _timed(_run_fleet_grid)
    reference_rows, reference_seconds = _timed(_run_reference_grid)

    speedup = reference_seconds / max(fleet_seconds, 1e-9)
    rows = [
        ["reference (per-node)", f"{reference_seconds * 1000:.1f}"],
        ["fleet (vectorised faults)", f"{fleet_seconds * 1000:.1f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    report(
        "FAULT SWEEP: fleet vs reference engine "
        f"(n={N}, trials={TRIALS}, grid={len(LOSS_LEVELS)}x"
        f"{len(SPURIOUS_LEVELS)})",
        format_table(["engine", "ms"], rows),
    )

    # Same grid shape out of both runners, every trial validated inside.
    assert len(fleet_rows) == len(reference_rows)
    for fleet_cell, reference_cell in zip(fleet_rows, reference_rows):
        assert len(fleet_cell) == len(reference_cell) == TRIALS

    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet fault sweep only {speedup:.1f}x faster than the reference "
        f"engine (floor {SPEEDUP_FLOOR}x)"
    )
