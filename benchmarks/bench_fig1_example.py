"""Figure 1A: an MIS selected from a 20-node random graph.

Regenerates the figure's artefact — a verified MIS on a sparse 20-node
random graph, selected by the paper's own algorithm — and renders it.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.experiments.figures import figure1_example
from repro.graphs.io import to_dot
from repro.graphs.validation import verify_mis
from repro.viz.graph_render import render_mis_listing


def test_fig1_regenerate(benchmark):
    graph, mis = benchmark(figure1_example)
    verify_mis(graph, mis)


def test_fig1_report(benchmark):
    graph, mis = figure1_example(seed=20)
    benchmark(verify_mis, graph, mis)
    body = (
        f"graph: 20 nodes, {graph.num_edges} edges\n"
        f"MIS ({len(mis)} nodes): {sorted(mis)}\n\n"
        f"{render_mis_listing(graph, mis)}\n\n"
        f"Graphviz DOT (render with `dot -Tpng`):\n{to_dot(graph, mis)}"
    )
    report("FIGURE 1A: an MIS of a 20-node random graph", body)
    # The paper's example picks 5 of 20 vertices; sparse 20-node graphs
    # give MISes of comparable size.
    assert 3 <= len(mis) <= 12
