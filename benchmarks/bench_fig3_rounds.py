"""Figure 3: mean rounds vs n on G(n, 1/2), sweep vs feedback.

Paper's claims checked here:

- the sweep algorithm's mean rounds track ``log₂² n`` (upper dashed line);
- the feedback algorithm's mean rounds track ``2.5·log₂ n`` (lower dotted
  line);
- feedback beats sweep at every size, with a growing gap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.analysis.theory import (
    figure3_feedback_reference,
    figure3_sweep_reference,
)
from repro.experiments.figures import figure3_series
from repro.experiments.tables import format_table
from repro.viz.ascii_plots import plot_experiment


@pytest.fixture(scope="module")
def figure3(scale):
    return figure3_series(
        sizes=scale.figure3_sizes,
        trials=scale.figure3_trials,
        master_seed=1303,
    )


def test_fig3_regenerate(benchmark, scale):
    """Benchmark one (feedback, n=max) batch — the figure's dominant cost."""
    from repro.beeping.rng import spawn_rng
    from repro.engine.batch import run_batch
    from repro.engine.rules import FeedbackRule
    from repro.graphs.random_graphs import gnp_random_graph

    n = scale.figure3_sizes[-1]
    graph = gnp_random_graph(n, 0.5, spawn_rng(7, 0))

    def run_one_batch():
        return run_batch(graph, FeedbackRule, 5, master_seed=99)

    result = benchmark(run_one_batch)
    assert result.mean_rounds > 0


def test_fig3_shape(benchmark, figure3, scale):
    """The headline comparison of the paper."""
    feedback = figure3.means("feedback")
    sweep = figure3.means("afek-sweep")
    sizes = figure3.xs("feedback")
    benchmark(fit_log2, sizes, feedback)

    rows = []
    for i, n in enumerate(sizes):
        rows.append(
            [
                int(n),
                f"{sweep[i]:.1f}",
                f"{figure3_sweep_reference(n):.1f}",
                f"{feedback[i]:.1f}",
                f"{figure3_feedback_reference(n):.1f}",
            ]
        )
    table = format_table(
        ["n", "sweep (meas)", "log2^2 n (paper)", "feedback (meas)",
         "2.5 log2 n (paper)"],
        rows,
    )
    sweep_fit = fit_log2_squared(sizes, sweep)
    feedback_fit = fit_log2(sizes, feedback)
    body = (
        f"{table}\n\n"
        f"sweep fit:    {sweep_fit.format()}\n"
        f"feedback fit: {feedback_fit.format()}\n"
        + plot_experiment(figure3, y_label="rounds")
    )
    report(
        f"FIGURE 3 (scale={scale.name}): rounds vs n on G(n, 1/2)", body
    )

    # Shape assertions: feedback wins everywhere...
    for i in range(len(sizes)):
        assert feedback[i] < sweep[i]
    # ...the gap grows with n...
    assert sweep[-1] - feedback[-1] > sweep[0] - feedback[0]
    # ...feedback is near the paper's 2.5 log2 n line (generous band)...
    assert 1.0 < feedback_fit.slope < 5.0
    assert feedback_fit.r_squared > 0.7
    # ...and the sweep's fitted log² coefficient is near the paper's
    # implicit 1.0 (its curve IS log2^2 n).  Raw R² model selection cannot
    # separate the two laws over a finite noisy range (both fit above 0.98),
    # so the coefficient bands are the discriminating check.
    assert sweep_fit.r_squared > 0.7
    assert 0.4 < sweep_fit.slope < 1.8


def test_fig3_sweep_grows_superlogarithmically(benchmark, figure3):
    """log² growth: the ratio rounds/log2(n) must increase for the sweep
    algorithm but stay ~flat for feedback."""
    import math

    sizes = figure3.xs("afek-sweep")
    benchmark(fit_log2_squared, sizes, figure3.means("afek-sweep"))
    sweep_ratio = [
        m / math.log2(n)
        for n, m in zip(sizes, figure3.means("afek-sweep"))
    ]
    feedback_ratio = [
        m / math.log2(n)
        for n, m in zip(sizes, figure3.means("feedback"))
    ]
    assert sweep_ratio[-1] > sweep_ratio[0] * 1.2
    assert feedback_ratio[-1] < feedback_ratio[0] * 1.8
