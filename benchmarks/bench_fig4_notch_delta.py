"""Figure 4: Notch–Delta positive feedback between two cells, plus the
multicellular SOP pattern (Figure 1B) that motivates the algorithm.

Checked shape:

- two coupled cells with a slight Delta bias end in mutually exclusive
  signalling states (sender: high Delta / low Notch; receiver: opposite);
- on a hexagonal cell sheet the emergent high-Delta (SOP) pattern is an
  independent set covering the sheet — formally an MIS, exactly the
  correspondence the paper starts from.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import report
from repro.bio.notch_delta import NotchDeltaModel, two_cell_demo
from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta
from repro.bio.stochastic import StochasticSOPModel
from repro.experiments.tables import format_table
from repro.graphs.structured import hex_lattice_graph
from repro.viz.graph_render import render_grid_mis


def test_fig4_two_cell_benchmark(benchmark):
    result = benchmark(two_cell_demo)
    assert result.final_delta[1] > 0.9


def test_fig4_mutual_exclusion(benchmark):
    result = benchmark.pedantic(
        two_cell_demo, kwargs={"delta_bias": 0.01}, rounds=1, iterations=1
    )
    rows = [
        ["cell 0 (receiver)", f"{result.final_notch[0]:.3f}",
         f"{result.final_delta[0]:.3f}"],
        ["cell 1 (sender)", f"{result.final_notch[1]:.3f}",
         f"{result.final_delta[1]:.3f}"],
    ]
    report(
        "FIGURE 4: Notch-Delta two-cell positive feedback",
        format_table(["cell", "final Notch", "final Delta"], rows),
    )
    assert result.final_delta[1] > 0.9 > 0.1 > result.final_delta[0]
    assert result.final_notch[0] > 0.9 > 0.1 > result.final_notch[1]


def test_fig4_inhibition_threshold(benchmark):
    """Ablation: the Figure 4 feedback only patterns the sheet when the
    cis-inhibition is strong enough (the Collier instability threshold)."""
    from repro.experiments.bio_ablation import inhibition_strength_ablation
    from repro.experiments.tables import format_table

    result = benchmark.pedantic(
        inhibition_strength_ablation,
        kwargs={
            "strengths": (5.0, 20.0, 100.0, 500.0),
            "rows": 6,
            "cols": 6,
            "trials": 2,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            p.x,
            f"{p.mean:.3f}",
            f"{p.extra['mean_sops']:.1f}",
            f"{p.extra['mis_fraction']:.2f}",
        ]
        for p in result.points
    ]
    report(
        "FIGURE 4 ablation: Collier inhibition strength b vs pattern quality",
        format_table(
            ["b", "delta separation", "mean SOPs", "MIS fraction"], rows
        ),
    )
    assert result.points[0].extra["mis_fraction"] == 0.0
    assert result.points[-1].extra["mis_fraction"] == 1.0


def test_fig1b_sop_pattern_is_mis(benchmark):
    rows_n, cols_n = 8, 8
    graph = hex_lattice_graph(rows_n, cols_n)
    model = NotchDeltaModel(graph)
    result = benchmark.pedantic(
        model.run, args=(Random(4),), kwargs={"t_end": 100.0},
        rounds=1, iterations=1,
    )
    sops = select_sops_by_delta(result.final_delta)
    pattern = analyze_sop_pattern(graph, sops, result.final_delta)

    stochastic = StochasticSOPModel().run(graph, Random(5))
    stochastic_pattern = analyze_sop_pattern(graph, stochastic.sops)

    body = (
        f"Collier ODE model: {pattern.num_sops} SOPs / {pattern.num_cells} "
        f"cells, adjacent pairs={pattern.adjacent_sop_pairs}, "
        f"uncovered={pattern.uncovered_cells}, "
        f"delta separation={pattern.delta_separation:.3f}\n"
        f"{render_grid_mis(rows_n, cols_n, sops)}\n\n"
        f"Stochastic accumulation model: {stochastic_pattern.num_sops} SOPs, "
        f"is MIS = {stochastic_pattern.is_mis}, "
        f"commit steps = {stochastic.selection_times}"
    )
    report("FIGURE 1B: emergent SOP pattern on a hex cell sheet", body)

    assert pattern.is_independent
    assert pattern.uncovered_cells == 0
    assert pattern.delta_separation > 0.5
    assert stochastic_pattern.is_mis
