"""Figure 5: mean beeps per node vs n on G(n, 1/2).

Paper's claims checked here:

- the feedback algorithm's beeps per node stay bounded (Theorem 6: O(1);
  measured ≈ 1.1) and do not grow with n;
- the sweep algorithm's beeps per node grow with n.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.experiments.figures import figure5_series
from repro.experiments.tables import format_table
from repro.viz.ascii_plots import plot_experiment


@pytest.fixture(scope="module")
def figure5(scale):
    return figure5_series(
        sizes=scale.figure5_sizes,
        trials=scale.figure5_trials,
        master_seed=1305,
    )


def test_fig5_regenerate(benchmark, scale):
    """Benchmark one (sweep, n=max) batch."""
    from repro.beeping.rng import spawn_rng
    from repro.engine.batch import run_batch
    from repro.engine.rules import SweepRule
    from repro.graphs.random_graphs import gnp_random_graph

    n = scale.figure5_sizes[-1]
    graph = gnp_random_graph(n, 0.5, spawn_rng(8, 0))

    def run_one_batch():
        return run_batch(graph, SweepRule, 5, master_seed=98)

    result = benchmark(run_one_batch)
    assert result.mean_beeps_per_node > 0


def test_fig5_shape(benchmark, figure5, scale):
    sizes = figure5.xs("feedback")
    feedback = figure5.means("feedback")
    sweep = figure5.means("afek-sweep")
    benchmark(plot_experiment, figure5)

    rows = [
        [int(n), f"{sweep[i]:.2f}", f"{feedback[i]:.2f}", "~1.1"]
        for i, n in enumerate(sizes)
    ]
    table = format_table(
        ["n", "sweep beeps/node", "feedback beeps/node", "paper (feedback)"],
        rows,
    )
    report(
        f"FIGURE 5 (scale={scale.name}): mean beeps per node on G(n, 1/2)",
        table + "\n" + plot_experiment(figure5, y_label="beeps/node"),
    )

    # Theorem 6 shape: feedback bounded, roughly flat, near the paper's 1.1.
    assert max(feedback) < 2.5
    assert feedback[-1] < feedback[0] * 2.0 + 0.5
    assert 0.6 < feedback[-1] < 2.0
    # Sweep grows with n and overtakes feedback by a wide margin.
    assert sweep[-1] > sweep[0] * 1.5
    assert sweep[-1] > 2.0 * feedback[-1]
