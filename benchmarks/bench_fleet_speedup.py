"""Fleet vs. looped-batch wall-clock on the figure workloads.

The fleet engine exists to delete the per-trial Python round loop from the
batch hot path; this file records the actual margin.  Both sides run the
identical workload — same graph, same master seed, bit-identical results —
so the measured ratio is pure execution-strategy overhead.

``test_fleet_speedup_floor`` asserts the ISSUE's acceptance floor
(fleet >= 2x loop at n = 1000, trials = 64).  It is marked ``slow`` so the
default tier-1 run skips it; run it with

    pytest -m slow benchmarks/bench_fleet_speedup.py
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import report, write_bench_result
from repro.beeping.rng import spawn_rng
from repro.engine.batch import run_batch, run_batch_loop
from repro.engine.rules import FeedbackRule
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

TRIALS = 64
SIZES = (100, 1000)
MASTER_SEED = 4242


def _workload(n: int):
    return gnp_random_graph(n, 0.5, spawn_rng(MASTER_SEED, n))


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_speedup(n: int, trials: int = TRIALS, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall-clock for both strategies on one workload."""
    graph = _workload(n)
    loop_seconds = min(
        _time_once(
            lambda: run_batch_loop(graph, FeedbackRule, trials, MASTER_SEED)
        )
        for _ in range(repeats)
    )
    fleet_seconds = min(
        _time_once(
            lambda: run_batch(
                graph, FeedbackRule, trials, MASTER_SEED, engine="fleet"
            )
        )
        for _ in range(repeats)
    )
    return {
        "n": n,
        "trials": trials,
        "loop_seconds": loop_seconds,
        "fleet_seconds": fleet_seconds,
        "speedup": loop_seconds / fleet_seconds,
    }


@pytest.mark.parametrize("n", SIZES)
def test_fleet_batch_benchmark(benchmark, n):
    """pytest-benchmark timing of one full fleet batch per size."""
    graph = _workload(n)

    def run_fleet_batch():
        return run_batch(graph, FeedbackRule, TRIALS, MASTER_SEED, engine="fleet")

    result = benchmark(run_fleet_batch)
    assert result.trials == TRIALS
    assert result.mean_rounds > 0


@pytest.mark.slow
def test_fleet_speedup_floor():
    """Fleet must beat the per-trial loop by >= 2x at n = 1000, trials = 64."""
    rows = []
    measurements = [_measure_speedup(n) for n in SIZES]
    for m in measurements:
        rows.append(
            [
                m["n"],
                m["trials"],
                f"{m['loop_seconds'] * 1e3:.1f}",
                f"{m['fleet_seconds'] * 1e3:.1f}",
                f"{m['speedup']:.1f}x",
            ]
        )
    report(
        f"FLEET SPEEDUP: trial-parallel vs per-trial loop, trials={TRIALS}",
        format_table(
            ["n", "trials", "loop (ms)", "fleet (ms)", "speedup"], rows
        ),
    )
    write_bench_result(
        "fleet_speedup",
        params={
            "sizes": list(SIZES),
            "trials": TRIALS,
            "edge_probability": 0.5,
            "master_seed": MASTER_SEED,
        },
        results={"measurements": measurements},
        floor=2.0,
    )
    at_1000 = measurements[-1]
    assert at_1000["n"] == 1000
    assert at_1000["speedup"] >= 2.0, (
        f"fleet engine only {at_1000['speedup']:.2f}x faster than the "
        f"per-trial loop at n=1000, trials={TRIALS} (floor is 2x)"
    )
