"""Section 5 text claim: ~1.1 beeps per node on rectangular grid graphs.

"for random graphs with edge probability 1/2, and for rectangular grid
graphs it is around 1.1 (see Figure 5)".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.experiments.figures import grid_beeps_series
from repro.experiments.tables import format_table


@pytest.fixture(scope="module")
def grid_series(scale):
    return grid_beeps_series(
        side_lengths=scale.grid_sides,
        trials=scale.grid_trials,
        master_seed=1306,
    )


def test_grid_regenerate(benchmark, scale):
    from repro.engine.batch import run_batch
    from repro.engine.rules import FeedbackRule
    from repro.graphs.structured import grid_graph

    side = scale.grid_sides[-1]
    graph = grid_graph(side, side)

    def run_one_batch():
        return run_batch(graph, FeedbackRule, 10, master_seed=96)

    result = benchmark(run_one_batch)
    assert result.mean_beeps_per_node > 0


def test_grid_beeps_constant(benchmark, grid_series, scale):
    feedback = grid_series.series("feedback")
    rows = [
        [int(point.x), f"{point.mean:.2f}", f"{point.std:.2f}", "~1.1"]
        for point in feedback
    ]
    table = benchmark(
        format_table, ["grid cells", "feedback beeps/node", "std", "paper"], rows
    )
    report(
        f"GRID BEEPS (scale={scale.name}): Theorem 6 on rectangular grids",
        table,
    )

    means = [point.mean for point in feedback]
    # Near the paper's 1.1, with a tolerance for the reduced trial counts.
    for mean in means:
        assert 0.7 < mean < 1.8
    # Flat in the grid size: extremes within 40% of each other.
    assert max(means) < 1.4 * min(means)
