"""Fleet-Luby vs the per-node loop on the n=200 workload cell.

Before ISSUE 5 the message-passing baselines (Luby, Métivier,
local-minimum-id) only ran through the per-node dict/set implementations
in :mod:`repro.algorithms` — the slow path every paper comparison had to
pay.  This bench runs one identical comparison cell — same graph family,
same size, same trial count — through both runners:

- **fleet**: :func:`repro.experiments.runner.run_fleet_trials` with the
  :class:`~repro.engine.messages.LubyPermutationRule` kernel — the whole
  cell as one counter-mode lockstep batch;
- **loop**: :func:`repro.experiments.runner.run_trials` with the per-node
  :class:`~repro.algorithms.luby.LubyMIS` reference.

The two consume randomness differently and agree in law only (the
conformance suite pins that); here both validate every trial and the
fleet side must clear the ISSUE's conservative >=3x CI floor (the
measured margin is far larger).  Results land in
``BENCH_message_fleet.json`` via the shared conftest helper.

Run with ``pytest benchmarks/bench_message_fleet.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report, write_bench_result
from repro.algorithms.luby import LubyMIS
from repro.engine.messages import LubyPermutationRule
from repro.experiments.runner import run_fleet_trials, run_trials
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

N = 200
EDGE_PROBABILITY = 0.5
TRIALS = 60
GRAPHS = 3
MASTER_SEED = 1605
SPEEDUP_FLOOR = 3.0


def _graph_factory(rng):
    return gnp_random_graph(N, EDGE_PROBABILITY, rng)


def _run_fleet():
    return run_fleet_trials(
        LubyPermutationRule,
        _graph_factory,
        TRIALS,
        MASTER_SEED,
        graphs=GRAPHS,
        validate=True,
    )


def _run_loop():
    return run_trials(
        lambda: LubyMIS("permutation"),
        _graph_factory,
        TRIALS,
        MASTER_SEED,
        validate=True,
    )


def _measure(repeats: int = 3):
    fleet_rows = loop_rows = None
    fleet_seconds = loop_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fleet_rows = _run_fleet()
        fleet_seconds = min(fleet_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        loop_rows = _run_loop()
        loop_seconds = min(loop_seconds, time.perf_counter() - start)
    return {
        "fleet_seconds": fleet_seconds,
        "loop_seconds": loop_seconds,
        "speedup": loop_seconds / max(fleet_seconds, 1e-9),
        "fleet_rows": fleet_rows,
        "loop_rows": loop_rows,
    }


def test_message_fleet_speedup_floor():
    measurement = _measure()
    if measurement["speedup"] < SPEEDUP_FLOOR:
        # One retry absorbs a noisy-neighbour first attempt on CI boxes.
        retry = _measure(repeats=5)
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    speedup = measurement["speedup"]
    rows = [
        ["per-node loop (LubyMIS)",
         f"{measurement['loop_seconds'] * 1000:.1f}"],
        ["message fleet (LubyPermutationRule)",
         f"{measurement['fleet_seconds'] * 1000:.1f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    report(
        "MESSAGE FLEET: lockstep Luby vs per-node loop "
        f"(n={N}, trials={TRIALS}, graphs={GRAPHS})",
        format_table(["runner", "ms"], rows),
    )
    write_bench_result(
        "message_fleet",
        params={
            "n": N,
            "edge_probability": EDGE_PROBABILITY,
            "trials": TRIALS,
            "graphs": GRAPHS,
            "master_seed": MASTER_SEED,
            "algorithm": "luby-permutation",
        },
        results={
            "fleet_seconds": measurement["fleet_seconds"],
            "loop_seconds": measurement["loop_seconds"],
            "speedup": speedup,
        },
        floor=SPEEDUP_FLOOR,
    )

    # Same cell shape out of both runners, every trial validated inside;
    # the runs agree in law, so mean rounds must be in the same ballpark.
    fleet_rows, loop_rows = measurement["fleet_rows"], measurement["loop_rows"]
    assert len(fleet_rows) == len(loop_rows) == TRIALS
    fleet_mean = sum(row.rounds for row in fleet_rows) / TRIALS
    loop_mean = sum(row.rounds for row in loop_rows) / TRIALS
    assert abs(fleet_mean - loop_mean) <= 0.5 * max(fleet_mean, loop_mean)

    assert speedup >= SPEEDUP_FLOOR, (
        f"message fleet only {speedup:.1f}x faster than the per-node loop "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
