"""Cold vs warm one-command paper pipeline.

The ``repro paper`` promise: the first run executes every shard (and the
bio ODE) and stores them; the second run against the same cache must be
pure lookup — seconds, not minutes, with byte-identical CSVs and HTML.
This bench runs the full registry twice sharing one cache directory and
asserts the ISSUE's acceptance floor: the warm pipeline at least 10x
faster than the cold one, with every artefact byte-equal and zero shards
executed.

Run with ``pytest benchmarks/bench_paper_pipeline.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report, write_bench_result
from repro.experiments.paper import run_paper
from repro.experiments.tables import format_table

TRIALS = 8
SPEEDUP_FLOOR = 10.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_paper_pipeline_floor(tmp_path):
    cache = tmp_path / "cache"

    def regenerate(out_name):
        return run_paper(
            trials=TRIALS,
            cache_dir=cache,
            out_dir=tmp_path / out_name,
            rundb_dir=tmp_path / "rundb",
            golden_dir=None,
            bench_dir=None,
        )

    cold, cold_seconds = _timed(lambda: regenerate("cold"))
    warm, warm_seconds = _timed(lambda: regenerate("warm"))

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    rows = [
        ["cold (execute + store)", f"{cold_seconds * 1000:.1f}"],
        ["warm (store only)", f"{warm_seconds * 1000:.1f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    report(
        f"Paper pipeline: full registry, trials={TRIALS}, shared cache",
        format_table(["run", "ms"], rows),
    )
    write_bench_result(
        "paper_pipeline",
        params={
            "trials": TRIALS,
            "experiments": [a.name for a in cold.artefacts],
        },
        results={
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
        },
        floor=SPEEDUP_FLOOR,
    )

    # The warm pass is pure lookup producing identical bytes everywhere.
    assert sum(a.shards_executed for a in warm.artefacts) == 0
    for cold_artefact, warm_artefact in zip(cold.artefacts, warm.artefacts):
        assert warm_artefact.csv == cold_artefact.csv, cold_artefact.name
    assert (
        warm.report_path.read_bytes() == cold.report_path.read_bytes()
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm paper pipeline only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
