"""Beyond the paper: Theorem 2's O(log n) curve at 20x the paper's scale.

The paper's Figure 3 stops at n = 1000 (its testbed was a dense G(n, 1/2)
simulation).  The sparse CSR engine lets the reproduction push the same
measurement to tens of thousands of nodes on constant-mean-degree networks
— the regime real sensor deployments live in — and check that the log fit
keeps holding.
"""

from __future__ import annotations

import math
from random import Random

import pytest

from benchmarks.conftest import report
from repro.analysis.regression import fit_log2
from repro.beeping.rng import derive_seed, derive_seed_block
from repro.engine.fleet import FleetSimulator
from repro.engine.rules import FeedbackRule
from repro.engine.sparse import SparseSimulator
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

GRAPHS_PER_SIZE = 2


def _sparse_graph(n: int, seed: int):
    p = min(1.0, 8.0 / max(n - 1, 1))
    return gnp_random_graph(n, p, Random(seed))


@pytest.fixture(scope="module")
def scaling(scale):
    """Mean rounds/beeps per size, measured with the fleet engine.

    Trials are spread over ``GRAPHS_PER_SIZE`` independent graphs per size
    and each group runs as one lockstep sparse-backend fleet batch — the
    per-trial CSR loop this replaced produced the same per-seed results
    (the engines are bit-compatible) but paid the round loop per trial.
    """
    if scale.name == "paper":
        sizes = (500, 1000, 2000, 5000, 10_000, 20_000)
        trials = 10
    else:
        sizes = (500, 1000, 2000, 5000)
        trials = 5
    results = []
    # Exact split of `trials` over the graph groups (remainder spread
    # over the first groups), so the reported trial count is the real one.
    group_sizes = [trials // GRAPHS_PER_SIZE] * GRAPHS_PER_SIZE
    for extra in range(trials % GRAPHS_PER_SIZE):
        group_sizes[extra] += 1
    for size_index, n in enumerate(sizes):
        rounds = []
        beeps = []
        for g, group_trials in enumerate(group_sizes):
            if group_trials == 0:
                continue
            graph = _sparse_graph(n, derive_seed(2001, size_index, g))
            simulator = FleetSimulator(graph, backend="sparse")
            seeds = derive_seed_block(2002, size_index, g, count=group_trials)
            run = simulator.run_fleet(FeedbackRule(), seeds)
            rounds.extend(int(r) for r in run.rounds)
            beeps.extend(float(b) for b in run.mean_beeps)
        results.append(
            (n, sum(rounds) / len(rounds), sum(beeps) / len(beeps))
        )
    return trials, results


def test_scaling_regenerate(benchmark):
    graph = _sparse_graph(2000, 77)
    simulator = SparseSimulator(graph)
    counter = iter(range(10_000))

    def run_once():
        return simulator.run(FeedbackRule(), next(counter))

    run = benchmark(run_once)
    assert run.rounds >= 1


def test_scaling_log_fit_beyond_paper(benchmark, scaling, scale):
    trials, results = scaling
    sizes = [n for n, _rounds, _beeps in results]
    rounds = [mean_rounds for _n, mean_rounds, _beeps in results]
    beeps = [mean_beeps for _n, _rounds, mean_beeps in results]
    fit = benchmark(fit_log2, sizes, rounds)

    rows = [
        [n, f"{r:.1f}", f"{fit.predict(math.log2(n)):.1f}", f"{b:.2f}"]
        for (n, r, b) in results
    ]
    report(
        f"SCALING (scale={scale.name}): feedback on mean-degree-8 G(n, p), "
        f"{trials} trials per size",
        format_table(
            ["n", "mean rounds", "log2-fit prediction", "beeps/node"], rows
        )
        + f"\n\nfit: {fit.format()}",
    )
    # O(log n) shape persists at 20x the paper's sizes...
    assert fit.r_squared > 0.8
    assert rounds[-1] < 8 * math.log2(sizes[-1])
    # ...doubling n adds roughly a constant number of rounds.
    assert rounds[-1] - rounds[0] < 4 * math.log2(sizes[-1] / sizes[0]) + 4
    # Theorem 6 still holds out here.
    assert max(beeps) < 3.0
