"""Warm-cache figure regeneration vs. cold compute.

The sweep subsystem's reason to exist: every paper figure is a grid of
(size, rule) cells, and regenerating one against a warm content-addressed
store is pure disk lookup — no simulation at all.  This bench runs the
Figure 3 driver cold (empty store, every shard executed) and then warm
(same spec, zero shards executed) and asserts the ISSUE's acceptance
floor: warm regeneration at least 10x faster than cold.

Run with ``pytest benchmarks/bench_sweep_cache.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.experiments.figures import figure3_series
from repro.experiments.tables import format_table

SIZES = (100, 150, 200)
TRIALS = 50
MASTER_SEED = 1303
SPEEDUP_FLOOR = 10.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_cache_figure_regeneration_floor(tmp_path):
    cache = tmp_path / "sweep-cache"

    def regenerate():
        return figure3_series(
            sizes=SIZES,
            trials=TRIALS,
            graphs_per_size=2,
            master_seed=MASTER_SEED,
            cache_dir=cache,
        )

    cold, cold_seconds = _timed(regenerate)
    warm, warm_seconds = _timed(regenerate)

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    rows = [
        ["cold (execute + store)", f"{cold_seconds * 1000:.1f}"],
        ["warm (store only)", f"{warm_seconds * 1000:.1f}"],
        ["speedup", f"{speedup:.1f}x"],
    ]
    report(
        "Sweep store: warm-cache Figure 3 regeneration "
        f"(sizes={SIZES}, trials={TRIALS})",
        format_table(["run", "ms"], rows),
    )

    # The warm pass must be a pure cache read producing identical numbers.
    assert warm.points == cold.points
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-cache regeneration only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
