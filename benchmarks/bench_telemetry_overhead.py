"""Telemetry overhead: probes enabled must cost < 5% on the fleet cell.

The telemetry fabric promises to be *zero-cost* when disabled (one
module-global ``is None`` check per probe) and *cheap* when enabled —
the engines only tally a handful of scalars per round, and events fire
once per run, not per round.  This bench pins the enabled side on the
repo's standard acceptance workload, the n = 200 fleet cell (trials =
100 over 5 graphs of ``G(n, 1/2)``, the same cell
``bench_counter_rng.py`` measures): with a collector installed *and* a
live JSONL run ledger attached as a sink, the cell must run within 5% of
the probes-off time.

Telemetry never changes results (``tests/telemetry/test_transparency.py``
pins bit-identity), so both sides run byte-identical workloads; only the
instrumentation differs.  The recorded ``speedup`` is
``disabled/enabled`` — ~1.0 by design — with the 0.95 floor expressing
the 5% overhead cap in the same drift vocabulary as every other bench,
so ``repro stats --bench-dir`` tracks it alongside the real speedups.

The enabled run's ledger is written under ``$REPRO_BENCH_DIR/telemetry``
(default ``./telemetry``); CI uploads it as an artefact next to the
``BENCH_*.json`` records, so every CI run leaves an inspectable
``repro stats`` input behind.

Run with ``pytest benchmarks/bench_telemetry_overhead.py``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from benchmarks.conftest import report, write_bench_result
from repro.beeping.rng import RngStream, derive_seed_block
from repro.engine.fleet import ArmadaSimulator
from repro.engine.rules import FeedbackRule
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.telemetry import probes
from repro.telemetry.ledger import record_run, summarize_run
from repro.telemetry.stats import ledger_paths

N = 200
TRIALS = 100
GRAPHS = 5
EDGE_PROBABILITY = 0.5
MASTER_SEED = 1604
#: speedup = disabled/enabled; 0.95 is the 5% overhead cap.
OVERHEAD_FLOOR = 0.95


def _ledger_root() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / "telemetry"


def _cell():
    stream = RngStream(MASTER_SEED)
    graphs = [
        gnp_random_graph(N, EDGE_PROBABILITY, stream.child(g, 0))
        for g in range(GRAPHS)
    ]
    seed_rows = [
        derive_seed_block(MASTER_SEED, g, 1, count=TRIALS // GRAPHS)
        for g in range(GRAPHS)
    ]
    return graphs, seed_rows


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(repeats: int = 5) -> dict:
    graphs, seed_rows = _cell()
    armada = ArmadaSimulator(graphs)

    def cell():
        armada.run_armada(FeedbackRule(), seed_rows)

    cell()  # warm BLAS and lane caches
    assert not probes.enabled()
    disabled_seconds = _best_of(cell, repeats)
    with record_run(_ledger_root(), "bench-telemetry-overhead"):
        assert probes.enabled()
        enabled_seconds = _best_of(cell, repeats)
    return {
        "n": N,
        "trials": TRIALS,
        "graphs": GRAPHS,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "overhead": enabled_seconds / max(disabled_seconds, 1e-9) - 1.0,
        "speedup": disabled_seconds / max(enabled_seconds, 1e-9),
    }


def test_probes_enabled_overhead_under_5_percent():
    measurement = _measure()
    if measurement["speedup"] < OVERHEAD_FLOOR:
        # One re-measure absorbs scheduler noise on shared CI boxes; a
        # real regression fails both samples.
        retry = _measure()
        if retry["speedup"] > measurement["speedup"]:
            measurement = retry
    report(
        "TELEMETRY OVERHEAD on the n=200 fleet cell "
        f"(trials={TRIALS}, graphs={GRAPHS})",
        format_table(
            ["path", "ms"],
            [
                [
                    "probes disabled",
                    f"{measurement['disabled_seconds'] * 1000:.1f}",
                ],
                [
                    "probes enabled + ledger",
                    f"{measurement['enabled_seconds'] * 1000:.1f}",
                ],
                ["overhead", f"{measurement['overhead'] * 100:+.1f}%"],
            ],
        ),
    )
    write_bench_result(
        "telemetry_overhead",
        params={
            "n": N,
            "trials": TRIALS,
            "graphs": GRAPHS,
            "edge_probability": EDGE_PROBABILITY,
            "master_seed": MASTER_SEED,
        },
        results={
            key: measurement[key]
            for key in (
                "disabled_seconds", "enabled_seconds", "overhead", "speedup"
            )
        },
        floor=OVERHEAD_FLOOR,
    )
    assert measurement["speedup"] >= OVERHEAD_FLOOR, (
        f"probes-enabled fleet cell ran {measurement['overhead'] * 100:.1f}% "
        f"slower than probes-off (cap 5%)"
    )


def test_bench_run_leaves_a_readable_ledger():
    """The artefact CI uploads round-trips through the stats reader."""
    with record_run(_ledger_root(), "bench-telemetry-ledger"):
        graphs, seed_rows = _cell()
        ArmadaSimulator(graphs).run_armada(FeedbackRule(), seed_rows)
    paths = ledger_paths(_ledger_root())
    assert paths, "bench produced no ledger files"
    summary = summarize_run(paths[-1])
    assert summary.command == "bench-telemetry-ledger"
    assert summary.status == "ok"
    assert summary.counters["engine.armada.runs"] == 1.0
    assert summary.counters["engine.armada.trials"] == float(TRIALS)
