"""Theorem 1: the Ω(log² n) lower-bound family for global schedules.

The clique family (``side`` copies of K_d for d = 1..side) forces any
preset global probability sequence to spend ~log n rounds per "scale";
the locally adaptive feedback algorithm handles all scales simultaneously.
Checked shape: the sweep/feedback round ratio grows with n, and the sweep
series fits log² n better than log n.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.tables import format_table
from repro.viz.ascii_plots import plot_experiment


@pytest.fixture(scope="module")
def theorem1(scale):
    return theorem1_experiment(
        sides=scale.theorem1_sides,
        trials=scale.theorem1_trials,
        master_seed=1101,
    )


def test_thm1_regenerate(benchmark, scale):
    """Benchmark one sweep batch on the largest family member."""
    from repro.engine.batch import run_batch
    from repro.engine.rules import SweepRule
    from repro.graphs.cliques import theorem1_family

    graph = theorem1_family(scale.theorem1_sides[-1])

    def run_one_batch():
        return run_batch(graph, SweepRule, 5, master_seed=97)

    result = benchmark(run_one_batch)
    assert result.mean_rounds > 0


def test_thm1_separation(benchmark, theorem1, scale):
    sizes = theorem1.xs("afek-sweep")
    sweep = theorem1.means("afek-sweep")
    feedback = theorem1.means("feedback")
    benchmark(fit_log2_squared, sizes, sweep)

    rows = [
        [
            int(n),
            int(point.extra["side"]),
            f"{sweep[i]:.1f}",
            f"{feedback[i]:.1f}",
            f"{sweep[i] / feedback[i]:.2f}",
        ]
        for i, (n, point) in enumerate(
            zip(sizes, theorem1.series("afek-sweep"))
        )
    ]
    table = format_table(
        ["n", "side", "sweep rounds", "feedback rounds", "ratio"], rows
    )
    sweep_log = fit_log2(sizes, sweep)
    sweep_sq = fit_log2_squared(sizes, sweep)
    body = (
        f"{table}\n\n"
        f"sweep ~ log2 n fit:   {sweep_log.format()}\n"
        f"sweep ~ log2^2 n fit: {sweep_sq.format()}\n"
        + plot_experiment(theorem1, y_label="rounds")
    )
    report(
        f"THEOREM 1 (scale={scale.name}): disjoint-clique lower-bound family",
        body,
    )

    # Feedback wins at every size.
    for i in range(len(sizes)):
        assert feedback[i] < sweep[i]
    # The separation does not close as n grows.
    first_ratio = sweep[0] / feedback[0]
    last_ratio = sweep[-1] / feedback[-1]
    assert last_ratio > 0.8 * first_ratio
    # The sweep's growth is super-logarithmic on this family.
    assert sweep_sq.r_squared >= sweep_log.r_squared - 0.05
