"""Theorem 2 from the inside: the proof's quantities on real runs.

The O(log n) proof tracks, for each vertex, the neighbourhood measure
µ_t(Γ(v)) and classifies each round into events E1–E4 with the paper's
constants (α = 10⁻³, β = 1/50, λ = 7).  This benchmark measures those
quantities empirically on G(n, 1/2) runs of the exact Definition 1
algorithm and checks:

- E4 ("the neighbourhood fails to shrink while heavy") is rare — Claim 2
  bounds its per-round probability by 1/80;
- the global measure µ_t(V) decreases over a run;
- the active set decays geometrically (the mechanism behind Corollary 5).
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import report
from repro.analysis.convergence import (
    active_series,
    empirical_half_life,
    fit_exponential_decay,
)
from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.core.instrumentation import (
    EventKind,
    PotentialTracker,
    classify_vertex_rounds,
)
from repro.core.policy import ExponentFeedbackNode
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph


def _traced_run(n: int, seed: int):
    graph = gnp_random_graph(n, 0.5, Random(seed))
    trace = Trace(record_probabilities=True)
    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(seed + 1), trace=trace
    ).run()
    return graph, trace, result


def test_thm2_regenerate(benchmark):
    def run_traced():
        return _traced_run(80, 11)

    graph, trace, result = benchmark(run_traced)
    assert result.num_rounds >= 1


def test_thm2_event_frequencies(benchmark, scale):
    n = min(scale.ablation_n, 150)
    counts = {kind: 0 for kind in EventKind}
    total = 0
    trials = 5
    for t in range(trials):
        graph, trace, _result = _traced_run(n, 300 + t)
        for v in graph.vertices():
            for classification in classify_vertex_rounds(graph, trace, v):
                counts[classification.kind] += 1
                total += 1
    benchmark(classify_vertex_rounds, graph, trace, 0)

    rows = [
        [kind.value, counts[kind], f"{counts[kind] / total:.4f}"]
        for kind in EventKind
    ]
    rows.append(["paper bound on E4", "-", "<= 0.0125 per round (Claim 2)"])
    report(
        f"THEOREM 2 instrumentation: E1-E4 frequencies on G({n}, 1/2), "
        f"{trials} trials",
        format_table(["event", "count", "frequency"], rows),
    )
    assert total > 0
    # Claim 2's bound is per-round 1/80 = 0.0125; the empirical frequency
    # over all vertex-rounds should not exceed a loose multiple of it.
    assert counts[EventKind.E4] / total < 0.05


def test_thm2_measure_decreases(benchmark, scale):
    n = min(scale.ablation_n, 150)
    graph, trace, _result = _traced_run(n, 400)
    tracker = PotentialTracker(graph, trace)
    series = benchmark.pedantic(
        tracker.total_measure_series, rounds=1, iterations=1
    )
    assert series[0] == pytest.approx(n / 2)
    assert series[-1] < series[0] / 2


def test_thm2_geometric_die_off(benchmark, scale):
    n = min(scale.ablation_n, 150)
    rates = []
    halves = []
    for t in range(5):
        graph = gnp_random_graph(n, 0.5, Random(500 + t))
        run_result = BeepingSimulation(
            graph, lambda v: ExponentFeedbackNode(), Random(600 + t)
        ).run()
        series = active_series(run_result.metrics.round_records)
        fit = fit_exponential_decay(series)
        if fit is not None:
            rates.append(fit.rate)
        half = empirical_half_life(series)
        if half is not None:
            halves.append(half)
    benchmark(fit_exponential_decay, series)

    rows = [
        ["mean decay rate / round", f"{sum(rates) / len(rates):.3f}"],
        ["mean empirical half-life (rounds)",
         f"{sum(halves) / len(halves):.1f}"],
    ]
    report(
        f"THEOREM 2 mechanism: active-set decay on G({n}, 1/2)",
        format_table(["quantity", "value"], rows),
    )
    assert sum(rates) / len(rates) < 0.95
    assert sum(halves) / len(halves) < 20
