"""Theorem 2 says "for any graph": the feedback algorithm across topologies.

The O(log n) bound of Theorem 2 is worst-case over all graphs.  This bench
sweeps every registered workload family at a fixed size and asserts the
feedback algorithm stays within a uniform logarithmic band — including the
adversarial Theorem 1 clique family, hubs-and-leaves scale-free graphs,
and triangle-free grids.
"""

from __future__ import annotations

import math
from random import Random

import pytest

from benchmarks.conftest import report
from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.rng import spawn_rng
from repro.experiments.tables import format_table
from repro.experiments.workloads import available_workloads, make_workload


@pytest.fixture(scope="module")
def sweep(scale):
    n = scale.ablation_n
    trials = max(scale.ablation_trials // 2, 5)
    algorithm = FeedbackMIS()
    results = {}
    for name in available_workloads():
        rounds = []
        beeps = []
        actual_n = 0
        for t in range(trials):
            graph = make_workload(name, n, spawn_rng(1801, t))
            actual_n = graph.num_vertices
            run = algorithm.run(graph, spawn_rng(1802, t))
            run.verify()
            rounds.append(run.rounds)
            beeps.append(run.mean_beeps_per_node)
        results[name] = (
            actual_n,
            sum(rounds) / trials,
            sum(beeps) / trials,
        )
    return n, trials, results


def test_workload_sweep_regenerate(benchmark):
    algorithm = FeedbackMIS()

    def run_one():
        graph = make_workload("gnp-sparse", 100, spawn_rng(5, 0))
        return algorithm.run(graph, spawn_rng(6, 0))

    run = benchmark(run_one)
    assert run.rounds >= 1


def test_feedback_uniform_across_topologies(benchmark, sweep, scale):
    n, trials, results = sweep
    benchmark(format_table, ["w"], [[k] for k in results])
    rows = [
        [name, actual_n, f"{mean_rounds:.1f}", f"{mean_beeps:.2f}"]
        for name, (actual_n, mean_rounds, mean_beeps) in sorted(
            results.items()
        )
    ]
    report(
        f"THEOREM 2 'any graph' sweep (scale={scale.name}): feedback "
        f"algorithm at n≈{n}, {trials} trials per workload",
        format_table(
            ["workload", "n", "mean rounds", "mean beeps/node"], rows
        ),
    )
    for name, (actual_n, mean_rounds, mean_beeps) in results.items():
        bound = 10.0 * math.log2(max(actual_n, 2)) + 5.0
        assert mean_rounds < bound, (name, mean_rounds, bound)
        # Theorem 6's O(1) bound, uniformly across topologies.
        assert mean_beeps < 3.0, (name, mean_beeps)
