"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and asserts
the *shape* of the result (who wins, by roughly what factor) rather than
absolute numbers.  Two scales are supported via the ``REPRO_BENCH_SCALE``
environment variable:

- ``small`` (default): minutes-long runs suited to CI; reduced sizes and
  trial counts, same qualitative shape.
- ``paper``: the paper's actual parameters (n up to 1000, 100-200 trials);
  this is what EXPERIMENTS.md records.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import pytest


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one benchmark scale."""

    name: str
    figure3_sizes: Tuple[int, ...]
    figure3_trials: int
    figure5_sizes: Tuple[int, ...]
    figure5_trials: int
    theorem1_sides: Tuple[int, ...]
    theorem1_trials: int
    grid_sides: Tuple[int, ...]
    grid_trials: int
    ablation_n: int
    ablation_trials: int


SMALL = BenchScale(
    name="small",
    figure3_sizes=(50, 100, 200, 400),
    figure3_trials=20,
    figure5_sizes=(10, 50, 100, 150, 200),
    figure5_trials=40,
    theorem1_sides=(4, 6, 8, 10),
    theorem1_trials=15,
    grid_sides=(5, 8, 12),
    grid_trials=40,
    ablation_n=150,
    ablation_trials=15,
)

PAPER = BenchScale(
    name="paper",
    figure3_sizes=(50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
    figure3_trials=100,
    figure5_sizes=(10, 25, 50, 75, 100, 125, 150, 175, 200),
    figure5_trials=200,
    theorem1_sides=(4, 6, 8, 10, 12, 14),
    theorem1_trials=30,
    grid_sides=(5, 8, 10, 12, 15),
    grid_trials=100,
    ablation_n=300,
    ablation_trials=30,
)


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name == "paper":
        return PAPER
    if name == "small":
        return SMALL
    raise ValueError(
        f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {name!r}"
    )


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale."""
    return current_scale()


def report(title: str, body: str) -> None:
    """Print a framed reproduction report (captured into bench output)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def write_bench_result(
    name: str,
    params: Dict[str, Any],
    results: Dict[str, Any],
    floor: Optional[float] = None,
) -> Path:
    """Write one benchmark's machine-readable record, ``BENCH_<name>.json``.

    The perf trajectory across PRs is tracked from these files (CI uploads
    them as artefacts), so the payload is deliberately *timestamp-free*
    and fully deterministic apart from the measured numbers: ``params``
    holds the workload description (sizes, trials, seeds — reproducible
    inputs only), ``results`` the measurements (seconds, speedups), and
    ``floor`` the CI-enforced minimum speedup, if the bench has one.

    Files land in ``REPRO_BENCH_DIR`` (default: the working directory, the
    repo root under ``pytest benchmarks/...``).
    """
    payload: Dict[str, Any] = {
        "bench": name,
        "scale": current_scale().name,
        "params": params,
        "results": results,
    }
    if floor is not None:
        payload["floor"] = floor
    directory = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
