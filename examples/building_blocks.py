#!/usr/bin/env python
"""MIS as a building block: colouring, matching and domination.

The paper's conclusion notes that MIS selection "can also be used as a
fundamental building block in algorithms for many other problems in
distributed computing".  This example powers three classic reductions with
the paper's feedback algorithm:

1. (Δ+1)-colouring by iterated MIS peeling;
2. maximal matching as an MIS of the line graph;
3. an independent dominating set (every MIS is one), compared against the
   centralised greedy set-cover heuristic.

Run with: ``python examples/building_blocks.py``
"""

from random import Random

from repro.applications import (
    greedy_dominating_set,
    mis_coloring,
    mis_dominating_set,
    mis_matching,
)
from repro.graphs.random_graphs import gnp_random_graph, watts_strogatz_graph


def coloring_demo() -> None:
    print("=" * 64)
    print("1. (Delta+1)-colouring by iterated MIS peeling")
    print("=" * 64)
    graph = gnp_random_graph(60, 0.15, Random(1))
    result = mis_coloring(graph, Random(2))
    print(
        f"graph: n={graph.num_vertices} m={graph.num_edges} "
        f"max degree={graph.max_degree()}"
    )
    print(
        f"proper colouring with {result.num_colors} colours "
        f"(bound: {graph.max_degree() + 1}) in {result.total_rounds} "
        f"total beeping rounds"
    )
    for color, members in sorted(result.color_classes().items()):
        print(f"  colour {color}: {len(members)} vertices")
    print()


def matching_demo() -> None:
    print("=" * 64)
    print("2. Maximal matching via MIS of the line graph")
    print("=" * 64)
    graph = watts_strogatz_graph(40, 4, 0.2, Random(3))
    result = mis_matching(graph, Random(4))
    print(
        f"graph: n={graph.num_vertices} m={graph.num_edges} "
        f"(small-world contact network)"
    )
    print(
        f"matched {result.size} link pairs in {result.rounds} rounds; "
        f"{len(result.matched_vertices())} of {graph.num_vertices} nodes paired"
    )
    print(f"first few matched links: {sorted(result.matching)[:8]}")
    print()


def domination_demo() -> None:
    print("=" * 64)
    print("3. Dominating sets: distributed MIS vs centralised greedy")
    print("=" * 64)
    print(f"{'n':>5} {'MIS (distributed)':>18} {'greedy (centralised)':>21}")
    for n in (30, 60, 120):
        graph = gnp_random_graph(n, 0.1, Random(n))
        mis_set = mis_dominating_set(graph, Random(n + 1))
        greedy_set = greedy_dominating_set(graph)
        print(f"{n:>5} {len(mis_set):>18} {len(greedy_set):>21}")
    print()
    print(
        "The greedy heuristic needs global degree information at every\n"
        "step; the MIS version runs on one-bit beeps and additionally\n"
        "guarantees the dominating set is independent."
    )


if __name__ == "__main__":
    coloring_demo()
    matching_demo()
    domination_demo()
