#!/usr/bin/env python
"""Regenerate Figure 3 of the paper from the command line.

Mean rounds to compute an MIS on G(n, 1/2), for the global-sweep baseline
(Afek et al., DISC 2011) and the paper's local-feedback algorithm, with
the paper's two reference curves.  Sizes and trials are reduced by default
so the script finishes in under a minute; pass ``--paper`` for the full
n = 50..1000, 100-trial version.

Run with: ``python examples/figure3.py [--paper]``
"""

import argparse

from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.experiments.figures import figure3_series
from repro.experiments.records import results_to_csv
from repro.experiments.tables import format_experiment
from repro.viz.ascii_plots import plot_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full sizes and trial counts (slow)",
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV only")
    args = parser.parse_args()

    if args.paper:
        sizes = (50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
        trials = 100
    else:
        sizes = (50, 100, 200, 400)
        trials = 20

    result = figure3_series(sizes=sizes, trials=trials, master_seed=1303)
    if args.csv:
        print(results_to_csv(result), end="")
        return

    print(format_experiment(result))
    print()
    print(plot_experiment(result, y_label="rounds"))
    print()
    ns = result.xs("feedback")
    print("fits:")
    print(f"  feedback ~ {fit_log2(ns, result.means('feedback')).format()}")
    print(
        f"  sweep    ~ "
        f"{fit_log2_squared(ns, result.means('afek-sweep')).format()}"
    )
    print()
    print(
        "paper: sweep tracks log2^2(n), feedback tracks 2.5*log2(n) "
        "(both drawn as reference series above)."
    )


if __name__ == "__main__":
    main()
