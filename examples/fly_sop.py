#!/usr/bin/env python
"""From biology to algorithm: SOP selection in the fly, three ways.

The paper's story in one script:

1. **Figure 4** — the Notch–Delta positive feedback between two cells:
   a slight Delta excess tips the pair into mutually exclusive
   sender/receiver states.
2. **Figure 1B** — on a hexagonal sheet of equivalent cells, lateral
   inhibition (Collier et al. 1996 ODE model) carves out a fine-grained
   pattern of SOP cells that is a maximal independent set of the contact
   graph.
3. **The abstraction** — the paper's feedback beeping algorithm run on the
   same contact graph produces the same kind of pattern, in O(log n)
   rounds, with one-bit messages.

Run with: ``python examples/fly_sop.py``
"""

from random import Random

from repro import FeedbackMIS
from repro.bio.notch_delta import NotchDeltaModel, two_cell_demo
from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta
from repro.bio.stochastic import StochasticSOPModel
from repro.graphs.structured import hex_lattice_graph
from repro.viz.graph_render import render_grid_mis

ROWS, COLS = 8, 10


def step1_two_cells() -> None:
    print("=" * 64)
    print("1. Figure 4: Notch-Delta feedback between two cells")
    print("=" * 64)
    result = two_cell_demo(delta_bias=0.01)
    print("initial Delta: cell0=0.500, cell1=0.510 (tiny bias)")
    print(
        f"final:  cell0 Notch={result.final_notch[0]:.3f} "
        f"Delta={result.final_delta[0]:.3f}  -> receiver"
    )
    print(
        f"        cell1 Notch={result.final_notch[1]:.3f} "
        f"Delta={result.final_delta[1]:.3f}  -> sender (SOP fate)"
    )
    print("a 2% difference was amplified into mutually exclusive states\n")


def step2_cell_sheet() -> None:
    print("=" * 64)
    print("2. Figure 1B: lateral inhibition on a hex cell sheet")
    print("=" * 64)
    graph = hex_lattice_graph(ROWS, COLS)
    model = NotchDeltaModel(graph)
    result = model.run(Random(11), t_end=100.0)
    sops = select_sops_by_delta(result.final_delta)
    pattern = analyze_sop_pattern(graph, sops, result.final_delta)
    print(
        f"{pattern.num_sops} SOPs among {pattern.num_cells} cells; "
        f"adjacent SOP pairs: {pattern.adjacent_sop_pairs}; "
        f"uncovered cells: {pattern.uncovered_cells}"
    )
    print(f"pattern is a maximal independent set: {pattern.is_mis}")
    print(render_grid_mis(ROWS, COLS, sops))
    print()

    stochastic = StochasticSOPModel().run(graph, Random(12))
    print(
        f"stochastic accumulation model: {len(stochastic.sops)} SOPs, "
        f"committed over steps {stochastic.selection_times[0]}"
        f"..{stochastic.selection_times[-1]} "
        f"(spread-out selection times, as observed in the fly)"
    )
    print()


def step3_algorithm() -> None:
    print("=" * 64)
    print("3. The abstraction: the feedback beeping algorithm")
    print("=" * 64)
    graph = hex_lattice_graph(ROWS, COLS)
    run = FeedbackMIS().run(graph, Random(13))
    run.verify()
    print(
        f"MIS of {run.mis_size} 'SOPs' in {run.rounds} rounds, "
        f"{run.mean_beeps_per_node:.2f} beeps per cell"
    )
    print(render_grid_mis(ROWS, COLS, run.mis))
    print()
    print(
        "All three mechanisms solve the same problem on the same contact\n"
        "graph: cells/nodes end up either selected or adjacent to a\n"
        "selected one, with no two selected neighbours."
    )


if __name__ == "__main__":
    step1_two_cells()
    step2_cell_sheet()
    step3_algorithm()
