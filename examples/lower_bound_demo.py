#!/usr/bin/env python
"""Why global probability schedules lose: the Theorem 1 family, live.

Theorem 1 proves that any beeping MIS algorithm driven by a *preset global*
probability sequence needs Ω(log² n) rounds on the disjoint union of
cliques K_1..K_s (s = n^(1/3) copies each).  The intuition: a clique K_d
only makes progress when exactly one member beeps, which needs the global
probability to pass near 1/d — and a single global sweep must visit every
scale 1/1, 1/2, 1/4, ... again and again.  Local feedback lets each clique
*park* its members' probabilities near 1/d simultaneously.

This script shows both effects:

1. the per-step progress probability d·p·(1-p)^(d-1) for several clique
   sizes, peaking at p = 1/d (the quantity bounded in the proof);
2. measured rounds of the sweep vs feedback algorithms on the family, with
   log² n vs log n fits.

Run with: ``python examples/lower_bound_demo.py``
"""

from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.analysis.theory import (
    MAX_CLIQUE_PROGRESS_BOUND,
    clique_progress_probability,
    optimal_clique_probability,
)
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.tables import format_table
from repro.viz.ascii_plots import AsciiPlot, plot_experiment


def progress_curves() -> None:
    print("=" * 70)
    print("Per-step progress probability of a clique K_d vs global p")
    print("=" * 70)
    plot = AsciiPlot(x_label="p (global beep probability)", y_label="P[progress]")
    probabilities = [i / 200 for i in range(1, 200)]
    for d in (2, 4, 16, 64):
        plot.add_series(
            f"K_{d}",
            probabilities,
            [clique_progress_probability(d, p) for p in probabilities],
        )
    print(plot.render())
    print()
    rows = [
        [d, f"{optimal_clique_probability(d):.4f}",
         f"{clique_progress_probability(d, optimal_clique_probability(d)):.3f}"]
        for d in (2, 4, 16, 64)
    ]
    print(format_table(["d", "best p = 1/d", "P[progress] at best p"], rows))
    print(
        f"\nno single p serves all d at once; the proof's uniform bound on\n"
        f"the progress probability for d > 2 is 3/(2e) = "
        f"{MAX_CLIQUE_PROGRESS_BOUND:.3f}\n"
    )


def measured_separation() -> None:
    print("=" * 70)
    print("Measured rounds on the Theorem 1 family (sweep vs feedback)")
    print("=" * 70)
    result = theorem1_experiment(
        sides=(4, 6, 8, 10, 12), trials=20, master_seed=42
    )
    sizes = result.xs("afek-sweep")
    sweep = result.means("afek-sweep")
    feedback = result.means("feedback")
    rows = [
        [int(n), f"{sweep[i]:.1f}", f"{feedback[i]:.1f}",
         f"{sweep[i] / feedback[i]:.2f}x"]
        for i, n in enumerate(sizes)
    ]
    print(format_table(["n", "sweep", "feedback", "sweep/feedback"], rows))
    print()
    print(f"sweep    ~ {fit_log2_squared(sizes, sweep).format()}")
    print(f"feedback ~ {fit_log2(sizes, feedback).format()}")
    print()
    print(plot_experiment(result, y_label="rounds"))


if __name__ == "__main__":
    progress_curves()
    measured_separation()
