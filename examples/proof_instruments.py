#!/usr/bin/env python
"""Watching the proofs work: Theorem 2 and Theorem 6 instrumentation.

The paper's two main theorems are proved through quantities one can
*measure* on a run:

- Theorem 2 tracks each vertex's neighbourhood weight µ_t(Γ(v)), splits
  rounds into events E1-E4, and bounds the bad event E4 by 1/80 per round
  (Claim 2);
- Theorem 6 decomposes each node's beeps into a telescoping "new-low"
  subsequence (≤ 1 expected beep), paired increase/decrease steps (≤ 6),
  and at most one beep at the probability cap — total < 8, measured ≈ 1.1.

This example runs the exact Definition 1 algorithm with full tracing and
prints all of it, plus a round-by-round animation and the exact
Markov-chain prediction for K_2.

Run with: ``python examples/proof_instruments.py``
"""

import statistics
from random import Random

from repro.analysis.markov import expected_rounds_k2, simulated_rounds_k2
from repro.beeping.events import Trace
from repro.beeping.scheduler import BeepingSimulation
from repro.core.beep_accounting import mean_decomposition
from repro.core.instrumentation import (
    EventKind,
    PotentialTracker,
    classify_vertex_rounds,
)
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.random_graphs import gnp_random_graph
from repro.viz.animation import render_animation


def traced_run(n, graph_seed, run_seed):
    graph = gnp_random_graph(n, 0.5, Random(graph_seed))
    trace = Trace(record_probabilities=True)
    result = BeepingSimulation(
        graph, lambda v: ExponentFeedbackNode(), Random(run_seed), trace=trace
    ).run()
    return graph, trace, result


def theorem2_section() -> None:
    print("=" * 66)
    print("Theorem 2 instrumentation: events E1-E4 and the potential")
    print("=" * 66)
    graph, trace, result = traced_run(60, 31, 32)
    counts = {kind: 0 for kind in EventKind}
    total = 0
    for v in graph.vertices():
        for classification in classify_vertex_rounds(graph, trace, v):
            counts[classification.kind] += 1
            total += 1
    print(f"run: n=60, {result.num_rounds} rounds, |MIS|={len(result.mis)}")
    for kind in EventKind:
        print(
            f"  {kind.value}: {counts[kind]:4d} vertex-rounds "
            f"({counts[kind] / total:6.1%})"
        )
    print(
        f"  Claim 2 bound on E4: 1/80 = 1.25% per round "
        f"(measured {counts[EventKind.E4] / total:.2%})"
    )
    tracker = PotentialTracker(graph, trace)
    series = tracker.total_measure_series()
    print("  total measure µ_t(V) per round:")
    print("   ", " ".join(f"{m:.1f}" for m in series))
    print()


def theorem6_section() -> None:
    print("=" * 66)
    print("Theorem 6 instrumentation: the beep decomposition")
    print("=" * 66)
    totals = {"total": 0.0, "new_low": 0.0, "cap": 0.0, "paired": 0.0}
    runs = 10
    for t in range(runs):
        graph, trace, _result = traced_run(50, 100 + t, 200 + t)
        means = mean_decomposition(trace, graph.num_vertices)
        for key in totals:
            totals[key] += means[key] / runs
    print(f"mean beeps per node over {runs} runs of G(50, 1/2):")
    print(f"  total:          {totals['total']:.3f}  (proof bound: < 8)")
    print(f"  new-low steps:  {totals['new_low']:.3f}  (proof bound: <= 1)")
    print(f"  at the cap:     {totals['cap']:.3f}  (at most the joining beep)")
    print(f"  paired steps:   {totals['paired']:.3f}  (proof bound: <= 6)")
    print()


def exact_markov_section() -> None:
    print("=" * 66)
    print("Exact analysis: the K_2 Markov chain vs simulation")
    print("=" * 66)
    exact = expected_rounds_k2()
    rounds = simulated_rounds_k2(4000, seed=41)
    print(f"closed-form E[rounds on K_2]: {exact:.5f}")
    print(
        f"simulated mean over 4000 trials: {statistics.mean(rounds):.5f} "
        f"(sem {statistics.stdev(rounds) / len(rounds) ** 0.5:.5f})"
    )
    print()


def animation_section() -> None:
    print("=" * 66)
    print("One run, frame by frame (16-node G(n, 1/2))")
    print("=" * 66)
    _graph, trace, _result = traced_run(16, 51, 52)
    print(render_animation(trace, 16, columns=16))
    print()


if __name__ == "__main__":
    theorem2_section()
    theorem6_section()
    exact_markov_section()
    animation_section()
