#!/usr/bin/env python
"""Quickstart: select a maximal independent set with the paper's algorithm.

Reproduces the Figure 1A scenario — an MIS on a 20-node random graph —
then compares the feedback algorithm against the classic baselines on a
larger instance.

Run with: ``python examples/quickstart.py``
"""

from random import Random

from repro import (
    FeedbackMIS,
    available_algorithms,
    gnp_random_graph,
    make_algorithm,
    verify_mis,
)
from repro.viz.graph_render import render_mis_listing


def figure1_scenario() -> None:
    """An MIS of a sparse 20-node graph, like the paper's Figure 1A."""
    print("=" * 64)
    print("Figure 1A scenario: MIS of a 20-node random graph")
    print("=" * 64)
    graph = gnp_random_graph(20, 0.15, Random(1))
    run = FeedbackMIS().run(graph, Random(2))
    verify_mis(graph, run.mis)  # raises if anything is wrong
    print(f"graph: {graph.num_vertices} nodes, {graph.num_edges} edges")
    print(f"MIS selected in {run.rounds} rounds: {sorted(run.mis)}")
    print(f"mean beeps per node: {run.mean_beeps_per_node:.2f}")
    print()
    print(render_mis_listing(graph, run.mis))
    print()


def algorithm_shootout() -> None:
    """Every registered algorithm on the same G(150, 1/2) instance."""
    print("=" * 64)
    print("All algorithms on one G(150, 1/2) instance")
    print("=" * 64)
    graph = gnp_random_graph(150, 0.5, Random(3))
    header = f"{'algorithm':<20} {'rounds':>6} {'|MIS|':>5} {'beeps/node':>10}"
    print(header)
    print("-" * len(header))
    for name in available_algorithms():
        run = make_algorithm(name).run(graph, Random(4))
        run.verify()
        print(
            f"{name:<20} {run.rounds:>6} {run.mis_size:>5} "
            f"{run.mean_beeps_per_node:>10.2f}"
        )
    print()
    print(
        "Note: the feedback algorithm needs only O(log n) rounds and O(1)\n"
        "beeps per node, with one-bit messages and no knowledge of n or\n"
        "the maximum degree — that combination is the paper's contribution."
    )


if __name__ == "__main__":
    figure1_scenario()
    algorithm_shootout()
