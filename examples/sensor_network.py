#!/usr/bin/env python
"""Clusterhead election in an ad-hoc wireless sensor network.

The paper's conclusion motivates the algorithm with "ad hoc sensor networks
and wireless communication systems": nodes are radios that can only shout
one-bit beeps, know nothing about the network, and must elect a set of
local leaders (clusterheads) such that every sensor is a leader or hears
one, and no two leaders interfere — exactly MIS selection.

This example builds a random geometric graph (the standard sensor-network
model), runs the feedback algorithm under an *unreliable* radio channel
(dropped and spurious beeps), and reports the elected clusterheads.

Run with: ``python examples/sensor_network.py``
"""

from random import Random

from repro import FeedbackMIS, FaultModel
from repro.graphs.random_graphs import random_geometric_graph
from repro.analysis.statistics import summarize


def elect_clusterheads(
    num_sensors: int = 120,
    radio_range: float = 0.18,
    beep_loss: float = 0.1,
    spurious_rate: float = 0.05,
    seed: int = 7,
):
    """Run one noisy clusterhead election and return (graph, run)."""
    graph, positions = random_geometric_graph(
        num_sensors, radio_range, Random(seed), return_positions=True
    )
    faults = FaultModel(
        beep_loss_probability=beep_loss,
        spurious_beep_probability=spurious_rate,
    )
    run = FeedbackMIS().run(graph, Random(seed + 1), faults=faults)
    run.verify()
    return graph, positions, run


def ascii_map(positions, mis, width: int = 60, height: int = 24) -> str:
    """Plot sensor positions; clusterheads as '#', others as '.'."""
    grid = [[" "] * width for _ in range(height)]
    for v, (x, y) in enumerate(positions):
        col = min(int(x * width), width - 1)
        row = min(int(y * height), height - 1)
        grid[row][col] = "#" if v in mis else "."
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    print("=" * 64)
    print("Sensor-network clusterhead election (noisy beeping radio)")
    print("=" * 64)
    graph, positions, run = elect_clusterheads()
    print(
        f"sensors={graph.num_vertices} links={graph.num_edges} "
        f"(radio range 0.18 on the unit square)"
    )
    print(
        f"elected {run.mis_size} clusterheads in {run.rounds} rounds "
        f"under 10% beep loss + 5% spurious beeps"
    )
    print(f"mean beeps per sensor: {run.mean_beeps_per_node:.2f}")
    print()
    print(ascii_map(positions, run.mis))
    print()

    # Robustness sweep: how much does radio noise cost?
    print("noise sweep (20 trials each):")
    print(f"{'beep loss':>10} {'rounds mean ± std':>20}")
    for loss in (0.0, 0.1, 0.2, 0.3):
        rounds = []
        for trial in range(20):
            graph_t = random_geometric_graph(
                120, 0.18, Random(100 + trial)
            )
            run_t = FeedbackMIS().run(
                graph_t,
                Random(200 + trial),
                faults=FaultModel(beep_loss_probability=loss),
            )
            run_t.verify()
            rounds.append(run_t.rounds)
        stats = summarize(rounds)
        print(f"{loss:>10.1f} {stats.format():>20}")
    print()
    print(
        "The election stays correct at every noise level (verified above);\n"
        "noise only costs extra rounds — the separation the fault model\n"
        "guarantees by keeping join/retire notifications reliable."
    )


if __name__ == "__main__":
    main()
