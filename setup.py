"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail with "invalid command 'bdist_wheel'"; this shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
