"""repro — reproduction of "Feedback from nature: an optimal distributed
algorithm for maximal independent set selection" (Scott, Jeavons, Xu;
PODC 2013).

Quickstart
----------
>>> from random import Random
>>> from repro import FeedbackMIS, gnp_random_graph, verify_mis
>>> graph = gnp_random_graph(50, 0.5, Random(1))
>>> run = FeedbackMIS().run(graph, Random(2))
>>> _ = verify_mis(graph, run.mis)

Packages
--------
- :mod:`repro.graphs` — graph type, generators, MIS validation.
- :mod:`repro.beeping` — the beeping-model runtime (scheduler, channel,
  faults, traces, metrics).
- :mod:`repro.core` — the feedback policy, the Figure 2 automaton, the
  Section 6 robustness variants, the Theorem 2 proof instrumentation.
- :mod:`repro.algorithms` — the feedback algorithm plus every baseline
  (Afek sweep/global, Luby, Métivier, greedy, exact MaxIS).
- :mod:`repro.engine` — vectorised numpy engine for large-scale sweeps.
- :mod:`repro.bio` — the Notch–Delta lateral-inhibition substrate.
- :mod:`repro.analysis` — statistics, regression fits, theory curves.
- :mod:`repro.experiments` — trial runner and per-figure drivers.
- :mod:`repro.sweep` — sharded sweep orchestrator with a
  content-addressed on-disk result store.
- :mod:`repro.viz` — ASCII plots and graph rendering.
"""

from repro.algorithms import (
    AfekGlobalMIS,
    AfekSweepMIS,
    FeedbackMIS,
    LubyMIS,
    MISAlgorithm,
    MISRun,
    MetivierMIS,
    SequentialGreedyMIS,
    available_algorithms,
    greedy_mis,
    make_algorithm,
    maximum_independent_set,
)
from repro.beeping import (
    BeepingSimulation,
    FaultModel,
    NO_FAULTS,
    RngStream,
    SimulationResult,
    Trace,
    derive_seed,
    spawn_rng,
)
from repro.core import ExponentFeedbackNode, FeedbackNode
from repro.graphs import (
    Graph,
    GraphBuilder,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    is_independent_set,
    is_maximal_independent_set,
    path_graph,
    star_graph,
    theorem1_family,
    verify_mis,
)

__version__ = "1.0.0"

__all__ = [
    "AfekGlobalMIS",
    "AfekSweepMIS",
    "BeepingSimulation",
    "ExponentFeedbackNode",
    "FaultModel",
    "FeedbackMIS",
    "FeedbackNode",
    "Graph",
    "GraphBuilder",
    "LubyMIS",
    "MISAlgorithm",
    "MISRun",
    "MetivierMIS",
    "NO_FAULTS",
    "RngStream",
    "SequentialGreedyMIS",
    "SimulationResult",
    "Trace",
    "__version__",
    "available_algorithms",
    "complete_graph",
    "cycle_graph",
    "derive_seed",
    "gnp_random_graph",
    "greedy_mis",
    "grid_graph",
    "is_independent_set",
    "is_maximal_independent_set",
    "make_algorithm",
    "maximum_independent_set",
    "path_graph",
    "spawn_rng",
    "star_graph",
    "theorem1_family",
    "verify_mis",
]
