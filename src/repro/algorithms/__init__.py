"""MIS algorithms: the paper's contribution and every baseline it cites.

Beeping-model algorithms (run on :class:`repro.beeping.BeepingSimulation`):

- :class:`FeedbackMIS` — the paper's local-feedback algorithm (Definition 1).
- :class:`AfekSweepMIS` — Afek et al. DISC 2011: preset global sweeping
  probabilities, no knowledge of ``n`` or the maximum degree.
- :class:`AfekGlobalMIS` — Afek et al. Science 2011: gradually increasing
  global probabilities computed from ``n`` and the maximum degree.

Message-passing baselines (not beeping; simulated directly):

- :class:`LubyMIS` — Luby's randomized algorithm, both the random-priority
  and marking variants.
- :class:`MetivierMIS` — the optimal-bit-complexity algorithm of Métivier
  et al. (2011).

Reference algorithms:

- :class:`SequentialGreedyMIS` — the trivial centralised scan.
- :func:`maximum_independent_set` — exact MaxIS by branch and bound (tiny
  graphs only; used to compare MIS sizes).
"""

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.afek_sweep import AfekSweepMIS, SweepScheduleNode, sweep_probability
from repro.algorithms.afek_global import AfekGlobalMIS, global_schedule
from repro.algorithms.luby import LubyMIS
from repro.algorithms.metivier import MetivierMIS
from repro.algorithms.greedy import SequentialGreedyMIS, greedy_mis
from repro.algorithms.local_minimum import LocalMinimumIDMIS, adversarial_path_ids
from repro.algorithms.exact import maximum_independent_set
from repro.algorithms.registry import available_algorithms, make_algorithm

__all__ = [
    "AfekGlobalMIS",
    "AfekSweepMIS",
    "FeedbackMIS",
    "LocalMinimumIDMIS",
    "LubyMIS",
    "adversarial_path_ids",
    "MISAlgorithm",
    "MISRun",
    "MetivierMIS",
    "SequentialGreedyMIS",
    "SweepScheduleNode",
    "available_algorithms",
    "global_schedule",
    "greedy_mis",
    "make_algorithm",
    "maximum_independent_set",
    "sweep_probability",
]
