"""Afek et al. (Science 2011): global probabilities computed from n and D.

The original biological-solution paper assumes every node knows the number
of nodes ``n`` and an upper bound ``D`` on the maximum degree.  The shared
beep probability starts at ``1/(2D)`` and doubles every ``M = ⌈c·log₂ n⌉``
rounds until it reaches ``1/2``, where it stays — "a sequence of gradually
increasing global probability values calculated from the total number of
nodes of the graph and its maximum degree" (Section 1 of the PODC paper).

This implementation is faithful in structure (log D phases of Θ(log n)
steps with doubling probabilities) with the phase length coefficient ``c``
exposed as a parameter; the PODC paper's experiments use the *sweeping*
refinement (:mod:`repro.algorithms.afek_sweep`), so this class mainly
serves the Figure 5 discussion (constant beeps per node when probabilities
start low) and as an extra baseline.
"""

from __future__ import annotations

import math
from random import Random
from typing import Optional

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.node import BeepingNode
from repro.beeping.scheduler import BeepingSimulation
from repro.graphs.graph import Graph


def global_schedule(
    round_index: int,
    num_vertices: int,
    max_degree: int,
    steps_coefficient: float = 2.0,
) -> float:
    """The shared probability at a round, given global knowledge.

    Starts at ``1/(2D)`` and doubles every ``⌈c·log₂ n⌉`` rounds, capped at
    ``1/2``.  Degenerate graphs (``D = 0``) get ``1/2`` immediately.
    """
    if round_index < 0:
        raise ValueError(f"round_index must be >= 0, got {round_index}")
    if max_degree <= 0:
        return 0.5
    phase_length = max(1, math.ceil(steps_coefficient * math.log2(max(num_vertices, 2))))
    phase = round_index // phase_length
    return min(0.5, (2.0 ** phase) / (2.0 * max_degree))


class _GlobalScheduleNode(BeepingNode):
    """A node following the Science 2011 global schedule."""

    __slots__ = ("_num_vertices", "_max_degree", "_coefficient", "_probability")

    def __init__(
        self, num_vertices: int, max_degree: int, steps_coefficient: float
    ) -> None:
        self._num_vertices = num_vertices
        self._max_degree = max_degree
        self._coefficient = steps_coefficient
        self._probability = global_schedule(
            0, num_vertices, max_degree, steps_coefficient
        )

    def on_round_start(self, round_index: int) -> None:
        self._probability = global_schedule(
            round_index, self._num_vertices, self._max_degree, self._coefficient
        )

    def beep_probability(self) -> float:
        return self._probability

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        pass

    def describe(self) -> str:
        return f"GlobalScheduleNode(p={self._probability})"


class AfekGlobalMIS(MISAlgorithm):
    """The Science 2011 beeping MIS algorithm (requires n and max degree).

    Parameters
    ----------
    steps_coefficient:
        The ``c`` in the phase length ``⌈c·log₂ n⌉``.  Larger values make
        each probability level last longer (slower but with fewer beeps).
    """

    def __init__(self, steps_coefficient: float = 2.0) -> None:
        if steps_coefficient <= 0:
            raise ValueError(
                f"steps_coefficient must be > 0, got {steps_coefficient}"
            )
        self._steps_coefficient = steps_coefficient

    @property
    def name(self) -> str:
        return "afek-global"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        num_vertices = graph.num_vertices
        max_degree = graph.max_degree()
        simulation = BeepingSimulation(
            graph,
            lambda vertex: _GlobalScheduleNode(
                num_vertices, max_degree, self._steps_coefficient
            ),
            rng,
            faults=faults,
            trace=trace,
            max_rounds=max_rounds,
        )
        result = simulation.run()
        # Under churn, result.graph is the universe graph (base plus
        # joiners) and the metrics are universe-length.
        message_bits = sum(
            beeps * result.graph.degree(v)
            for v, beeps in enumerate(result.metrics.beeps_by_node)
        )
        return MISRun(
            algorithm=self.name,
            graph=result.graph,
            mis=result.mis,
            rounds=result.num_rounds,
            beeps_by_node=list(result.metrics.beeps_by_node),
            messages=message_bits,
            bits=message_bits,
            simulation=result,
            absent=set(result.absent),
            repair_rounds=result.repair_rounds,
            recovered=result.recovered,
        )
