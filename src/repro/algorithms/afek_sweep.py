"""Afek et al. (DISC 2011): preset global sweeping probabilities.

This is the baseline the paper measures against in Figures 3 and 5, in the
refined form that needs no knowledge of the network: the computation is
divided into phases 1, 2, 3, …; phase ``k`` has ``k + 1`` steps during which
the shared probability starts at 1 and halves each step.  The global
sequence is therefore::

    1, 1/2 | 1, 1/2, 1/4 | 1, 1/2, 1/4, 1/8 | ...

(with ``|`` marking phase boundaries), exactly as printed in the paper's
Section 1.  Theorem 1 shows this style of algorithm — *any* preset global
sequence — needs Ω(log² n) rounds on the disjoint-clique family.
"""

from __future__ import annotations

import math
from random import Random
from typing import Optional, Tuple

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.node import BeepingNode
from repro.beeping.scheduler import BeepingSimulation
from repro.graphs.graph import Graph


def sweep_phase_position(round_index: int) -> Tuple[int, int]:
    """Map a 0-based round index to ``(phase, step_in_phase)``.

    Phase ``k`` (1-based) occupies ``k + 1`` consecutive rounds, so the
    first rounds of phases 1, 2, 3, … are at indices 0, 2, 5, 9, ….
    """
    if round_index < 0:
        raise ValueError(f"round_index must be >= 0, got {round_index}")
    # Rounds before phase k: sum_{j=1}^{k-1} (j + 1) = (k - 1)(k + 2) / 2.
    # Solve for the largest k with that quantity <= round_index.
    k = max(1, int((math.sqrt(9 + 8 * round_index) - 1) / 2))
    while (k - 1) * (k + 2) // 2 > round_index:
        k -= 1
    while k * (k + 3) // 2 <= round_index:
        k += 1
    step = round_index - (k - 1) * (k + 2) // 2
    return k, step


def sweep_probability(round_index: int) -> float:
    """The shared beep probability at a 0-based round index.

    >>> [sweep_probability(t) for t in range(5)]
    [1.0, 0.5, 1.0, 0.5, 0.25]
    """
    _phase, step = sweep_phase_position(round_index)
    return 2.0 ** -step


class SweepScheduleNode(BeepingNode):
    """A node following the global sweep schedule (no local state)."""

    __slots__ = ("_probability",)

    def __init__(self) -> None:
        self._probability = sweep_probability(0)

    def on_round_start(self, round_index: int) -> None:
        self._probability = sweep_probability(round_index)

    def beep_probability(self) -> float:
        return self._probability

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        pass

    def describe(self) -> str:
        return f"SweepScheduleNode(p={self._probability})"


class AfekSweepMIS(MISAlgorithm):
    """The DISC 2011 sweeping-probability beeping MIS algorithm."""

    @property
    def name(self) -> str:
        return "afek-sweep"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        simulation = BeepingSimulation(
            graph,
            lambda vertex: SweepScheduleNode(),
            rng,
            faults=faults,
            trace=trace,
            max_rounds=max_rounds,
        )
        result = simulation.run()
        # Under churn, result.graph is the universe graph (base plus
        # joiners) and the metrics are universe-length.
        message_bits = sum(
            beeps * result.graph.degree(v)
            for v, beeps in enumerate(result.metrics.beeps_by_node)
        )
        return MISRun(
            algorithm=self.name,
            graph=result.graph,
            mis=result.mis,
            rounds=result.num_rounds,
            beeps_by_node=list(result.metrics.beeps_by_node),
            messages=message_bits,
            bits=message_bits,
            simulation=result,
            absent=set(result.absent),
            repair_rounds=result.repair_rounds,
            recovered=result.recovered,
        )
