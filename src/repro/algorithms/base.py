"""The common interface of all MIS algorithms.

Every algorithm — beeping or message-passing, distributed or centralised —
implements :class:`MISAlgorithm` and returns an :class:`MISRun`, so the
experiment harness can sweep over algorithms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Set

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.events import Trace
from repro.beeping.scheduler import SimulationResult
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis


@dataclass
class MISRun:
    """The outcome of running one MIS algorithm once on one graph.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced this run.
    graph:
        The input graph.
    mis:
        The computed maximal independent set.
    rounds:
        Synchronous rounds used (1 for centralised algorithms).
    beeps_by_node:
        Per-vertex beep counts, for beeping algorithms; ``None`` otherwise.
    messages:
        Total messages sent, for message-passing algorithms (a beep counts
        as one message per incident channel).
    bits:
        Total bits sent across all channels.
    simulation:
        The underlying :class:`SimulationResult` for beeping algorithms.
    absent:
        Universe vertices outside the final alive subgraph of a churn
        run (departed, asleep at the end, or never joined); empty
        otherwise.  Under churn, ``graph`` is the universe graph.
    repair_rounds:
        Per-churn-event repair times (``-1`` for events unresolved at
        the round cap); empty without churn.
    recovered:
        ``False`` when the round budget interrupted an unfinished
        churn repair (the run then degrades gracefully instead of
        raising).
    extra:
        Algorithm-specific diagnostics.
    """

    algorithm: str
    graph: Graph
    mis: Set[int]
    rounds: int
    beeps_by_node: Optional[List[int]] = None
    messages: int = 0
    bits: int = 0
    simulation: Optional[SimulationResult] = None
    absent: Set[int] = field(default_factory=set)
    repair_rounds: tuple = ()
    recovered: bool = True
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node; 0.0 for non-beeping algorithms."""
        if not self.beeps_by_node:
            return 0.0
        return sum(self.beeps_by_node) / len(self.beeps_by_node)

    @property
    def mis_size(self) -> int:
        """Number of vertices selected."""
        return len(self.mis)

    def verify(self) -> Set[int]:
        """Assert the output is a maximal independent set.

        Runs with crashes or churn verify through the underlying
        simulation when one exists (it knows which vertices left the
        system); otherwise the crash/churn sets recorded on the run
        drive :func:`verify_mis` directly.  Unrecovered runs skip
        maximality (mid-repair output is a valid independent set of
        the survivors, nothing more).
        """
        if self.simulation is not None and (
            self.simulation.crashed
            or self.simulation.absent
            or not self.simulation.recovered
        ):
            return self.simulation.verify()
        if not self.recovered:
            from repro.graphs.validation import independent_set_violations

            violations = independent_set_violations(self.graph, self.mis)
            if violations:
                raise AssertionError(
                    f"unrecovered run output is not independent: edge "
                    f"{violations[0]} has both endpoints in the set"
                )
            return set(self.mis)
        if self.absent:
            crashed = (
                self.simulation.crashed if self.simulation is not None else ()
            )
            return verify_mis(
                self.graph, self.mis, crashed=crashed, absent=self.absent
            )
        return verify_mis(self.graph, self.mis)


class MISAlgorithm(ABC):
    """An MIS selection algorithm.

    Implementations must be stateless across calls: all per-run state lives
    inside :meth:`run`, so a single instance can be reused across trials.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """A short stable identifier (used by the registry and reports)."""

    @abstractmethod
    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        """Compute an MIS of ``graph`` using randomness from ``rng``.

        ``trace`` and ``faults`` are honoured by the beeping algorithms;
        message-passing and centralised algorithms ignore ``faults`` and may
        ignore ``trace``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
