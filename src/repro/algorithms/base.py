"""The common interface of all MIS algorithms.

Every algorithm — beeping or message-passing, distributed or centralised —
implements :class:`MISAlgorithm` and returns an :class:`MISRun`, so the
experiment harness can sweep over algorithms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Set

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.events import Trace
from repro.beeping.scheduler import SimulationResult
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis


@dataclass
class MISRun:
    """The outcome of running one MIS algorithm once on one graph.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced this run.
    graph:
        The input graph.
    mis:
        The computed maximal independent set.
    rounds:
        Synchronous rounds used (1 for centralised algorithms).
    beeps_by_node:
        Per-vertex beep counts, for beeping algorithms; ``None`` otherwise.
    messages:
        Total messages sent, for message-passing algorithms (a beep counts
        as one message per incident channel).
    bits:
        Total bits sent across all channels.
    simulation:
        The underlying :class:`SimulationResult` for beeping algorithms.
    extra:
        Algorithm-specific diagnostics.
    """

    algorithm: str
    graph: Graph
    mis: Set[int]
    rounds: int
    beeps_by_node: Optional[List[int]] = None
    messages: int = 0
    bits: int = 0
    simulation: Optional[SimulationResult] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node; 0.0 for non-beeping algorithms."""
        if not self.beeps_by_node:
            return 0.0
        return sum(self.beeps_by_node) / len(self.beeps_by_node)

    @property
    def mis_size(self) -> int:
        """Number of vertices selected."""
        return len(self.mis)

    def verify(self) -> Set[int]:
        """Assert the output is a maximal independent set.

        Runs with crashes verify through the underlying simulation (which
        knows which vertices left the system); clean runs verify directly.
        """
        if self.simulation is not None and self.simulation.crashed:
            return self.simulation.verify()
        return verify_mis(self.graph, self.mis)


class MISAlgorithm(ABC):
    """An MIS selection algorithm.

    Implementations must be stateless across calls: all per-run state lives
    inside :meth:`run`, so a single instance can be reused across trials.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """A short stable identifier (used by the registry and reports)."""

    @abstractmethod
    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        """Compute an MIS of ``graph`` using randomness from ``rng``.

        ``trace`` and ``faults`` are honoured by the beeping algorithms;
        message-passing and centralised algorithms ignore ``faults`` and may
        ignore ``trace``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
