"""Exact maximum independent set (MaxIS) by branch and bound.

The paper contrasts MIS selection with the NP-hard MaxIS problem.  This
solver exists for that contrast: examples and tests use it (on small
graphs) to report how far the distributed algorithms' MIS sizes fall from
the optimum.  The implementation is a classic branching on the
highest-degree vertex with a greedy-colouring upper bound; fine up to a few
dozen vertices, guarded against larger inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.graphs.graph import Graph

MAX_EXACT_VERTICES = 64


def maximum_independent_set(graph: Graph) -> Set[int]:
    """An independent set of maximum size (NP-hard; tiny graphs only).

    Raises
    ------
    ValueError
        If the graph has more than ``MAX_EXACT_VERTICES`` vertices.
    """
    if graph.num_vertices > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact solver is limited to {MAX_EXACT_VERTICES} vertices; "
            f"got {graph.num_vertices}"
        )
    neighbor_sets: Dict[int, FrozenSet[int]] = {
        v: graph.neighbor_set(v) for v in graph.vertices()
    }
    best: Set[int] = set()

    def upper_bound(candidates: FrozenSet[int]) -> int:
        """Greedy clique-cover bound: IS size <= number of colour classes."""
        remaining = set(candidates)
        classes = 0
        while remaining:
            classes += 1
            v = next(iter(remaining))
            # Grow a clique containing v; each clique contributes <= 1.
            clique = {v}
            for u in list(remaining):
                if all(u == c or u in neighbor_sets[c] for c in clique):
                    clique.add(u)
            remaining -= clique
        return classes

    def branch(candidates: FrozenSet[int], current: Set[int]) -> None:
        nonlocal best
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        if len(current) + upper_bound(candidates) <= len(best):
            return
        # Branch on a maximum-degree candidate (within the candidate set).
        pivot = max(
            candidates,
            key=lambda v: (len(neighbor_sets[v] & candidates), -v),
        )
        # Include pivot.
        branch(
            candidates - neighbor_sets[pivot] - {pivot},
            current | {pivot},
        )
        # Exclude pivot.
        branch(candidates - {pivot}, current)

    branch(frozenset(graph.vertices()), set())
    return best


def independence_number(graph: Graph) -> int:
    """The size of a maximum independent set (tiny graphs only)."""
    return len(maximum_independent_set(graph))
