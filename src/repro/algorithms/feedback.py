"""The paper's algorithm as a runnable :class:`MISAlgorithm`.

This is a thin adapter: the policy lives in :mod:`repro.core.policy`, the
round semantics in :mod:`repro.beeping.scheduler`.  The adapter exists so
the feedback algorithm, its robustness variants and the baselines all share
one calling convention.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.node import BeepingNode
from repro.beeping.scheduler import BeepingSimulation
from repro.core.policy import ExponentFeedbackNode
from repro.graphs.graph import Graph

NodeFactory = Callable[[int], BeepingNode]


class FeedbackMIS(MISAlgorithm):
    """The local-feedback beeping MIS algorithm (Definition 1).

    By default every vertex runs the exact exponent policy of the paper
    (``p = 2^-n(v)``, start ``1/2``, halve on hearing a beep, double
    otherwise).  A custom ``node_factory`` switches in any of the Section 6
    robustness variants from :mod:`repro.core.variants`.
    """

    def __init__(
        self,
        node_factory: Optional[NodeFactory] = None,
        name: str = "feedback",
    ) -> None:
        self._node_factory = node_factory or (
            lambda vertex: ExponentFeedbackNode()
        )
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        simulation = BeepingSimulation(
            graph,
            self._node_factory,
            rng,
            faults=faults,
            trace=trace,
            max_rounds=max_rounds,
        )
        result = simulation.run()
        # Under churn, result.graph is the universe graph (base plus
        # joiners) and the metrics are universe-length.
        message_bits = sum(
            beeps * result.graph.degree(v)
            for v, beeps in enumerate(result.metrics.beeps_by_node)
        )
        return MISRun(
            algorithm=self.name,
            graph=result.graph,
            mis=result.mis,
            rounds=result.num_rounds,
            beeps_by_node=list(result.metrics.beeps_by_node),
            messages=message_bits,
            bits=message_bits,
            simulation=result,
            absent=set(result.absent),
            repair_rounds=result.repair_rounds,
            recovered=result.recovered,
        )
