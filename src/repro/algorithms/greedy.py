"""Centralised sequential MIS (the paper's "trivial" reference algorithm).

Section 1: "computing an arbitrary MIS using a centralised sequential
algorithm is trivial: simply scan the nodes in arbitrary order".  This is
the ground-truth oracle the tests compare the distributed algorithms
against (same sizes statistics, validation of MIS-ness) and what the
Figure 1 example uses to draw *an* MIS of the 20-node graph.
"""

from __future__ import annotations

from random import Random
from typing import Iterable, List, Optional, Sequence, Set

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph


def greedy_mis(graph: Graph, order: Optional[Sequence[int]] = None) -> Set[int]:
    """Scan vertices in ``order`` (default 0..n-1), adding each vertex that
    does not violate independence.

    >>> from repro.graphs import path_graph
    >>> sorted(greedy_mis(path_graph(4)))
    [0, 2]
    """
    if order is None:
        order = list(graph.vertices())
    else:
        if sorted(order) != list(graph.vertices()):
            raise ValueError("order must be a permutation of all vertices")
    mis: Set[int] = set()
    blocked: Set[int] = set()
    for v in order:
        if v in blocked:
            continue
        mis.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return mis


class SequentialGreedyMIS(MISAlgorithm):
    """The centralised scan, with an optional random scan order.

    ``randomize_order=True`` draws a uniformly random permutation per run,
    which makes the output distribution match Luby's permutation variant's
    single-round marginal — a useful statistical cross-check.
    """

    def __init__(self, randomize_order: bool = True) -> None:
        self._randomize_order = randomize_order

    @property
    def name(self) -> str:
        return "greedy" if self._randomize_order else "greedy-fixed"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        order: List[int] = list(graph.vertices())
        if self._randomize_order:
            rng.shuffle(order)
        mis = greedy_mis(graph, order)
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=mis,
            rounds=1,
            extra={"order": order},
        )
