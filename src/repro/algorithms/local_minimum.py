"""Deterministic local-minimum-ID MIS (the "why randomness?" baseline).

The classic deterministic local rule: every round, an active vertex whose
unique ID is smaller than all active neighbours' IDs joins the MIS; its
neighbours retire.  No randomness, no probabilities — but the worst case
is Θ(n) rounds (a path numbered 0,1,2,… peels one vertex per step from one
end... actually two per step; an increasing path still serialises), because
progress can be forced to propagate along an ID-sorted chain.

The paper's randomized algorithms exist precisely to beat this: the
test-suite and the round-distribution study use this baseline to show the
contrast (O(n) worst case and ID-ordering sensitivity vs O(log n)
regardless of names).

This module is the per-node reference; the vectorised lockstep
counterpart (:class:`~repro.engine.messages.LocalMinimumRule`, drawing
its ID permutation from the counter fabric) runs on the fleet/armada
fabric in :mod:`repro.engine.messages`.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Sequence, Set

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph


class LocalMinimumIDMIS(MISAlgorithm):
    """Deterministic MIS by iterated local ID minima.

    Parameters
    ----------
    ids:
        Optional fixed ID assignment (a permutation of ``0..n-1`` is
        typical).  By default each run draws a random permutation from the
        run's RNG, modelling arbitrary-but-unique network IDs.
    """

    def __init__(self, ids: Optional[Sequence[int]] = None) -> None:
        self._fixed_ids = list(ids) if ids is not None else None

    @property
    def name(self) -> str:
        return "local-minimum-id"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        n = graph.num_vertices
        if self._fixed_ids is not None:
            if sorted(self._fixed_ids) != list(range(n)):
                raise ValueError(
                    "ids must be a permutation of 0..n-1 for this graph"
                )
            ids: List[int] = list(self._fixed_ids)
        else:
            ids = list(range(n))
            rng.shuffle(ids)
        active: Set[int] = set(graph.vertices())
        mis: Set[int] = set()
        rounds = 0
        messages = 0
        while active:
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"local-minimum simulation exceeded {max_rounds} rounds"
                )
            joined = {
                v
                for v in active
                if all(
                    ids[v] < ids[w]
                    for w in graph.neighbors(v)
                    if w in active
                )
            }
            messages += sum(
                sum(1 for w in graph.neighbors(v) if w in active)
                for v in active
            )
            mis |= joined
            removed = set(joined)
            for v in joined:
                for w in graph.neighbors(v):
                    if w in active:
                        removed.add(w)
            active -= removed
            rounds += 1
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=mis,
            rounds=rounds,
            messages=messages,
            bits=messages * max(1, (n - 1).bit_length() if n > 1 else 1),
            extra={"ids": ids},
        )


def adversarial_path_ids(n: int) -> List[int]:
    """The worst-case ID assignment for a path: strictly increasing.

    With IDs 0,1,2,…,n-1 along a path, only the current left-most active
    vertex is ever a local minimum, so the algorithm needs Θ(n) rounds —
    the canonical separation from the randomized O(log n) algorithms.
    """
    return list(range(n))
