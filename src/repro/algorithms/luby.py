"""Luby's randomized MIS algorithm (the classic O(log n) baseline).

The paper positions its contribution against "the elegant randomized
algorithm of [3, 16], generally known as Luby's algorithm".  Luby's
algorithm is a *message-passing* algorithm — nodes exchange numeric values
with identified neighbours — so it does not run on the beeping scheduler.
This module is the per-node *reference* implementation, simulating the
synchronous rounds directly on the graph one dict/set operation at a
time; the vectorised lockstep counterparts (both variants as
:class:`~repro.engine.messages.MessageRule` kernels on the fleet/armada
fabric, bit-reproducible and cross-checked against this module in law)
live in :mod:`repro.engine.messages`.

Two standard variants are provided:

- ``permutation`` (Luby 1985 / the random-priority form): each round every
  active vertex draws a uniform value; a vertex whose value beats all active
  neighbours joins the MIS.  Ties cannot occur with real-valued draws (and
  are broken by vertex id for safety).
- ``probability`` (Alon–Babai–Itai 1986 form): each active vertex marks
  itself with probability ``1/(2·deg)``; if two adjacent vertices are
  marked, the one with smaller degree (breaking ties by id) unmarks; marked
  vertices join.

Message accounting: every round, each active vertex sends one value (or
mark bit + degree) to each active neighbour; we charge ``O(log n)`` bits
per numeric message, which is the textbook accounting the paper's
bit-complexity comparison refers to.
"""

from __future__ import annotations

import math
from random import Random
from typing import Dict, Optional, Set

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph

_VARIANTS = ("permutation", "probability")


class LubyMIS(MISAlgorithm):
    """Luby's algorithm, in either classic variant."""

    def __init__(self, variant: str = "permutation") -> None:
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self._variant = variant

    @property
    def name(self) -> str:
        return f"luby-{self._variant}"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        active: Set[int] = set(graph.vertices())
        mis: Set[int] = set()
        rounds = 0
        messages = 0
        bits = 0
        bits_per_value = max(1, math.ceil(math.log2(max(graph.num_vertices, 2))))
        while active:
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"Luby simulation exceeded {max_rounds} rounds"
                )
            if self._variant == "permutation":
                joined = self._permutation_round(graph, active, rng)
            else:
                joined = self._probability_round(graph, active, rng)
            # Messages: each active vertex tells each active neighbour its
            # value/mark, then joiners notify neighbours (1 bit each).
            round_messages = sum(
                sum(1 for w in graph.neighbors(v) if w in active)
                for v in active
            )
            messages += round_messages
            bits += round_messages * bits_per_value
            mis.update(joined)
            removed = set(joined)
            for v in joined:
                for w in graph.neighbors(v):
                    if w in active:
                        removed.add(w)
            active -= removed
            rounds += 1
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=mis,
            rounds=rounds,
            messages=messages,
            bits=bits,
        )

    @staticmethod
    def _permutation_round(
        graph: Graph, active: Set[int], rng: Random
    ) -> Set[int]:
        """One round of the random-priority variant."""
        values: Dict[int, float] = {v: rng.random() for v in sorted(active)}
        joined: Set[int] = set()
        for v in active:
            v_key = (values[v], v)
            if all(
                v_key < (values[w], w)
                for w in graph.neighbors(v)
                if w in active
            ):
                joined.add(v)
        return joined

    @staticmethod
    def _probability_round(
        graph: Graph, active: Set[int], rng: Random
    ) -> Set[int]:
        """One round of the marking variant."""
        active_degree: Dict[int, int] = {
            v: sum(1 for w in graph.neighbors(v) if w in active)
            for v in sorted(active)
        }
        marked: Set[int] = set()
        for v in sorted(active):
            degree = active_degree[v]
            probability = 1.0 if degree == 0 else 1.0 / (2.0 * degree)
            if rng.random() < probability:
                marked.add(v)
        # Conflict resolution: of two adjacent marked vertices, the one with
        # the smaller (degree, id) key unmarks.
        joined = set(marked)
        for v in marked:
            for w in graph.neighbors(v):
                if w in marked:
                    if (active_degree[v], v) < (active_degree[w], w):
                        joined.discard(v)
        return joined
