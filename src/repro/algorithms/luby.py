"""Luby's randomized MIS algorithm (the classic O(log n) baseline).

The paper positions its contribution against "the elegant randomized
algorithm of [3, 16], generally known as Luby's algorithm".  Luby's
algorithm is a *message-passing* algorithm — nodes exchange numeric values
with identified neighbours — so it does not run on the beeping scheduler.
This module is the per-node *reference* implementation, simulating the
synchronous rounds directly on the graph one dict/set operation at a
time; the vectorised lockstep counterparts (both variants as
:class:`~repro.engine.messages.MessageRule` kernels on the fleet/armada
fabric, bit-reproducible and cross-checked against this module in law)
live in :mod:`repro.engine.messages`.

Two standard variants are provided:

- ``permutation`` (Luby 1985 / the random-priority form): each round every
  active vertex draws a uniform value; a vertex whose value beats all active
  neighbours joins the MIS.  Ties cannot occur with real-valued draws (and
  are broken by vertex id for safety).
- ``probability`` (Alon–Babai–Itai 1986 form): each active vertex marks
  itself with probability ``1/(2·deg)``; if two adjacent vertices are
  marked, the one with smaller degree (breaking ties by id) unmarks; marked
  vertices join.

Message accounting: every round, each active vertex sends one value (or
mark bit + degree) to each active neighbour; we charge ``O(log n)`` bits
per numeric message, which is the textbook accounting the paper's
bit-complexity comparison refers to.
"""

from __future__ import annotations

import math
from random import Random
from typing import Dict, Optional, Set

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph

_VARIANTS = ("permutation", "probability")


class LubyMIS(MISAlgorithm):
    """Luby's algorithm, in either classic variant."""

    def __init__(self, variant: str = "permutation") -> None:
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self._variant = variant

    @property
    def name(self) -> str:
        return f"luby-{self._variant}"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        # Luby's message-passing model has no beep channel, so the beep
        # noise/crash knobs of ``faults`` are ignored — but churn is a
        # topology fault and applies here too, under the same contract
        # as the beeping engines: events land at round start, a
        # deterministic resolution pass re-activates eligible uncovered
        # survivors, and repair time counts executed rounds to the next
        # quiescence (``docs/robustness.md``).
        churn = faults.churn_schedule
        has_churn = not churn.is_empty()
        if has_churn:
            graph = churn.universe_graph(graph)
        joiners = (
            {event.vertex for event in churn.join_events()}
            if has_churn
            else set()
        )
        present: Set[int] = set(graph.vertices()) - joiners
        asleep: Set[int] = set()
        active: Set[int] = set(present)
        mis: Set[int] = set()
        event_rounds = churn.event_rounds() if has_churn else ()
        last_event = churn.last_event_round if has_churn else -1
        repair = [-1] * len(event_rounds)
        recovered = True
        rounds = 0
        messages = 0
        bits = 0
        bits_per_value = max(1, math.ceil(math.log2(max(graph.num_vertices, 2))))

        def record_quiescence(
            executed_rounds: int, applied_rounds: int = -1
        ) -> None:
            # Same applied-batch guard as ChurnState.record_quiescence:
            # the end-of-round checkpoint must not resolve an event whose
            # batch has not landed yet.
            if applied_rounds < 0:
                applied_rounds = executed_rounds
            for b, event_round in enumerate(event_rounds):
                if event_round > applied_rounds:
                    break
                if repair[b] == -1:
                    repair[b] = executed_rounds - event_round

        while active or rounds <= last_event:
            if rounds >= max_rounds:
                if has_churn:
                    recovered = False
                    break
                raise RuntimeError(
                    f"Luby simulation exceeded {max_rounds} rounds"
                )
            if has_churn:
                events = churn.events_at(rounds)
                if any(events[kind] for kind in events):
                    for v in events["leave"]:
                        present.discard(v)
                        asleep.discard(v)
                        mis.discard(v)
                        active.discard(v)
                    for v in events["sleep"]:
                        asleep.add(v)
                        mis.discard(v)
                        active.discard(v)
                    for v in events["wake"]:
                        asleep.discard(v)
                    for v in events["join"]:
                        present.add(v)
                    # Resolution: eligible uncovered survivors re-enter
                    # the competition; consumes no randomness.
                    for v in graph.vertices():
                        if (
                            v in present
                            and v not in asleep
                            and v not in active
                            and v not in mis
                            and not any(w in mis for w in graph.neighbors(v))
                        ):
                            active.add(v)
                    if not active:
                        record_quiescence(rounds)
            if self._variant == "permutation":
                joined = self._permutation_round(graph, active, rng)
            else:
                joined = self._probability_round(graph, active, rng)
            # Messages: each active vertex tells each active neighbour its
            # value/mark, then joiners notify neighbours (1 bit each).
            round_messages = sum(
                sum(1 for w in graph.neighbors(v) if w in active)
                for v in active
            )
            messages += round_messages
            bits += round_messages * bits_per_value
            mis.update(joined)
            removed = set(joined)
            for v in joined:
                for w in graph.neighbors(v):
                    if w in active:
                        removed.add(w)
            active -= removed
            rounds += 1
            if has_churn and not active:
                record_quiescence(rounds, applied_rounds=rounds - 1)
        absent = (
            (set(graph.vertices()) - present) | asleep if has_churn else set()
        )
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=mis,
            rounds=rounds,
            messages=messages,
            bits=bits,
            absent=absent,
            repair_rounds=tuple(repair),
            recovered=recovered,
        )

    @staticmethod
    def _permutation_round(
        graph: Graph, active: Set[int], rng: Random
    ) -> Set[int]:
        """One round of the random-priority variant."""
        values: Dict[int, float] = {v: rng.random() for v in sorted(active)}
        joined: Set[int] = set()
        for v in active:
            v_key = (values[v], v)
            if all(
                v_key < (values[w], w)
                for w in graph.neighbors(v)
                if w in active
            ):
                joined.add(v)
        return joined

    @staticmethod
    def _probability_round(
        graph: Graph, active: Set[int], rng: Random
    ) -> Set[int]:
        """One round of the marking variant."""
        active_degree: Dict[int, int] = {
            v: sum(1 for w in graph.neighbors(v) if w in active)
            for v in sorted(active)
        }
        marked: Set[int] = set()
        for v in sorted(active):
            degree = active_degree[v]
            probability = 1.0 if degree == 0 else 1.0 / (2.0 * degree)
            if rng.random() < probability:
                marked.add(v)
        # Conflict resolution: of two adjacent marked vertices, the one with
        # the smaller (degree, id) key unmarks.
        joined = set(marked)
        for v in marked:
            for w in graph.neighbors(v):
                if w in marked:
                    if (active_degree[v], v) < (active_degree[w], w):
                        joined.discard(v)
        return joined
