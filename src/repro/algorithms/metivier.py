"""The optimal-bit-complexity MIS algorithm of Métivier et al. (2011).

Cited by the paper as reference [18] — the algorithm whose O(log n) bound
is "the best possible bound that can apply for all networks".  Each round,
every active vertex draws a uniform random value and joins the MIS if its
value is a strict local minimum among active neighbours.  The novelty of
Métivier et al. is *bit accounting*: values are revealed bit by bit, and
neighbours stop comparing at the first differing bit, which makes the
expected number of exchanged bits per channel O(log n) over the whole run.

We simulate the round structure exactly and account bits the same way: for
each active edge, the number of bits exchanged in a round is one more than
the length of the common prefix of the endpoints' bit strings (capped at
the precision needed to separate them).

This module is the per-node reference; the vectorised lockstep
counterpart — :class:`~repro.engine.messages.MetivierRule`, including a
vectorised form of the same prefix accounting — runs on the fleet/armada
fabric in :mod:`repro.engine.messages`.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Optional, Set

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.events import Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph

_VALUE_BITS = 64


def _bits_to_separate(a: int, b: int, total_bits: int = _VALUE_BITS) -> int:
    """Bits revealed until two ``total_bits``-bit values first differ.

    Equal values (probability 2^-64 per pair; effectively never) cost the
    full precision.
    """
    if a == b:
        return total_bits
    differing = a ^ b
    # Position of the most significant differing bit, counted from the top.
    return total_bits - differing.bit_length() + 1


class MetivierMIS(MISAlgorithm):
    """Local-minimum MIS with bit-by-bit value comparison accounting."""

    @property
    def name(self) -> str:
        return "metivier"

    def run(
        self,
        graph: Graph,
        rng: Random,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = 100_000,
    ) -> MISRun:
        active: Set[int] = set(graph.vertices())
        mis: Set[int] = set()
        rounds = 0
        messages = 0
        bits = 0
        while active:
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"Metivier simulation exceeded {max_rounds} rounds"
                )
            values: Dict[int, int] = {
                v: rng.getrandbits(_VALUE_BITS) for v in sorted(active)
            }
            # Bit accounting per active edge.
            for v in sorted(active):
                for w in graph.neighbors(v):
                    if w in active and v < w:
                        exchanged = _bits_to_separate(values[v], values[w])
                        # Both endpoints send each revealed bit.
                        bits += 2 * exchanged
                        messages += 2
            joined: Set[int] = set()
            for v in active:
                v_key = (values[v], v)
                if all(
                    v_key < (values[w], w)
                    for w in graph.neighbors(v)
                    if w in active
                ):
                    joined.add(v)
            mis.update(joined)
            removed = set(joined)
            for v in joined:
                for w in graph.neighbors(v):
                    if w in active:
                        removed.add(w)
            active -= removed
            rounds += 1
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=mis,
            rounds=rounds,
            messages=messages,
            bits=bits,
        )
