"""A string-keyed registry of the available MIS algorithms.

The CLI and the experiment harness refer to algorithms by name; this module
is the single place those names are defined.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.afek_global import AfekGlobalMIS
from repro.algorithms.afek_sweep import AfekSweepMIS
from repro.algorithms.base import MISAlgorithm
from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.greedy import SequentialGreedyMIS
from repro.algorithms.local_minimum import LocalMinimumIDMIS
from repro.algorithms.luby import LubyMIS
from repro.algorithms.metivier import MetivierMIS

_FACTORIES: Dict[str, Callable[[], MISAlgorithm]] = {
    "feedback": FeedbackMIS,
    "afek-sweep": AfekSweepMIS,
    "afek-global": AfekGlobalMIS,
    "luby-permutation": lambda: LubyMIS("permutation"),
    "luby-probability": lambda: LubyMIS("probability"),
    "local-minimum-id": LocalMinimumIDMIS,
    "metivier": MetivierMIS,
    "greedy": SequentialGreedyMIS,
    "greedy-fixed": lambda: SequentialGreedyMIS(randomize_order=False),
}


def available_algorithms() -> List[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str) -> MISAlgorithm:
    """Instantiate a registered algorithm by name.

    Raises
    ------
    KeyError
        With the list of valid names, if ``name`` is unknown.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory()
