"""Statistics, regression fits and theoretical reference curves.

- :mod:`~repro.analysis.statistics` — summary statistics with confidence
  intervals (no scipy dependency in the hot path).
- :mod:`~repro.analysis.regression` — least-squares fits of the paper's
  scaling laws (``c·log₂ n`` and ``c·log₂² n``) with goodness-of-fit.
- :mod:`~repro.analysis.theory` — the reference curves drawn in Figure 3
  and the clique-progress quantities from the proof of Theorem 1.
"""

from repro.analysis.statistics import (
    SummaryStats,
    confidence_interval,
    mean,
    sample_std,
    standard_error,
    summarize,
)
from repro.analysis.markov import (
    expected_rounds_complete_graph,
    expected_rounds_k2,
)
from repro.analysis.regression import (
    FitResult,
    fit_linear,
    fit_log2,
    fit_log2_squared,
    r_squared,
)
from repro.analysis.convergence import (
    DecayFit,
    active_series,
    empirical_half_life,
    fit_exponential_decay,
    inactivation_series,
    rounds_to_fraction,
)
from repro.analysis.theory import (
    clique_progress_probability,
    clique_progress_upper_bound,
    expected_rounds_complete_graph_first_join,
    figure3_feedback_reference,
    figure3_sweep_reference,
)

__all__ = [
    "DecayFit",
    "FitResult",
    "SummaryStats",
    "active_series",
    "empirical_half_life",
    "fit_exponential_decay",
    "inactivation_series",
    "rounds_to_fraction",
    "clique_progress_probability",
    "clique_progress_upper_bound",
    "confidence_interval",
    "expected_rounds_complete_graph",
    "expected_rounds_complete_graph_first_join",
    "expected_rounds_k2",
    "figure3_feedback_reference",
    "figure3_sweep_reference",
    "fit_linear",
    "fit_log2",
    "fit_log2_squared",
    "mean",
    "r_squared",
    "sample_std",
    "standard_error",
    "summarize",
]
