"""Convergence analysis of simulation runs.

Tools to quantify *how* a run converges, beyond the final round count:

- per-round active-fraction series and its exponential-decay fit (the
  geometric die-off that makes the O(log n) bound work);
- the half-life of the active set;
- round-resolved join/retire throughput.

Used by the Theorem 2 potential benchmark and available for exploratory
analysis of any traced run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.beeping.metrics import RoundRecord


@dataclass(frozen=True)
class DecayFit:
    """An exponential fit ``active(t) ≈ active(0) · rate^t``."""

    rate: float
    r_squared: float

    @property
    def half_life(self) -> float:
        """Rounds for the active set to halve under the fitted rate."""
        if not 0.0 < self.rate < 1.0:
            return math.inf
        return math.log(0.5) / math.log(self.rate)


def active_series(records: Sequence[RoundRecord]) -> List[int]:
    """Active-vertex counts at the start of each round."""
    return [record.active_before for record in records]


def inactivation_series(records: Sequence[RoundRecord]) -> List[int]:
    """Vertices leaving the active set per round (joins + retirements)."""
    return [record.became_inactive for record in records]


def fit_exponential_decay(series: Sequence[int]) -> Optional[DecayFit]:
    """Least-squares fit of ``log(active)`` against rounds.

    Zero entries terminate the fitted prefix (log undefined); returns
    ``None`` when fewer than two positive points remain.
    """
    points = []
    for t, value in enumerate(series):
        if value <= 0:
            break
        points.append((float(t), math.log(value)))
    if len(points) < 2:
        return None
    n = len(points)
    mean_t = sum(t for t, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    stt = sum((t - mean_t) ** 2 for t, _ in points)
    if stt == 0.0:
        return None
    sty = sum((t - mean_t) * (y - mean_y) for t, y in points)
    slope = sty / stt
    intercept = mean_y - slope * mean_t
    predictions = [slope * t + intercept for t, _ in points]
    total = sum((y - mean_y) ** 2 for _, y in points)
    residual = sum(
        (y - prediction) ** 2
        for (_, y), prediction in zip(points, predictions)
    )
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return DecayFit(rate=math.exp(slope), r_squared=r_squared)


def empirical_half_life(series: Sequence[int]) -> Optional[int]:
    """First round at which the active count drops to half its start.

    ``None`` when the series never halves (e.g. it is empty).
    """
    if not series or series[0] <= 0:
        return None
    target = series[0] / 2.0
    for t, value in enumerate(series):
        if value <= target:
            return t
    return None


def rounds_to_fraction(
    series: Sequence[int], fraction: float
) -> Optional[int]:
    """First round at which at most ``fraction`` of the start remains."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not series or series[0] <= 0:
        return None
    target = series[0] * fraction
    for t, value in enumerate(series):
        if value <= target:
            return t
    return None
