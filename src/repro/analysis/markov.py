"""Exact Markov-chain analysis of the feedback algorithm on tiny cliques.

For a clique, the feedback algorithm's state is symmetric enough to solve
*exactly*: every active vertex hears a beep iff at least one other vertex
beeps, and the run ends when exactly one vertex beeps.  For ``K_2`` the
joint exponent state ``(n1, n2)`` forms a countable Markov chain; both
exponents stay equal forever (both nodes hear exactly the other's beeps,
and the update is deterministic given the observation), which collapses
the chain to a single exponent value and makes the expected absorption
time a small linear system.

This gives the test-suite a *closed-form* target to compare simulation
means against — the strongest kind of cross-validation available for a
randomised algorithm.
"""

from __future__ import annotations

from typing import List

import numpy as np


def k2_transition_exponent(current: int, heard: bool) -> int:
    """The Definition 1 exponent update on a clique (shared by both nodes)."""
    if heard:
        return current + 1
    return max(current - 1, 1)


def expected_rounds_k2(truncation: int = 60) -> float:
    """Exact expected rounds of the feedback algorithm on ``K_2``.

    State: the common exponent ``k`` (p = 2^-k); both vertices always hold
    the same exponent (they start equal and observe symmetric signals:
    each hears a beep iff the *other* beeped... which differs per node).

    Careful: the two nodes' observations differ (node 1 hears node 2's
    beep and vice versa), so exponents can *diverge*.  We therefore model
    the full state ``(a, b)`` of both exponents, truncated at
    ``truncation``; the truncation error is O(2^-truncation).

    Transitions from state ``(a, b)`` with ``p = 2^-a``, ``q = 2^-b``:

    - both beep (pq): both hear → (a+1, b+1);
    - only node 1 beeps (p(1-q)): node 1 joins → absorbed;
    - only node 2 beeps ((1-p)q): absorbed;
    - neither beeps ((1-p)(1-q)): neither hears → (a-1, b-1) floored at 1.
    """
    if truncation < 2:
        raise ValueError("truncation must be >= 2")
    size = truncation * truncation

    def index(a: int, b: int) -> int:
        return (a - 1) * truncation + (b - 1)

    transition = np.zeros((size, size))
    for a in range(1, truncation + 1):
        for b in range(1, truncation + 1):
            p = 2.0 ** -a
            q = 2.0 ** -b
            row = index(a, b)
            both = p * q
            neither = (1.0 - p) * (1.0 - q)
            up_a = min(a + 1, truncation)
            up_b = min(b + 1, truncation)
            down_a = max(a - 1, 1)
            down_b = max(b - 1, 1)
            transition[row, index(up_a, up_b)] += both
            transition[row, index(down_a, down_b)] += neither
            # Absorption mass p(1-q) + (1-p)q leaves the system.
    # Expected absorption time: t = 1 + P t  =>  (I - P) t = 1.
    times = np.linalg.solve(np.eye(size) - transition, np.ones(size))
    return float(times[index(1, 1)])


def expected_rounds_complete_graph(
    n: int, truncation: int = 24, max_iterations: int = 100_000
) -> float:
    """Expected rounds on ``K_n`` with the *common-exponent* approximation.

    On a clique all vertices receive nearly symmetric feedback, so to good
    approximation they share one exponent ``k``: with ``p = 2^-k``,

    - exactly one vertex beeps (prob ``n·p·(1-p)^{n-1}``): absorbed;
    - no vertex beeps (``(1-p)^n``): ``k ← max(k-1, 1)``;
    - two or more beep (rest): every vertex hears a beep, ``k ← k+1``.

    (This is exact for the *first* divergence-free phase and matches
    simulation closely for all n tested; the exact K_2 chain above is the
    reference for the two-node case.)
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    size = truncation
    transition = np.zeros((size, size))
    for k in range(1, truncation + 1):
        p = 2.0 ** -k
        absorbed = n * p * (1.0 - p) ** (n - 1)
        silent = (1.0 - p) ** n
        noisy = max(1.0 - absorbed - silent, 0.0)
        row = k - 1
        transition[row, max(k - 1, 1) - 1] += silent
        transition[row, min(k + 1, truncation) - 1] += noisy
    times = np.linalg.solve(np.eye(size) - transition, np.ones(size))
    return float(times[0])


def simulated_rounds_k2(trials: int, seed: int) -> List[int]:
    """Simulation counterpart of :func:`expected_rounds_k2`."""
    from random import Random

    from repro.algorithms.feedback import FeedbackMIS
    from repro.graphs.graph import Graph

    graph = Graph(2, [(0, 1)])
    algorithm = FeedbackMIS()
    rng = Random(seed)
    rounds = []
    for _trial in range(trials):
        run = algorithm.run(graph, Random(rng.getrandbits(48)))
        rounds.append(run.rounds)
    return rounds
