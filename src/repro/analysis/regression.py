"""Least-squares fits of the paper's scaling laws.

Figure 3's claim is quantitative: the sweep algorithm's mean round count
tracks ``log₂² n`` while the feedback algorithm's tracks ``2.5 log₂ n``.
The benchmark harness checks those claims by fitting

    rounds ≈ c · log₂(n) + b       (:func:`fit_log2`)
    rounds ≈ c · log₂(n)² + b      (:func:`fit_log2_squared`)

and comparing the coefficient ``c`` and the goodness-of-fit of the two
models.  Plain closed-form simple linear regression, from scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class FitResult:
    """The result of a simple linear regression ``y ≈ slope·f(x) + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    feature_name: str

    def predict(self, feature_value: float) -> float:
        """Predicted y at a given *feature* value (i.e. f(x), not x)."""
        return self.slope * feature_value + self.intercept

    def format(self) -> str:
        """e.g. ``y = 2.41·log2(n) + 1.3 (R²=0.992)``."""
        return (
            f"y = {self.slope:.3g}·{self.feature_name} + "
            f"{self.intercept:.3g} (R²={self.r_squared:.4f})"
        )


def _simple_regression(
    features: Sequence[float], ys: Sequence[float], feature_name: str
) -> FitResult:
    if len(features) != len(ys):
        raise ValueError("features and ys must have equal length")
    if len(features) < 2:
        raise ValueError("regression needs at least 2 points")
    n = len(features)
    mean_x = sum(features) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in features)
    if sxx == 0.0:
        raise ValueError("all feature values identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(features, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    predictions = [slope * x + intercept for x in features]
    return FitResult(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared(ys, predictions),
        feature_name=feature_name,
    )


def r_squared(ys: Sequence[float], predictions: Sequence[float]) -> float:
    """Coefficient of determination; 1.0 when the y-variance is zero and
    the predictions are exact."""
    if len(ys) != len(predictions):
        raise ValueError("ys and predictions must have equal length")
    n = len(ys)
    if n == 0:
        raise ValueError("r_squared of empty sample")
    mean_y = sum(ys) / n
    total = sum((y - mean_y) ** 2 for y in ys)
    residual = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ slope·x + intercept``."""
    return _simple_regression(list(xs), list(ys), "x")


def fit_log2(ns: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ slope·log₂(n) + intercept`` (the Theorem 2 / feedback law)."""
    features = [math.log2(n) for n in ns]
    return _simple_regression(features, list(ys), "log2(n)")


def fit_log2_squared(ns: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ slope·log₂²(n) + intercept`` (the sweep / Theorem 1 law)."""
    features = [math.log2(n) ** 2 for n in ns]
    return _simple_regression(features, list(ys), "log2(n)^2")


def best_model(
    ns: Sequence[float], ys: Sequence[float]
) -> Tuple[str, FitResult]:
    """Which of the two scaling laws fits better (by R²).

    Returns ``("log2", fit)`` or ``("log2_squared", fit)``.
    """
    log_fit = fit_log2(ns, ys)
    square_fit = fit_log2_squared(ns, ys)
    if log_fit.r_squared >= square_fit.r_squared:
        return ("log2", log_fit)
    return ("log2_squared", square_fit)
