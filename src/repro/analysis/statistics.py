"""Summary statistics for trial results.

Implemented from scratch (Welford accumulation, normal-approximation
confidence intervals) so the experiment harness has no heavyweight
dependencies; numpy arrays are accepted anywhere a sequence is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

# Two-sided z-values for the confidence levels the harness reports.
_Z_VALUES = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than 2 values."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((x - m) ** 2 for x in values) / (len(values) - 1))


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    return sample_std(values) / math.sqrt(len(values))


def confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean at the given level.

    Only the levels 0.80, 0.90, 0.95 and 0.99 are supported (the z-table is
    embedded to avoid a scipy dependency).
    """
    if level not in _Z_VALUES:
        raise ValueError(
            f"level must be one of {sorted(_Z_VALUES)}, got {level}"
        )
    values = list(values)
    m = mean(values)
    half_width = _Z_VALUES[level] * standard_error(values)
    return (m - half_width, m + half_width)


@dataclass(frozen=True)
class SummaryStats:
    """Mean/std/extremes summary of one sample."""

    count: int
    mean: float
    std: float
    sem: float
    minimum: float
    maximum: float
    median: float

    def format(self, precision: int = 2) -> str:
        """Short human-readable rendering, e.g. ``12.30 ± 1.40 (n=100)``."""
        return (
            f"{self.mean:.{precision}f} ± {self.std:.{precision}f} "
            f"(n={self.count})"
        )


def median(values: Sequence[float]) -> float:
    """Sample median; raises on empty input."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    k = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return float(ordered[k])
    return (ordered[k - 1] + ordered[k]) / 2.0


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` of a non-empty sample."""
    values = [float(x) for x in values]
    if not values:
        raise ValueError("summarize of empty sequence")
    return SummaryStats(
        count=len(values),
        mean=mean(values),
        std=sample_std(values),
        sem=standard_error(values),
        minimum=min(values),
        maximum=max(values),
        median=median(values),
    )
