"""Theoretical reference quantities from the paper.

Two groups:

- the reference curves drawn in Figure 3 (``log₂² n`` dashed, ``2.5 log₂ n``
  dotted — "all logarithms to base 2");
- the clique-progress quantities used in the proof of Theorem 1: a copy of
  ``K_d`` gains an MIS vertex in a step exactly when *exactly one* of its
  ``d`` vertices beeps, which happens with probability ``d·p·(1-p)^(d-1)``;
  inequality (1) of the paper bounds this by ``d·p·e^{-(d-1)p}`` and the
  proof shows the bound ``3/(2e)`` for ``d > 2``.
"""

from __future__ import annotations

import math


def figure3_sweep_reference(n: float) -> float:
    """The upper dashed line of Figure 3: ``log₂²(n)``."""
    if n <= 1:
        return 0.0
    return math.log2(n) ** 2


def figure3_feedback_reference(n: float) -> float:
    """The lower dotted line of Figure 3: ``2.5·log₂(n)``."""
    if n <= 1:
        return 0.0
    return 2.5 * math.log2(n)


def clique_progress_probability(d: int, p: float) -> float:
    """P[exactly one vertex of K_d beeps] = ``d·p·(1-p)^(d-1)``.

    This is the probability that the clique makes progress (one vertex
    joins the MIS, the rest retire) in a round where all vertices beep with
    probability ``p``.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return d * p * (1.0 - p) ** (d - 1)


def clique_progress_upper_bound(d: int, p: float) -> float:
    """Inequality (1) of the paper: ``d·p·e^{-(d-1)p}``."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return d * p * math.exp(-(d - 1) * p)


MAX_CLIQUE_PROGRESS_BOUND = 3.0 / (2.0 * math.e)
"""The proof's uniform bound on the progress probability for ``d > 2``."""


def expected_rounds_complete_graph_first_join(n: int, p: float = 0.5) -> float:
    """Expected rounds for a *fixed-probability* K_n to see its first join.

    The paper's Section 4 observation: in a complete graph with every node
    beeping at probability ``p = 1/2``, the per-round success probability is
    ``n/2^n``, so the first join is exponentially slow — this is why the
    feedback mechanism (which drives p down toward 1/n) is essential and
    why Luby-style per-round edge-count arguments do not apply.
    """
    success = clique_progress_probability(n, p)
    if success <= 0.0:
        return math.inf
    return 1.0 / success


def optimal_clique_probability(d: int) -> float:
    """The p maximising :func:`clique_progress_probability` for K_d: 1/d."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return 1.0 / d
