"""MIS as a building block (the paper's conclusion, made concrete).

"Selecting a maximal independent set can also be used as a fundamental
building block in algorithms for many other problems in distributed
computing."  This package implements three classic reductions, each usable
with *any* registered MIS algorithm (so the feedback algorithm's one-bit
beeping machinery directly powers them):

- :mod:`~repro.applications.coloring` — vertex colouring with at most
  Δ+1 colours by iterated MIS peeling.
- :mod:`~repro.applications.matching` — maximal matching via an MIS of the
  line graph.
- :mod:`~repro.applications.dominating` — an MIS is an independent
  dominating set; comparison against the greedy set-cover heuristic.
"""

from repro.applications.coloring import (
    ColoringResult,
    mis_coloring,
    verify_coloring,
)
from repro.applications.matching import (
    MatchingResult,
    line_graph,
    mis_matching,
    verify_maximal_matching,
)
from repro.applications.dominating import (
    greedy_dominating_set,
    mis_dominating_set,
    verify_dominating_set,
)
from repro.applications.ruling_sets import (
    graph_power,
    hop_distance,
    ruling_set,
    verify_ruling_set,
)

__all__ = [
    "ColoringResult",
    "MatchingResult",
    "graph_power",
    "greedy_dominating_set",
    "hop_distance",
    "line_graph",
    "ruling_set",
    "verify_ruling_set",
    "mis_coloring",
    "mis_dominating_set",
    "mis_matching",
    "verify_coloring",
    "verify_dominating_set",
    "verify_maximal_matching",
]
