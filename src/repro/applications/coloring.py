"""Vertex colouring by iterated MIS peeling.

The classic reduction: repeatedly compute an MIS of the still-uncoloured
induced subgraph and give all its members the next colour.  Every vertex
outside the MIS has a neighbour inside it, so its degree in the remaining
graph strictly decreases each layer; after at most Δ+1 layers every vertex
is coloured, giving a proper (Δ+1)-colouring.  In the distributed setting
each layer is one MIS execution, so running it with the paper's feedback
algorithm costs O(Δ log n) expected beeping rounds with one-bit messages.

This module is the per-node *reference* implementation; the vectorised
fleet kernel (:class:`repro.engine.applications.ColoringRule`) runs the
same peeling over whole trial batches in lockstep and is
conformance-locked against it — identical colourings for the same seed
through the :class:`repro.engine.applications.EngineMIS` adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional

from repro.algorithms.base import MISAlgorithm
from repro.algorithms.feedback import FeedbackMIS
from repro.graphs.graph import Graph


@dataclass
class ColoringResult:
    """A proper vertex colouring produced by MIS peeling."""

    graph: Graph
    colors: List[int]
    num_colors: int
    total_rounds: int
    layers: List[List[int]]

    def color_classes(self) -> Dict[int, List[int]]:
        """Vertices grouped by colour."""
        classes: Dict[int, List[int]] = {}
        for v, color in enumerate(self.colors):
            classes.setdefault(color, []).append(v)
        return classes


def verify_coloring(graph: Graph, colors: List[int]) -> int:
    """Assert the colouring is proper and complete; return colour count.

    Raises
    ------
    AssertionError
        If an edge is monochromatic or a vertex is uncoloured.
    """
    if len(colors) != graph.num_vertices:
        raise AssertionError(
            f"{len(colors)} colours for {graph.num_vertices} vertices"
        )
    for v, color in enumerate(colors):
        if color < 0:
            raise AssertionError(f"vertex {v} is uncoloured")
    for u, w in graph.edges():
        if colors[u] == colors[w]:
            raise AssertionError(
                f"edge ({u}, {w}) is monochromatic (colour {colors[u]})"
            )
    return len(set(colors))


def mis_coloring(
    graph: Graph,
    rng: Random,
    algorithm: Optional[MISAlgorithm] = None,
) -> ColoringResult:
    """Colour ``graph`` with at most ``max_degree + 1`` colours.

    ``algorithm`` defaults to the paper's feedback algorithm; any
    :class:`MISAlgorithm` works.  Layers run on induced subgraphs with
    vertices relabelled, so the MIS algorithm needs no multi-run state.
    """
    algorithm = algorithm or FeedbackMIS()
    n = graph.num_vertices
    colors = [-1] * n
    layers: List[List[int]] = []
    total_rounds = 0
    remaining = list(graph.vertices())
    color = 0
    while remaining:
        subgraph = graph.subgraph(remaining)
        run = algorithm.run(subgraph, rng)
        run.verify()
        layer = sorted(remaining[i] for i in run.mis)
        for v in layer:
            colors[v] = color
        layers.append(layer)
        total_rounds += run.rounds
        remaining = [v for v in remaining if colors[v] < 0]
        color += 1
    num_colors = verify_coloring(graph, colors)
    if num_colors != color:
        raise AssertionError(
            f"verified colour count {num_colors} != {color} peeling layers"
        )
    if num_colors > graph.max_degree() + 1:
        raise AssertionError(
            f"MIS peeling used {num_colors} colours, more than "
            f"max_degree + 1 = {graph.max_degree() + 1}"
        )
    return ColoringResult(
        graph=graph,
        colors=colors,
        num_colors=num_colors,
        total_rounds=total_rounds,
        layers=layers,
    )
