"""Dominating sets from MIS selection.

Every maximal independent set is a dominating set (maximality is exactly
domination), and it is additionally *independent* — the combination the
fly's SOP pattern realises.  For comparison, the classic centralised greedy
set-cover heuristic for plain domination is included: it may pick fewer
vertices (it is allowed to pick adjacent ones) but needs global degree
information, which beeping nodes do not have.

This module is the per-node *reference* implementation; the vectorised
fleet kernel (:class:`repro.engine.applications.DominatingSetRule`) runs
the same reduction over whole trial batches in lockstep and is
conformance-locked against it — identical chosen sets for the same seed
through the :class:`repro.engine.applications.EngineMIS` adapter.
"""

from __future__ import annotations

from random import Random
from typing import Iterable, Optional, Set

from repro.algorithms.base import MISAlgorithm
from repro.algorithms.feedback import FeedbackMIS
from repro.graphs.graph import Graph


def verify_dominating_set(graph: Graph, vertices: Iterable[int]) -> Set[int]:
    """Assert every vertex is in the set or adjacent to it.

    Raises
    ------
    AssertionError
        Naming the first undominated vertex otherwise.
    """
    dominating = set(vertices)
    for v in graph.vertices():
        if v in dominating:
            continue
        if not any(w in dominating for w in graph.neighbors(v)):
            raise AssertionError(f"vertex {v} is not dominated")
    return dominating


def mis_dominating_set(
    graph: Graph,
    rng: Random,
    algorithm: Optional[MISAlgorithm] = None,
) -> Set[int]:
    """An independent dominating set via any MIS algorithm (default:
    the paper's feedback algorithm)."""
    algorithm = algorithm or FeedbackMIS()
    run = algorithm.run(graph, rng)
    run.verify()
    return verify_dominating_set(graph, run.mis)


def greedy_dominating_set(graph: Graph) -> Set[int]:
    """The centralised greedy set-cover heuristic (ln Δ approximation).

    Repeatedly picks the vertex dominating the most currently undominated
    vertices (ties broken by vertex id for determinism).
    """
    undominated = set(graph.vertices())
    chosen: Set[int] = set()
    while undominated:
        best_vertex = -1
        best_gain = -1
        for v in graph.vertices():
            if v in chosen:
                continue
            gain = (1 if v in undominated else 0) + sum(
                1 for w in graph.neighbors(v) if w in undominated
            )
            if gain > best_gain:
                best_gain = gain
                best_vertex = v
        chosen.add(best_vertex)
        undominated.discard(best_vertex)
        undominated.difference_update(graph.neighbors(best_vertex))
    return verify_dominating_set(graph, chosen)
