"""Maximal matching via an MIS of the line graph.

Two edges of ``G`` conflict when they share an endpoint, i.e. when they are
adjacent in the line graph ``L(G)``.  A maximal independent set of ``L(G)``
is therefore exactly a maximal matching of ``G`` — the standard reduction.
In a beeping network the line-graph nodes are the radio links; running the
feedback algorithm "on the links" costs O(log m) expected rounds.

This module is the per-node *reference* implementation; the vectorised
fleet kernel (:class:`repro.engine.applications.MatchingRule`) runs the
same reduction on an array-built line graph over whole trial batches and
is conformance-locked against it — identical matchings for the same seed
through the :class:`repro.engine.applications.EngineMIS` adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Set, Tuple

from repro.algorithms.base import MISAlgorithm
from repro.algorithms.feedback import FeedbackMIS
from repro.graphs.graph import Graph, GraphBuilder

Edge = Tuple[int, int]


def line_graph(graph: Graph) -> Tuple[Graph, List[Edge]]:
    """The line graph ``L(G)`` and the edge list indexing its vertices.

    Vertex ``i`` of the line graph is ``edges[i]``; two line-graph vertices
    are adjacent iff the corresponding edges share an endpoint.
    """
    # Normalise both the stored list and the index keys: the lookup below
    # canonicalises to (min, max), so the dict must be keyed the same way
    # even if a Graph subclass yields edges in (v, u) order.
    edges = [(u, v) if u <= v else (v, u) for u, v in graph.edges()]
    index_by_edge = {edge: i for i, edge in enumerate(edges)}
    builder = GraphBuilder(len(edges))
    for v in graph.vertices():
        incident = [
            index_by_edge[(min(v, w), max(v, w))] for w in graph.neighbors(v)
        ]
        builder.add_clique(sorted(incident))
    return builder.build(), edges


def verify_maximal_matching(graph: Graph, matching: Set[Edge]) -> Set[Edge]:
    """Assert ``matching`` is a maximal matching of ``graph``.

    Raises
    ------
    AssertionError
        If two matched edges share an endpoint, a matched edge is missing
        from the graph, or some graph edge could still be added.
    """
    matched_vertices: Set[int] = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            raise AssertionError(f"({u}, {v}) is not an edge of the graph")
        if u in matched_vertices or v in matched_vertices:
            raise AssertionError(
                f"matched edge ({u}, {v}) shares an endpoint with another"
            )
        matched_vertices.add(u)
        matched_vertices.add(v)
    for u, v in graph.edges():
        if u not in matched_vertices and v not in matched_vertices:
            raise AssertionError(
                f"matching is not maximal: edge ({u}, {v}) could be added"
            )
    return set(matching)


@dataclass
class MatchingResult:
    """A maximal matching produced through the line-graph reduction."""

    graph: Graph
    matching: Set[Edge]
    rounds: int

    @property
    def size(self) -> int:
        """Number of matched edges."""
        return len(self.matching)

    def matched_vertices(self) -> Set[int]:
        """All endpoints of matched edges."""
        return {v for edge in self.matching for v in edge}


def mis_matching(
    graph: Graph,
    rng: Random,
    algorithm: Optional[MISAlgorithm] = None,
) -> MatchingResult:
    """Compute a maximal matching of ``graph`` via MIS on ``L(G)``."""
    algorithm = algorithm or FeedbackMIS()
    lg, edges = line_graph(graph)
    if lg.num_vertices == 0:
        return MatchingResult(graph=graph, matching=set(), rounds=0)
    run = algorithm.run(lg, rng)
    run.verify()
    matching = {edges[i] for i in run.mis}
    verify_maximal_matching(graph, matching)
    return MatchingResult(graph=graph, matching=matching, rounds=run.rounds)
