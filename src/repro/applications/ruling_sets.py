"""Ruling sets: the classic generalisation of MIS.

An *(α, β)-ruling set* of a graph is a vertex set where chosen vertices
are pairwise at distance ≥ α and every vertex is within distance β of a
chosen one.  An MIS is exactly a (2, 1)-ruling set.  Distance-α ruling
sets with β = α − 1 follow from one MIS computation on the (α−1)-th graph
power — so the paper's feedback algorithm directly yields ruling sets,
another entry for the conclusion's "fundamental building block" claim
(ruling sets underpin network decompositions and many LOCAL-model
algorithms).

This module is the per-node *reference* implementation; the vectorised
fleet kernel (:class:`repro.engine.applications.RulingSetRule`) runs the
same reduction on a GEMM-built graph power over whole trial batches and
is conformance-locked against it — identical ruling sets for the same
seed through the :class:`repro.engine.applications.EngineMIS` adapter.
"""

from __future__ import annotations

from collections import deque
from random import Random
from typing import Dict, List, Optional, Set

from repro.algorithms.base import MISAlgorithm
from repro.algorithms.feedback import FeedbackMIS
from repro.graphs.graph import Graph, GraphBuilder


def graph_power(graph: Graph, k: int) -> Graph:
    """The k-th power: edges between distinct vertices at distance ≤ k.

    BFS from each vertex, truncated at depth ``k``; O(n·(n + m)) worst
    case, fine for the sizes this library simulates.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    builder = GraphBuilder(graph.num_vertices)
    for source in graph.vertices():
        distances = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if distances[u] == k:
                continue
            for w in graph.neighbors(u):
                if w not in distances:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        for v, distance in distances.items():
            if v > source and distance >= 1:
                builder.add_edge(source, v)
    return builder.build()


def hop_distance(graph: Graph, source: int, target: int) -> Optional[int]:
    """BFS hop distance, ``None`` when unreachable."""
    if source == target:
        return 0
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in distances:
                distances[w] = distances[u] + 1
                if w == target:
                    return distances[w]
                queue.append(w)
    return None


def verify_ruling_set(
    graph: Graph, chosen: Set[int], alpha: int, beta: int
) -> Set[int]:
    """Assert the (α, β)-ruling conditions.

    Raises
    ------
    AssertionError
        Naming the violating pair or uncovered vertex.
    """
    chosen = set(chosen)
    chosen_list = sorted(chosen)
    for i, u in enumerate(chosen_list):
        for v in chosen_list[i + 1:]:
            distance = hop_distance(graph, u, v)
            if distance is not None and distance < alpha:
                raise AssertionError(
                    f"chosen vertices {u} and {v} are at distance "
                    f"{distance} < alpha={alpha}"
                )
    # Coverage: multi-source BFS from the chosen set.
    distances: Dict[int, int] = {v: 0 for v in chosen}
    queue = deque(chosen_list)
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in distances:
                distances[w] = distances[u] + 1
                queue.append(w)
    for v in graph.vertices():
        if distances.get(v, beta + 1) > beta:
            raise AssertionError(
                f"vertex {v} is farther than beta={beta} from the set"
            )
    return chosen


def ruling_set(
    graph: Graph,
    alpha: int,
    rng: Random,
    algorithm: Optional[MISAlgorithm] = None,
) -> Set[int]:
    """A (α, α−1)-ruling set via one MIS on the (α−1)-th graph power.

    ``alpha = 2`` is a plain MIS.  The chosen set is independent in
    ``G^(α−1)`` (pairwise distance ≥ α in ``G``) and dominating there
    (every vertex within α−1 hops of a chosen one).
    """
    if alpha < 2:
        raise ValueError(f"alpha must be >= 2, got {alpha}")
    algorithm = algorithm or FeedbackMIS()
    power = graph_power(graph, alpha - 1) if alpha > 2 else graph
    run = algorithm.run(power, rng)
    run.verify()
    return verify_ruling_set(graph, run.mis, alpha, alpha - 1)
