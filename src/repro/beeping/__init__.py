"""The beeping-model runtime.

This package implements the synchronous "beeping" model of distributed
computing used by the paper (following Afek et al., DISC 2011): time is
divided into discrete rounds; in each round every active node may emit a
one-bit *beep*, and each node observes only the OR of its neighbours' beeps
— it learns whether at least one neighbour beeped, not which or how many.

The runtime is deliberately split into small pieces:

- :mod:`~repro.beeping.rng` — deterministic seed derivation.
- :mod:`~repro.beeping.node` — the per-node protocol every beeping MIS
  algorithm implements.
- :mod:`~repro.beeping.faults` — channel/node fault models for the
  robustness experiments.
- :mod:`~repro.beeping.channel` — one-round beep propagation under a fault
  model.
- :mod:`~repro.beeping.events` — structured trace events.
- :mod:`~repro.beeping.metrics` — per-round and per-node accounting.
- :mod:`~repro.beeping.scheduler` — the synchronous round loop
  (:class:`BeepingSimulation`).
"""

from repro.beeping.channel import BeepChannel
from repro.beeping.events import (
    NodeJoinedEvent,
    NodeRetiredEvent,
    RoundEvent,
    Trace,
)
from repro.beeping.faults import CrashSchedule, FaultModel, NO_FAULTS
from repro.beeping.metrics import RoundRecord, SimulationMetrics
from repro.beeping.node import BeepingNode, NodeState
from repro.beeping.rng import RngStream, derive_seed, spawn_rng
from repro.beeping.scheduler import (
    BeepingSimulation,
    SimulationResult,
    TerminationError,
)
from repro.beeping.wakeup import (
    WakeupResult,
    WakeupSimulation,
    random_wake_schedule,
)

__all__ = [
    "BeepChannel",
    "BeepingNode",
    "BeepingSimulation",
    "CrashSchedule",
    "FaultModel",
    "NO_FAULTS",
    "NodeJoinedEvent",
    "NodeRetiredEvent",
    "NodeState",
    "RngStream",
    "RoundEvent",
    "RoundRecord",
    "SimulationMetrics",
    "SimulationResult",
    "TerminationError",
    "Trace",
    "WakeupResult",
    "WakeupSimulation",
    "derive_seed",
    "random_wake_schedule",
    "spawn_rng",
]
