"""One-round beep propagation.

The channel turns "who beeped" into "who heard a beep", applying the fault
model.  In the fault-free case a node hears a beep exactly when at least one
neighbour beeped — the one-bit OR observation of the beeping model.
"""

from __future__ import annotations

from random import Random
from typing import AbstractSet, List, Set

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.graphs.graph import Graph


class BeepChannel:
    """Propagates beeps across a graph under a fault model.

    A single channel instance serves a whole simulation; it is stateless
    apart from its configuration.
    """

    def __init__(self, graph: Graph, faults: FaultModel = NO_FAULTS) -> None:
        self._graph = graph
        self._faults = faults

    @property
    def graph(self) -> Graph:
        """The underlying communication graph."""
        return self._graph

    @property
    def faults(self) -> FaultModel:
        """The fault model applied to every round."""
        return self._faults

    def deliver(
        self,
        beepers: AbstractSet[int],
        listeners: AbstractSet[int],
        rng: Random,
    ) -> Set[int]:
        """Compute which ``listeners`` hear at least one beep.

        Parameters
        ----------
        beepers:
            Vertices that emitted a beep this round.
        listeners:
            Vertices whose observation matters (active nodes).  Inactive or
            crashed vertices need no delivery.
        rng:
            Source of randomness for fault injection.  Unused when the model
            is fault-free, so fault-free runs consume no extra randomness
            (this keeps the reference engine and the vectorised engine on
            identical random streams).

        Returns
        -------
        The set of listeners that hear a beep.
        """
        loss = self._faults.beep_loss_probability
        spurious = self._faults.spurious_beep_probability
        heard: Set[int] = set()
        if loss == 0.0:
            # Fast path: a listener hears iff some neighbour beeped.
            for v in listeners:
                neighbor_set = self._graph.neighbor_set(v)
                if not beepers.isdisjoint(neighbor_set):
                    heard.add(v)
        else:
            # Each (beeper -> listener) delivery is dropped independently.
            # Iterate in sorted order so the random stream is deterministic.
            for v in sorted(listeners):
                for w in self._graph.neighbors(v):
                    if w in beepers and rng.random() >= loss:
                        heard.add(v)
                        break
        if spurious > 0.0:
            for v in sorted(listeners):
                if v not in heard and rng.random() < spurious:
                    heard.add(v)
        return heard

    def reliable_or(self, beepers: AbstractSet[int], vertex: int) -> bool:
        """Fault-free observation for ``vertex`` (used by the second,
        reliable exchange: join/retire notifications)."""
        return not beepers.isdisjoint(self._graph.neighbor_set(vertex))
