"""Structured trace events emitted by the scheduler.

Traces are optional (they cost memory proportional to activity), but they
are what makes the proof-of-Theorem-2 instrumentation possible: the
potential-function analysis in :mod:`repro.core.instrumentation` replays a
trace to classify every round of a vertex's life into the proof's E1–E4
events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class RoundEvent:
    """Everything that happened in one round.

    Attributes
    ----------
    round_index:
        0-based round number.
    beepers:
        Vertices that beeped in the first exchange.
    heard:
        Vertices (among the active listeners) that heard at least one beep.
    joined:
        Vertices added to the MIS this round.
    retired:
        Vertices that became inactive because a neighbour joined.
    crashed:
        Vertices removed by the crash schedule at the start of this round.
    probabilities:
        Beep probability of each active vertex at the *start* of the round,
        as ``(vertex, probability)`` pairs sorted by vertex; ``None`` when
        probability recording is disabled.
    """

    round_index: int
    beepers: FrozenSet[int]
    heard: FrozenSet[int]
    joined: FrozenSet[int]
    retired: FrozenSet[int]
    crashed: FrozenSet[int] = frozenset()
    probabilities: Optional[Tuple[Tuple[int, float], ...]] = None


@dataclass(frozen=True)
class NodeJoinedEvent:
    """Vertex ``vertex`` joined the MIS in round ``round_index``."""

    round_index: int
    vertex: int


@dataclass(frozen=True)
class NodeRetiredEvent:
    """Vertex ``vertex`` retired in round ``round_index`` because neighbour
    ``cause`` joined the MIS."""

    round_index: int
    vertex: int
    cause: int


@dataclass
class Trace:
    """An append-only record of a simulation.

    ``record_probabilities`` controls whether per-round probability
    snapshots are stored (needed by the potential-function instrumentation,
    but memory-hungry for large graphs).
    """

    record_probabilities: bool = False
    rounds: List[RoundEvent] = field(default_factory=list)
    joins: List[NodeJoinedEvent] = field(default_factory=list)
    retirements: List[NodeRetiredEvent] = field(default_factory=list)

    def append_round(self, event: RoundEvent) -> None:
        """Record a completed round."""
        if event.round_index != len(self.rounds):
            raise ValueError(
                f"round {event.round_index} appended out of order "
                f"(expected {len(self.rounds)})"
            )
        self.rounds.append(event)
        for vertex in sorted(event.joined):
            self.joins.append(NodeJoinedEvent(event.round_index, vertex))

    def append_retirement(
        self, round_index: int, vertex: int, cause: int
    ) -> None:
        """Record that ``vertex`` retired because ``cause`` joined."""
        self.retirements.append(
            NodeRetiredEvent(round_index, vertex, cause)
        )

    @property
    def num_rounds(self) -> int:
        """Number of rounds recorded so far."""
        return len(self.rounds)

    def beeps_of(self, vertex: int) -> List[int]:
        """The rounds in which ``vertex`` beeped."""
        return [e.round_index for e in self.rounds if vertex in e.beepers]

    def join_round_of(self, vertex: int) -> Optional[int]:
        """The round in which ``vertex`` joined the MIS, or ``None``."""
        for event in self.joins:
            if event.vertex == vertex:
                return event.round_index
        return None
