"""Fault models for robustness experiments.

The paper argues (Section 6) that the feedback algorithm is "highly robust".
To test that claim beyond the clean model, the channel supports three kinds
of injected faults:

- **beep loss** — each transmitted beep is dropped independently on each
  receiving edge with probability ``beep_loss_probability`` (an unreliable
  radio link);
- **spurious beeps** — each listening node hears a phantom beep with
  probability ``spurious_beep_probability`` (background noise);
- **crashes** — a :class:`CrashSchedule` removes nodes at fixed rounds
  (fail-stop processes).

Faults only perturb the *first* exchange (the probability feedback); the
second exchange (join/retire notifications) stays reliable so that the
output remains a well-defined independent set — exactly the separation the
paper's robustness discussion assumes, since only the feedback path is
claimed to tolerate noise.

Two equivalent samplings of beep loss
-------------------------------------
The per-node reference engine (:class:`~repro.beeping.channel.BeepChannel`)
drops each *edge delivery* independently: listener ``v`` with ``k`` beeping
neighbours hears iff at least one of ``k`` Bernoulli(1 - q) deliveries
survives.  The vectorised engines sample the same law with a single
per-node uniform against the collapsed probability ``1 - q**k`` (``k`` is
the beeping-neighbour count the engines already compute).  The two are
identical in distribution — per listener, per round, independently — but
consume randomness differently, so the reference engine agrees with the
vectorised engines *in law* while the vectorised engines agree with each
other *bit for bit* (see ``docs/robustness.md`` for the full contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple


@dataclass(frozen=True)
class CrashSchedule:
    """Fail-stop crashes: vertex ``v`` crashes at the start of round ``r``.

    Crashed nodes never beep, never join the MIS and do not count as
    uncovered for termination purposes (they have left the system).
    """

    crashes: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[int, int]]) -> "CrashSchedule":
        """Build from ``(round, vertex)`` pairs."""
        by_round: Dict[int, Set[int]] = {}
        for round_index, vertex in pairs:
            if round_index < 0:
                raise ValueError(f"round must be >= 0, got {round_index}")
            by_round.setdefault(round_index, set()).add(vertex)
        return CrashSchedule(
            {r: frozenset(vs) for r, vs in by_round.items()}
        )

    def crashed_at(self, round_index: int) -> FrozenSet[int]:
        """Vertices that crash at the start of the given round."""
        return self.crashes.get(round_index, frozenset())

    def is_empty(self) -> bool:
        """Whether the schedule contains no crashes at all."""
        return not self.crashes

    def round_masks(self, num_vertices: int) -> Dict[int, "object"]:
        """Per-round boolean crash masks for the vectorised engines.

        Maps each scheduled round to a length-``num_vertices`` boolean
        numpy array that is ``True`` on the vertices crashing at the start
        of that round.  Scheduled vertices outside ``0..num_vertices-1``
        are ignored, mirroring the reference scheduler's ``v in graph``
        guard.  Rounds whose vertices all fall outside the graph are
        omitted.  (numpy is imported lazily so the reference engine stays
        stdlib-only.)
        """
        import numpy as np

        masks: Dict[int, "object"] = {}
        for round_index, vertices in self.crashes.items():
            in_range = [v for v in vertices if 0 <= v < num_vertices]
            if not in_range:
                continue
            mask = np.zeros(num_vertices, dtype=bool)
            mask[in_range] = True
            masks[round_index] = mask
        return masks


@dataclass(frozen=True)
class FaultModel:
    """Channel and node fault parameters for one simulation.

    The default-constructed model is fault-free; use :data:`NO_FAULTS` for
    the common case.
    """

    beep_loss_probability: float = 0.0
    spurious_beep_probability: float = 0.0
    crash_schedule: CrashSchedule = field(default_factory=CrashSchedule)

    def __post_init__(self) -> None:
        for name in ("beep_loss_probability", "spurious_beep_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_fault_free(self) -> bool:
        """Whether this model injects no faults at all."""
        return (
            self.beep_loss_probability == 0.0
            and self.spurious_beep_probability == 0.0
            and self.crash_schedule.is_empty()
        )


NO_FAULTS = FaultModel()
