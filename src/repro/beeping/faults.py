"""Fault models for robustness experiments.

The paper argues (Section 6) that the feedback algorithm is "highly robust".
To test that claim beyond the clean model, the channel supports three kinds
of injected faults:

- **beep loss** — each transmitted beep is dropped independently on each
  receiving edge with probability ``beep_loss_probability`` (an unreliable
  radio link);
- **spurious beeps** — each listening node hears a phantom beep with
  probability ``spurious_beep_probability`` (background noise);
- **crashes** — a :class:`CrashSchedule` removes nodes at fixed rounds
  (fail-stop processes);
- **churn** — a :class:`ChurnSchedule` changes the node population at
  fixed rounds: nodes *leave* permanently, *sleep* and later *wake*, or
  *join* fresh with a declared neighbour list.  Unlike crashes, churn
  triggers *self-repair*: uncovered survivors re-enter the competition,
  so the run re-converges to a valid MIS of the surviving subgraph.

Faults only perturb the *first* exchange (the probability feedback); the
second exchange (join/retire notifications) stays reliable so that the
output remains a well-defined independent set — exactly the separation the
paper's robustness discussion assumes, since only the feedback path is
claimed to tolerate noise.

Two equivalent samplings of beep loss
-------------------------------------
The per-node reference engine (:class:`~repro.beeping.channel.BeepChannel`)
drops each *edge delivery* independently: listener ``v`` with ``k`` beeping
neighbours hears iff at least one of ``k`` Bernoulli(1 - q) deliveries
survives.  The vectorised engines sample the same law with a single
per-node uniform against the collapsed probability ``1 - q**k`` (``k`` is
the beeping-neighbour count the engines already compute).  The two are
identical in distribution — per listener, per round, independently — but
consume randomness differently, so the reference engine agrees with the
vectorised engines *in law* while the vectorised engines agree with each
other *bit for bit* (see ``docs/robustness.md`` for the full contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple


@dataclass(frozen=True)
class CrashSchedule:
    """Fail-stop crashes: vertex ``v`` crashes at the start of round ``r``.

    Crashed nodes never beep, never join the MIS and do not count as
    uncovered for termination purposes (they have left the system).
    """

    crashes: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[int, int]]) -> "CrashSchedule":
        """Build from ``(round, vertex)`` pairs."""
        by_round: Dict[int, Set[int]] = {}
        for round_index, vertex in pairs:
            if round_index < 0:
                raise ValueError(f"round must be >= 0, got {round_index}")
            if vertex < 0:
                # A negative id would silently vanish from the vectorised
                # engines' round_masks while the reference scheduler would
                # happily index with it — reject it for every engine.
                raise ValueError(f"vertex must be >= 0, got {vertex}")
            by_round.setdefault(round_index, set()).add(vertex)
        return CrashSchedule(
            {r: frozenset(vs) for r, vs in by_round.items()}
        )

    def crashed_at(self, round_index: int) -> FrozenSet[int]:
        """Vertices that crash at the start of the given round."""
        return self.crashes.get(round_index, frozenset())

    def is_empty(self) -> bool:
        """Whether the schedule contains no crashes at all."""
        return not self.crashes

    def round_masks(self, num_vertices: int) -> Dict[int, "object"]:
        """Per-round boolean crash masks for the vectorised engines.

        Maps each scheduled round to a length-``num_vertices`` boolean
        numpy array that is ``True`` on the vertices crashing at the start
        of that round.  Scheduled vertices outside ``0..num_vertices-1``
        are ignored, mirroring the reference scheduler's ``v in graph``
        guard.  Rounds whose vertices all fall outside the graph are
        omitted.  (numpy is imported lazily so the reference engine stays
        stdlib-only.)
        """
        import numpy as np

        masks: Dict[int, "object"] = {}
        for round_index, vertices in self.crashes.items():
            in_range = [v for v in vertices if 0 <= v < num_vertices]
            if not in_range:
                continue
            mask = np.zeros(num_vertices, dtype=bool)
            mask[in_range] = True
            masks[round_index] = mask
        return masks


#: The churn event kinds, in their round-start application order.
CHURN_KINDS = ("leave", "sleep", "wake", "join")

_KIND_ORDER = {kind: index for index, kind in enumerate(CHURN_KINDS)}


@dataclass(frozen=True)
class ChurnEvent:
    """One population change at the start of one round.

    - ``leave`` — the vertex departs permanently (any state);
    - ``sleep`` — the vertex suspends: it drops out of the MIS and the
      competition until a later ``wake``;
    - ``wake`` — a sleeping vertex re-enters with fresh state;
    - ``join`` — a fresh vertex attaches with the declared ``neighbors``
      (ids in the *universe* graph, see
      :meth:`ChurnSchedule.universe_graph`) and enters with fresh state.

    Joiners and wakers listen first: if a current MIS neighbour covers
    them on entry they retire immediately, so the output stays an
    independent set by construction.
    """

    kind: str
    round_index: int
    vertex: int
    neighbors: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"churn kind must be one of {CHURN_KINDS}, got {self.kind!r}"
            )
        if self.round_index < 0:
            raise ValueError(f"round must be >= 0, got {self.round_index}")
        if self.vertex < 0:
            raise ValueError(f"vertex must be >= 0, got {self.vertex}")
        if self.kind != "join" and self.neighbors:
            raise ValueError(
                f"{self.kind!r} events carry no neighbour list, got "
                f"{self.neighbors}"
            )
        canonical = tuple(sorted({int(w) for w in self.neighbors}))
        for w in canonical:
            if w < 0:
                raise ValueError(f"join neighbour must be >= 0, got {w}")
            if w == self.vertex:
                raise ValueError(
                    f"join vertex {self.vertex} cannot neighbour itself"
                )
        object.__setattr__(self, "neighbors", canonical)

    def to_tuple(self) -> Tuple:
        """Canonical tuple form (what :class:`CellSpec.churn` stores)."""
        if self.kind == "join":
            return (self.kind, self.round_index, self.vertex, self.neighbors)
        return (self.kind, self.round_index, self.vertex)


@dataclass(frozen=True)
class ChurnSchedule:
    """Per-round population changes, validated as one coherent timeline.

    Construction (via :meth:`from_events`) enforces:

    - at most one event per ``(round, vertex)`` pair;
    - per vertex: an optional ``join`` first, then ``sleep``/``wake``
      strictly alternating starting with ``sleep``, then an optional
      ``leave`` last;
    - join vertices are pairwise distinct (one birth per id).

    Join ids must form the contiguous block just above the base graph —
    :meth:`universe_graph` checks that against the concrete base graph.
    """

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.round_index, _KIND_ORDER[e.kind], e.vertex),
            )
        )
        object.__setattr__(self, "events", ordered)
        self._validate_timeline()

    def _validate_timeline(self) -> None:
        seen: Set[Tuple[int, int]] = set()
        by_vertex: Dict[int, list] = {}
        for event in self.events:
            key = (event.round_index, event.vertex)
            if key in seen:
                raise ValueError(
                    f"vertex {event.vertex} has two churn events in round "
                    f"{event.round_index}"
                )
            seen.add(key)
            by_vertex.setdefault(event.vertex, []).append(event)
        for vertex, timeline in by_vertex.items():
            kinds = [event.kind for event in timeline]
            if kinds.count("join") > 1:
                raise ValueError(f"vertex {vertex} joins more than once")
            if "join" in kinds and kinds[0] != "join":
                raise ValueError(
                    f"vertex {vertex} has events before its join round"
                )
            if kinds.count("leave") > 1:
                raise ValueError(f"vertex {vertex} leaves more than once")
            if "leave" in kinds and kinds[-1] != "leave":
                raise ValueError(
                    f"vertex {vertex} has events after its leave round"
                )
            toggles = [k for k in kinds if k in ("sleep", "wake")]
            expected = "sleep"
            for kind in toggles:
                if kind != expected:
                    raise ValueError(
                        f"vertex {vertex} has a {kind!r} without a "
                        f"preceding {'sleep' if kind == 'wake' else 'wake'}"
                    )
                expected = "wake" if expected == "sleep" else "sleep"

    @staticmethod
    def from_events(events: Iterable) -> "ChurnSchedule":
        """Build from :class:`ChurnEvent` instances or canonical tuples."""
        parsed = []
        for event in events:
            if isinstance(event, ChurnEvent):
                parsed.append(event)
                continue
            kind = event[0]
            neighbors = tuple(event[3]) if len(event) > 3 else ()
            parsed.append(
                ChurnEvent(
                    kind=str(kind),
                    round_index=int(event[1]),
                    vertex=int(event[2]),
                    neighbors=neighbors,
                )
            )
        return ChurnSchedule(tuple(parsed))

    def is_empty(self) -> bool:
        """Whether the schedule contains no events at all."""
        return not self.events

    def to_tuples(self) -> Tuple[Tuple, ...]:
        """Canonical tuple-of-tuples form (spec hashing, CLI round trips)."""
        return tuple(event.to_tuple() for event in self.events)

    def event_rounds(self) -> Tuple[int, ...]:
        """The distinct event rounds, ascending."""
        return tuple(sorted({event.round_index for event in self.events}))

    @property
    def last_event_round(self) -> int:
        """The latest event round, or ``-1`` for an empty schedule."""
        rounds = self.event_rounds()
        return rounds[-1] if rounds else -1

    def join_events(self) -> Tuple[ChurnEvent, ...]:
        """The join events, ordered by vertex id."""
        return tuple(
            sorted(
                (e for e in self.events if e.kind == "join"),
                key=lambda e: e.vertex,
            )
        )

    def events_at(self, round_index: int) -> Dict[str, FrozenSet[int]]:
        """The vertices of each kind scheduled at one round."""
        grouped: Dict[str, Set[int]] = {kind: set() for kind in CHURN_KINDS}
        for event in self.events:
            if event.round_index == round_index:
                grouped[event.kind].add(event.vertex)
        return {kind: frozenset(vs) for kind, vs in grouped.items()}

    def universe_graph(self, base: "object") -> "object":
        """The base graph plus every joiner and its declared edges.

        Join ids must form exactly the contiguous block
        ``base.num_vertices .. base.num_vertices + J - 1``, so universe
        indices are stable and every engine can pre-size its tensors.
        Neighbour ids may reference any universe vertex (base or
        joiner).  Returns a :class:`~repro.graphs.graph.Graph`.
        """
        from repro.graphs.graph import Graph

        joins = self.join_events()
        n_base = base.num_vertices
        expected = list(range(n_base, n_base + len(joins)))
        got = [event.vertex for event in joins]
        if got != expected:
            raise ValueError(
                f"join ids must be the contiguous block {expected} above "
                f"the {n_base}-vertex base graph, got {got}"
            )
        n_universe = n_base + len(joins)
        for event in self.events:
            if event.kind != "join" and event.vertex >= n_universe:
                raise ValueError(
                    f"{event.kind} event targets vertex {event.vertex}, "
                    f"outside the {n_universe}-vertex universe"
                )
        edges = list(base.edges())
        edge_set = {tuple(sorted(edge)) for edge in edges}
        for event in joins:
            for w in event.neighbors:
                if w >= n_universe:
                    raise ValueError(
                        f"join vertex {event.vertex} declares neighbour "
                        f"{w}, outside the {n_universe}-vertex universe"
                    )
                edge = tuple(sorted((event.vertex, w)))
                if edge not in edge_set:
                    edge_set.add(edge)
                    edges.append(edge)
        return Graph(n_universe, edges)

    def round_masks(self, num_vertices: int) -> Dict[int, Dict[str, "object"]]:
        """Per-round boolean event masks for the vectorised engines.

        Maps each event round to ``{kind: bool mask}`` over the
        ``num_vertices``-vertex *universe*; every scheduled vertex must
        fit (churn events are explicit structure, unlike crash ids which
        mirror the reference scheduler's silent ``v in graph`` guard).
        """
        import numpy as np

        masks: Dict[int, Dict[str, "object"]] = {}
        for event in self.events:
            if event.vertex >= num_vertices:
                raise ValueError(
                    f"churn event targets vertex {event.vertex}, outside "
                    f"the {num_vertices}-vertex universe"
                )
            per_round = masks.setdefault(
                event.round_index,
                {
                    kind: np.zeros(num_vertices, dtype=bool)
                    for kind in CHURN_KINDS
                },
            )
            per_round[event.kind][event.vertex] = True
        return masks


def parse_crash_spec(entries: Iterable[str]) -> Tuple[Tuple[int, int], ...]:
    """Parse ``ROUND:VERTEX`` CLI entries into ``(round, vertex)`` pairs.

    Raises ``ValueError`` with the offending entry spelled out — the CLI
    maps that to a clean ``SystemExit`` instead of a bare traceback.
    """
    pairs = []
    for entry in entries:
        parts = entry.split(":")
        if len(parts) != 2:
            raise ValueError(
                f"crash spec must look like ROUND:VERTEX, got {entry!r}"
            )
        try:
            round_index, vertex = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"crash spec needs integer ROUND:VERTEX, got {entry!r}"
            ) from None
        if round_index < 0 or vertex < 0:
            raise ValueError(
                f"crash spec needs ROUND >= 0 and VERTEX >= 0, got {entry!r}"
            )
        pairs.append((round_index, vertex))
    return tuple(pairs)


def parse_churn_spec(entries: Iterable[str]) -> Tuple[Tuple, ...]:
    """Parse churn CLI entries into canonical event tuples.

    The grammar is ``leave:R:V``, ``sleep:R:V``, ``wake:R:V`` and
    ``join:R:V:N1+N2+...`` (a joiner may declare no neighbours with a
    trailing empty list: ``join:R:V:``).  Returns
    :meth:`ChurnSchedule.to_tuples`-style tuples, already validated as a
    coherent timeline; raises ``ValueError`` with a clear message on any
    malformed entry.
    """
    events = []
    for entry in entries:
        parts = entry.split(":")
        kind = parts[0]
        if kind not in CHURN_KINDS:
            raise ValueError(
                f"churn spec must start with one of {CHURN_KINDS}, "
                f"got {entry!r}"
            )
        expected = 4 if kind == "join" else 3
        if len(parts) != expected:
            shape = "join:ROUND:VERTEX:N1+N2+..." if kind == "join" else (
                f"{kind}:ROUND:VERTEX"
            )
            raise ValueError(f"churn spec must look like {shape}, got {entry!r}")
        try:
            round_index, vertex = int(parts[1]), int(parts[2])
            neighbors = tuple(
                int(w) for w in parts[3].split("+") if w != ""
            ) if kind == "join" else ()
        except ValueError:
            raise ValueError(
                f"churn spec needs integer ROUND, VERTEX and neighbours, "
                f"got {entry!r}"
            ) from None
        events.append(ChurnEvent(kind, round_index, vertex, neighbors))
    return ChurnSchedule(tuple(events)).to_tuples()


@dataclass(frozen=True)
class FaultModel:
    """Channel and node fault parameters for one simulation.

    The default-constructed model is fault-free; use :data:`NO_FAULTS` for
    the common case.
    """

    beep_loss_probability: float = 0.0
    spurious_beep_probability: float = 0.0
    crash_schedule: CrashSchedule = field(default_factory=CrashSchedule)
    churn_schedule: ChurnSchedule = field(default_factory=ChurnSchedule)

    def __post_init__(self) -> None:
        for name in ("beep_loss_probability", "spurious_beep_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_fault_free(self) -> bool:
        """Whether this model injects no faults at all."""
        return (
            self.beep_loss_probability == 0.0
            and self.spurious_beep_probability == 0.0
            and self.crash_schedule.is_empty()
            and self.churn_schedule.is_empty()
        )

    @property
    def has_churn(self) -> bool:
        """Whether the model changes the node population mid-run."""
        return not self.churn_schedule.is_empty()


NO_FAULTS = FaultModel()
