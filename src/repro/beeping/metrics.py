"""Per-round and per-node accounting.

The paper evaluates two resources: the number of synchronous rounds
(Figure 3) and the number of beeps each node emits (Figure 5, Theorem 6).
:class:`SimulationMetrics` tracks both, plus the derived totals used by the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class RoundRecord:
    """Aggregate counters for one round."""

    round_index: int
    active_before: int
    beeps: int
    joins: int
    retirements: int
    crashes: int = 0

    @property
    def became_inactive(self) -> int:
        """Vertices that left the active set this round (joins + retirements)."""
        return self.joins + self.retirements


@dataclass
class SimulationMetrics:
    """Counters accumulated over a whole simulation."""

    num_vertices: int
    beeps_by_node: List[int] = field(default_factory=list)
    round_records: List[RoundRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.beeps_by_node:
            self.beeps_by_node = [0] * self.num_vertices

    def record_beeps(self, beepers) -> None:
        """Count one beep for every vertex in ``beepers``."""
        for vertex in beepers:
            self.beeps_by_node[vertex] += 1

    def record_round(self, record: RoundRecord) -> None:
        """Append the aggregate record of a completed round."""
        self.round_records.append(record)

    @property
    def num_rounds(self) -> int:
        """Rounds executed."""
        return len(self.round_records)

    @property
    def total_beeps(self) -> int:
        """Total beeps emitted by all nodes over the whole run."""
        return sum(self.beeps_by_node)

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node — the Figure 5 / Theorem 6 quantity."""
        if self.num_vertices == 0:
            return 0.0
        return self.total_beeps / self.num_vertices

    @property
    def max_beeps_per_node(self) -> int:
        """The busiest node's beep count."""
        if not self.beeps_by_node:
            return 0
        return max(self.beeps_by_node)
