"""The per-node protocol of a beeping MIS algorithm.

Every beeping algorithm in this reproduction — the paper's feedback
algorithm and both Afek et al. baselines — shares the same *join* logic
(beep unopposed → join; neighbour joins → retire).  What differs between
algorithms is only **how the beep probability is chosen** each round.  A
:class:`BeepingNode` therefore exposes exactly two hooks to the scheduler:

- :meth:`BeepingNode.beep_probability` — the probability of beeping in the
  coming round;
- :meth:`BeepingNode.observe_first_exchange` — feedback after the first
  exchange (did I beep? did I hear a beep?).

The scheduler owns state transitions (``ACTIVE → IN_MIS / RETIRED``), so a
policy bug cannot violate the MIS semantics.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod


class NodeState(enum.Enum):
    """Lifecycle states of a node, matching Figure 2 of the paper.

    ``ACTIVE`` covers both the "initial" and transient "signalling" states of
    the figure (signalling lasts only within a round and is tracked by the
    scheduler); ``IN_MIS`` and ``RETIRED`` are the two terminal (inactive)
    states.
    """

    ACTIVE = "active"
    IN_MIS = "in_mis"
    RETIRED = "retired"

    @property
    def is_inactive(self) -> bool:
        """Whether the node has terminated (joined the MIS or retired)."""
        return self is not NodeState.ACTIVE


class BeepingNode(ABC):
    """Abstract per-node beep-probability policy.

    Subclasses must be cheap to construct: one instance is created per
    vertex per simulation.
    """

    @abstractmethod
    def beep_probability(self) -> float:
        """The probability with which this node beeps in the coming round.

        Must lie in ``[0, 1]``; the scheduler validates this.
        """

    @abstractmethod
    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        """Feedback delivered after the first exchange of a round.

        Parameters
        ----------
        did_beep:
            Whether this node itself beeped this round.
        heard_beep:
            Whether at least one neighbour's beep reached this node
            (the one-bit OR observation of the beeping model).
        """

    def on_round_start(self, round_index: int) -> None:
        """Called at the start of each round (default: no-op).

        Globally scheduled algorithms (Afek et al.) override this to advance
        their preset probability sequence.
        """

    def describe(self) -> str:
        """A short human-readable description (used in traces and the CLI)."""
        return type(self).__name__


class FixedProbabilityNode(BeepingNode):
    """A node that always beeps with the same fixed probability.

    This is not one of the paper's algorithms; it exists as the simplest
    possible policy for exercising the scheduler in tests, and as the base
    case of the globally scheduled policies.
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        self._probability = probability

    def beep_probability(self) -> float:
        return self._probability

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        pass

    def describe(self) -> str:
        return f"FixedProbabilityNode(p={self._probability})"
