"""Deterministic randomness plumbing.

Experiments need reproducible trials: the same master seed must give the
same results regardless of process, trial ordering or parallelism.  We get
that with an explicit splitmix64-based *seed derivation* — every trial,
node or subsystem derives its own independent 64-bit seed from the master
seed plus a path of integers — instead of sharing one mutable RNG.
"""

from __future__ import annotations

from random import Random
from typing import Iterator

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> int:
    """One step of the splitmix64 output function (public-domain algorithm)."""
    z = (state + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(master_seed: int, *path: int) -> int:
    """Derive a 64-bit seed from ``master_seed`` and a path of indices.

    The derivation is a splitmix64 chain, so distinct paths give
    (statistically) independent seeds and the mapping is stable across
    platforms and Python versions:

    >>> derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
    True
    >>> derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
    True
    """
    state = _splitmix64(master_seed & _MASK64)
    for index in path:
        state = _splitmix64(state ^ ((index & _MASK64) * _GOLDEN_GAMMA & _MASK64))
    return state


def spawn_rng(master_seed: int, *path: int) -> Random:
    """A fresh :class:`random.Random` seeded by :func:`derive_seed`."""
    return Random(derive_seed(master_seed, *path))


class RngStream:
    """A factory of independent child RNGs rooted at one master seed.

    >>> stream = RngStream(7)
    >>> trial_rng = stream.child(0)       # rng for trial 0
    >>> same = stream.child(0)
    >>> trial_rng.random() == same.random()
    True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed & _MASK64

    @property
    def master_seed(self) -> int:
        """The 64-bit master seed of this stream."""
        return self._master_seed

    def child(self, *path: int) -> Random:
        """An independent RNG for the given derivation path."""
        return spawn_rng(self._master_seed, *path)

    def child_seed(self, *path: int) -> int:
        """The derived 64-bit seed for the given path (for numpy engines)."""
        return derive_seed(self._master_seed, *path)

    def trial_rngs(self, count: int) -> Iterator[Random]:
        """RNGs for trials ``0..count-1``, one per trial."""
        for trial in range(count):
            yield self.child(trial)
