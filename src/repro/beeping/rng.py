"""Deterministic randomness plumbing.

Experiments need reproducible trials: the same master seed must give the
same results regardless of process, trial ordering or parallelism.  We get
that with an explicit splitmix64-based *seed derivation* — every trial,
node or subsystem derives its own independent 64-bit seed from the master
seed plus a path of integers — instead of sharing one mutable RNG.

Two uniform-stream disciplines build on the derived seeds
(:data:`RNG_MODES`):

- ``"stream"`` — each derived seed boots a sequential generator
  (``random.Random`` or ``numpy.random.default_rng``) whose draws depend
  on everything drawn before them.  This is the original discipline; its
  byte streams are pinned by the golden-trace tests.
- ``"counter"`` — :func:`counter_uniforms` / :func:`uniform_block`: every
  uniform is a *pure function* of ``(seed, round, draw kind, lane)``,
  computed as one vectorised splitmix64 pass.  No generator objects, no
  sequential state — a whole ``(trials, n)`` block of a round's uniforms
  is one numpy call, any sub-block equals the matching slice of the full
  block, and skipping a draw never shifts any other draw.  This is the
  fleet/sweep hot-path discipline.
"""

from __future__ import annotations

from random import Random
from typing import Iterator

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB

#: The two uniform-stream disciplines the fast engines support.
RNG_MODES = ("stream", "counter")

#: Draw-kind indices for the counter discipline.  Each kind occupies its
#: own disjoint counter domain, so enabling or disabling one kind never
#: perturbs any other kind's block.  The beeping engines consume up to
#: three kinds per round — beep, then loss, then spurious — and the
#: message-passing engines three more: priority values
#: (Luby-permutation / Métivier), marking uniforms (Luby-probability)
#: and the one-shot ID permutation (local-minimum-id).  The application
#: kernels (:mod:`repro.engine.applications`) add a seventh domain,
#: ``DRAW_LAYER``: iterated-MIS applications derive the seed of each
#: inner MIS layer as ``counter_state(trial_seed, layer, DRAW_LAYER)``,
#: so layers are mutually independent and adding a layer never perturbs
#: any other draw.
DRAW_BEEP = 0
DRAW_LOSS = 1
DRAW_SPURIOUS = 2
DRAW_VALUE = 3
DRAW_MARK = 4
DRAW_IDS = 5
DRAW_LAYER = 6

#: Lane tables (``arange(n) * gamma``) for :func:`counter_uniforms`, keyed
#: by ``n``; experiments touch only a handful of sizes.
_LANES_CACHE: dict = {}


def _splitmix64(state: int) -> int:
    """One step of the splitmix64 output function (public-domain algorithm)."""
    z = (state + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _chain(master_seed: int, path) -> int:
    """The splitmix64 chain state after absorbing ``path``.

    Both :func:`derive_seed` and :func:`derive_seed_block` build on this —
    their bit-for-bit agreement depends on sharing it.
    """
    state = _splitmix64(master_seed & _MASK64)
    for index in path:
        state = _splitmix64(state ^ ((index & _MASK64) * _GOLDEN_GAMMA & _MASK64))
    return state


def derive_seed(master_seed: int, *path: int) -> int:
    """Derive a 64-bit seed from ``master_seed`` and a path of indices.

    The derivation is a splitmix64 chain, so distinct paths give
    (statistically) independent seeds and the mapping is stable across
    platforms and Python versions:

    >>> derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
    True
    >>> derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
    True
    """
    return _chain(master_seed, path)


def derive_seed_block(master_seed: int, *path: int, count: int, start: int = 0):
    """Seeds for paths ``path + (start,)`` .. ``path + (start+count-1,)``.

    This is the fleet engine's seed contract: entry ``t`` of the returned
    ``uint64`` array equals ``derive_seed(master_seed, *path, start + t)``
    bit for bit, so a trial-parallel batch consumes exactly the seeds the
    per-trial loop would, and the two are interchangeable under one master
    seed.  ``start`` lets a *shard* of a larger batch derive only its own
    trailing-index window: concatenating shard blocks over consecutive
    offsets reproduces the unsharded block exactly, which is what makes a
    sharded sweep bit-identical to the sequential loop.

    Implemented as one vectorised splitmix64 step over the trailing index
    (numpy is imported lazily so the reference engine stays stdlib-only).

    >>> import numpy as np
    >>> seeds = derive_seed_block(42, 3, count=4)
    >>> all(int(seeds[t]) == derive_seed(42, 3, t) for t in range(4))
    True
    >>> shard = derive_seed_block(42, 3, count=2, start=2)
    >>> [int(s) for s in shard] == [int(s) for s in seeds[2:]]
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    import numpy as np

    state = _chain(master_seed, path)
    gamma = np.uint64(_GOLDEN_GAMMA)
    trailing = np.arange(start, start + count, dtype=np.uint64)
    z = (np.uint64(state) ^ (trailing * gamma)) + gamma
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def seed_array(seeds):
    """``seeds`` as a ``uint64`` numpy array (values taken mod 2**64).

    Accepts a scalar, any integer-dtype array, or a sequence of Python
    ints (including values at or above 2**63, which object arrays would
    otherwise mishandle).  Signed inputs wrap modulo 2**64, matching the
    masking every derivation function applies.
    """
    import numpy as np

    if isinstance(seeds, np.ndarray):
        if seeds.dtype == np.uint64:
            return seeds
        if seeds.dtype.kind in "iu":
            return seeds.astype(np.uint64)
        seeds = seeds.tolist()
    if isinstance(seeds, (int, np.integer)):
        return np.asarray(int(seeds) & _MASK64, dtype=np.uint64)
    # A (possibly nested) sequence of Python ints: go through an object
    # array so values in [2**63, 2**64) never round through float64.
    arr = np.asarray(seeds, dtype=object)
    flat = [int(value) & _MASK64 for value in arr.reshape(-1)]
    return np.asarray(flat, dtype=np.uint64).reshape(arr.shape)


def stream_generators(seeds):
    """One sequential ``numpy`` generator per seed, in seed order.

    The ``"stream"`` rng mode boots exactly one ``default_rng`` per trial
    and every engine must consume the streams in the identical per-round
    order; centralising the boot keeps the fleet engines' generator lists
    byte-identical by construction (same seeds, same PCG64 states) rather
    than by convention.

    >>> gens = stream_generators([1, 2])
    >>> import numpy as np
    >>> bool(np.array_equal(gens[0].random(3),
    ...                     np.random.default_rng(1).random(3)))
    True
    """
    import numpy as np

    return [np.random.default_rng(int(seed)) for seed in seeds]


def counter_uniforms(seeds, round_index: int, draw_kind: int, n: int):
    """Stateless uniforms in ``[0, 1)``, shape ``np.shape(seeds) + (n,)``.

    The counter discipline: entry ``(..., v)`` is a pure function of the
    corresponding seed and ``(round_index, draw_kind, v)`` — the seed
    absorbs the round and the draw kind with the same vectorised
    splitmix64 step :func:`derive_seed_block` uses for trailing indices,
    then fans out over the ``n`` lanes in one pass.  Because nothing is
    sequential, any subset of seeds yields exactly the matching rows of
    the full block, and the uniforms for one ``draw_kind`` are unaffected
    by whether any other kind is ever drawn.

    Uniforms are the top 53 bits of the mixed counter scaled by ``2^-53``
    (the standard double-precision mapping), so values are exactly
    representable and strictly below 1.  ``round_index`` and ``draw_kind``
    may be arbitrarily large; they are absorbed modulo 2**64.

    >>> import numpy as np
    >>> block = counter_uniforms([1, 2], 0, DRAW_BEEP, 3)
    >>> block.shape
    (2, 3)
    >>> bool(np.all((block >= 0.0) & (block < 1.0)))
    True
    >>> np.array_equal(counter_uniforms(2, 0, DRAW_BEEP, 3), block[1])
    True
    """
    return _finish_lanes(_absorbed_lanes(seeds, round_index, draw_kind, n))


def counter_values(seeds, round_index: int, draw_kind: int, n: int):
    """Stateless full-width values, shape ``np.shape(seeds) + (n,)``.

    The 64-bit sibling of :func:`counter_uniforms`: entry ``(..., v)`` is
    the complete mixed counter word — a pure function of the seed and
    ``(round_index, draw_kind, v)`` — before the top-53-bit truncation
    that turns it into a uniform.  The two are locked together bit for
    bit::

        counter_uniforms(...) == (counter_values(...) >> 11) * 2.0 ** -53

    Message-passing kernels draw their priority values here: Métivier's
    bit-by-bit accounting needs genuine 64-bit value strings (the
    reference implementation reveals 64-bit integers), and uint64
    comparisons avoid any float rounding question in the neighbour
    reductions.

    >>> import numpy as np
    >>> values = counter_values([1, 2], 0, DRAW_VALUE, 3)
    >>> uniforms = counter_uniforms([1, 2], 0, DRAW_VALUE, 3)
    >>> bool(np.all((values >> np.uint64(11)) * 2.0 ** -53 == uniforms))
    True
    """
    return _mix_lanes(_absorbed_lanes(seeds, round_index, draw_kind, n))


def _absorbed_lanes(seeds, round_index, draw_kind, n: int):
    """The fresh ``state ^ lane`` array both counter fabrics mix from.

    One shared implementation of the absorb-and-fan-out step keeps
    :func:`counter_uniforms` and :func:`counter_values` locked together
    bit for bit (the documented ``uniforms == (values >> 11) * 2^-53``
    relation) — they differ only in the finisher applied to this array.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    import numpy as np

    state = counter_state(seeds, round_index, draw_kind)
    lanes = _LANES_CACHE.get(n)
    if lanes is None:
        # Tiny cache: experiments use a handful of distinct n values, and
        # the lane table is the only per-call O(n) setup.
        lanes = np.arange(n, dtype=np.uint64) * np.uint64(_GOLDEN_GAMMA)
        _LANES_CACHE[n] = lanes
    return state[..., np.newaxis] ^ lanes


def counter_state(seeds, round_index, draw_kind):
    """The per-seed counter state after absorbing ``(round, kind)``.

    ``counter_uniforms`` is ``_finish_lanes(state ^ lane)`` over the lane
    table; exposing the absorbed state lets sparse consumers (the armada
    frontier) evaluate single ``(seed, node)`` entries via
    :func:`counter_uniforms_at` without materialising whole rows.

    ``round_index`` (like ``draw_kind``) may be an int or an integer
    array; arrays broadcast against ``seeds``, so e.g. a ``(B, 1)`` round
    column yields the ``(B, len(seeds))`` state block of ``B`` future
    rounds in one call — statelessness makes look-ahead free, and hot
    loops use it to amortise the absorb overhead across rounds.
    """
    import numpy as np

    gamma = np.uint64(_GOLDEN_GAMMA)
    m1 = np.uint64(_MIX_1)
    m2 = np.uint64(_MIX_2)

    def absorb(state, index):
        z = (state ^ (seed_array(index) * gamma)) + gamma
        z = (z ^ (z >> np.uint64(30))) * m1
        z = (z ^ (z >> np.uint64(27))) * m2
        return z ^ (z >> np.uint64(31))

    # uint64 wraparound is the point of the mix; numpy warns on scalar
    # (0-d) overflow even though array ops wrap silently.
    with np.errstate(over="ignore"):
        return absorb(absorb(seed_array(seeds), round_index), draw_kind)


def counter_uniforms_at(states, lane_indices):
    """Uniforms at selected ``(state, lane)`` pairs, elementwise.

    ``states`` are :func:`counter_state` values and ``lane_indices`` node
    indices of matching shape; entry ``i`` equals
    ``counter_uniforms(seed_i, round, kind, n)[lane_indices[i]]`` bit for
    bit.  This is the sparse access path of the counter fabric: when only
    a few lanes of a block are needed (the armada's frontier phase), cost
    scales with the number of entries instead of ``trials * n``.
    """
    import numpy as np

    lanes = lane_indices.astype(np.uint64) * np.uint64(_GOLDEN_GAMMA)
    return _finish_lanes(np.asarray(states, dtype=np.uint64) ^ lanes)


def _mix_lanes(z):
    """The shared lane mixer: the full splitmix64 output word per lane.

    ``z`` must be a *fresh* uint64 array holding ``state ^ (lane_index *
    gamma)``; it is consumed destructively.  This is the hot path (the
    fleet calls it every round for whole blocks), so it mixes in place —
    one further allocation total.
    """
    import numpy as np

    z += np.uint64(_GOLDEN_GAMMA)
    scratch = z >> np.uint64(30)
    z ^= scratch
    z *= np.uint64(_MIX_1)
    np.right_shift(z, np.uint64(27), out=scratch)
    z ^= scratch
    z *= np.uint64(_MIX_2)
    np.right_shift(z, np.uint64(31), out=scratch)
    z ^= scratch
    return z


def _finish_lanes(z):
    """Mixed lanes scaled to uniforms: top 53 bits times ``2^-53``."""
    import numpy as np

    z = _mix_lanes(z)
    z >>= np.uint64(11)
    # uint64 -> float64 conversion of a 53-bit value is exact, and the
    # power-of-two scale is exact, so this single fused pass equals
    # astype-then-multiply bit for bit.
    return z * (2.0 ** -53)


def uniform_block(
    master_seed: int,
    *path: int,
    round_index: int,
    draw_kind: int,
    count: int,
    n: int,
    start: int = 0,
):
    """One round's uniforms for a whole trial block: ``(count, n)`` float64.

    Row ``t`` equals ``counter_uniforms(derive_seed(master_seed, *path,
    start + t), round_index, draw_kind, n)`` bit for bit, so the block is
    the counter-mode analogue of :func:`derive_seed_block`: a shard
    computes exactly its own trial window, and offset windows equal the
    matching slices of the full block —

    >>> import numpy as np
    >>> whole = uniform_block(7, 3, round_index=2, draw_kind=DRAW_BEEP,
    ...                       count=6, n=4)
    >>> shard = uniform_block(7, 3, round_index=2, draw_kind=DRAW_BEEP,
    ...                       count=2, n=4, start=3)
    >>> np.array_equal(shard, whole[3:5])
    True
    """
    return counter_uniforms(
        derive_seed_block(master_seed, *path, count=count, start=start),
        round_index,
        draw_kind,
        n,
    )


def spawn_rng(master_seed: int, *path: int) -> Random:
    """A fresh :class:`random.Random` seeded by :func:`derive_seed`."""
    return Random(derive_seed(master_seed, *path))


class RngStream:
    """A factory of independent child RNGs rooted at one master seed.

    >>> stream = RngStream(7)
    >>> trial_rng = stream.child(0)       # rng for trial 0
    >>> same = stream.child(0)
    >>> trial_rng.random() == same.random()
    True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed & _MASK64

    @property
    def master_seed(self) -> int:
        """The 64-bit master seed of this stream."""
        return self._master_seed

    def child(self, *path: int) -> Random:
        """An independent RNG for the given derivation path."""
        return spawn_rng(self._master_seed, *path)

    def child_seed(self, *path: int) -> int:
        """The derived 64-bit seed for the given path (for numpy engines)."""
        return derive_seed(self._master_seed, *path)

    def trial_rngs(self, count: int) -> Iterator[Random]:
        """RNGs for trials ``0..count-1``, one per trial."""
        for trial in range(count):
            yield self.child(trial)
