"""Deterministic randomness plumbing.

Experiments need reproducible trials: the same master seed must give the
same results regardless of process, trial ordering or parallelism.  We get
that with an explicit splitmix64-based *seed derivation* — every trial,
node or subsystem derives its own independent 64-bit seed from the master
seed plus a path of integers — instead of sharing one mutable RNG.
"""

from __future__ import annotations

from random import Random
from typing import Iterator

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> int:
    """One step of the splitmix64 output function (public-domain algorithm)."""
    z = (state + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _chain(master_seed: int, path) -> int:
    """The splitmix64 chain state after absorbing ``path``.

    Both :func:`derive_seed` and :func:`derive_seed_block` build on this —
    their bit-for-bit agreement depends on sharing it.
    """
    state = _splitmix64(master_seed & _MASK64)
    for index in path:
        state = _splitmix64(state ^ ((index & _MASK64) * _GOLDEN_GAMMA & _MASK64))
    return state


def derive_seed(master_seed: int, *path: int) -> int:
    """Derive a 64-bit seed from ``master_seed`` and a path of indices.

    The derivation is a splitmix64 chain, so distinct paths give
    (statistically) independent seeds and the mapping is stable across
    platforms and Python versions:

    >>> derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
    True
    >>> derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
    True
    """
    return _chain(master_seed, path)


def derive_seed_block(master_seed: int, *path: int, count: int, start: int = 0):
    """Seeds for paths ``path + (start,)`` .. ``path + (start+count-1,)``.

    This is the fleet engine's seed contract: entry ``t`` of the returned
    ``uint64`` array equals ``derive_seed(master_seed, *path, start + t)``
    bit for bit, so a trial-parallel batch consumes exactly the seeds the
    per-trial loop would, and the two are interchangeable under one master
    seed.  ``start`` lets a *shard* of a larger batch derive only its own
    trailing-index window: concatenating shard blocks over consecutive
    offsets reproduces the unsharded block exactly, which is what makes a
    sharded sweep bit-identical to the sequential loop.

    Implemented as one vectorised splitmix64 step over the trailing index
    (numpy is imported lazily so the reference engine stays stdlib-only).

    >>> import numpy as np
    >>> seeds = derive_seed_block(42, 3, count=4)
    >>> all(int(seeds[t]) == derive_seed(42, 3, t) for t in range(4))
    True
    >>> shard = derive_seed_block(42, 3, count=2, start=2)
    >>> [int(s) for s in shard] == [int(s) for s in seeds[2:]]
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    import numpy as np

    state = _chain(master_seed, path)
    gamma = np.uint64(_GOLDEN_GAMMA)
    trailing = np.arange(start, start + count, dtype=np.uint64)
    z = (np.uint64(state) ^ (trailing * gamma)) + gamma
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def spawn_rng(master_seed: int, *path: int) -> Random:
    """A fresh :class:`random.Random` seeded by :func:`derive_seed`."""
    return Random(derive_seed(master_seed, *path))


class RngStream:
    """A factory of independent child RNGs rooted at one master seed.

    >>> stream = RngStream(7)
    >>> trial_rng = stream.child(0)       # rng for trial 0
    >>> same = stream.child(0)
    >>> trial_rng.random() == same.random()
    True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed & _MASK64

    @property
    def master_seed(self) -> int:
        """The 64-bit master seed of this stream."""
        return self._master_seed

    def child(self, *path: int) -> Random:
        """An independent RNG for the given derivation path."""
        return spawn_rng(self._master_seed, *path)

    def child_seed(self, *path: int) -> int:
        """The derived 64-bit seed for the given path (for numpy engines)."""
        return derive_seed(self._master_seed, *path)

    def trial_rngs(self, count: int) -> Iterator[Random]:
        """RNGs for trials ``0..count-1``, one per trial."""
        for trial in range(count):
            yield self.child(trial)
