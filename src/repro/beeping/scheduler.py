"""The synchronous round loop of the beeping model.

One :class:`BeepingSimulation` executes one algorithm instance on one graph.
Each round has the two-exchange structure shared by all the paper's beeping
algorithms:

1. **First exchange.**  Every active node beeps with its current
   probability; every active node then observes whether at least one
   neighbour beeped and feeds that observation back into its policy.
2. **Second exchange.**  A node that beeped while *no neighbour actually
   beeped* joins the MIS and announces it; active neighbours of joiners
   retire.

Fault handling: the injected channel faults (:mod:`repro.beeping.faults`)
perturb only the *observation* used for probability feedback.  Join
eligibility and join/retire notifications are computed from the true beep
sets, so the output is a valid MIS even under heavy noise — noise can only
slow the algorithm down.  This matches the separation assumed by the paper's
robustness discussion, which concerns the probability-adaptation path.

The scheduler owns all state transitions; policies (:class:`BeepingNode`)
only choose probabilities.  This makes it impossible for a policy bug to
produce a non-independent or non-maximal output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Set

from repro.beeping.channel import BeepChannel
from repro.beeping.events import RoundEvent, Trace
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.metrics import RoundRecord, SimulationMetrics
from repro.beeping.node import BeepingNode, NodeState
from repro.graphs.graph import Graph
from repro.graphs.validation import MISValidationError

NodeFactory = Callable[[int], BeepingNode]

DEFAULT_MAX_ROUNDS = 100_000


class TerminationError(RuntimeError):
    """Raised when a simulation exceeds its round budget.

    For the algorithms in this library the expected round count is
    logarithmic (feedback) or polylogarithmic (global sweep), so hitting the
    default budget of 100,000 rounds indicates a bug, not bad luck.
    """


@dataclass
class SimulationResult:
    """The outcome of one completed simulation.

    Under churn, ``graph`` is the *universe* graph (base plus joiners),
    ``absent`` the universe vertices outside the final alive subgraph
    (departed, asleep at the end, or never joined), ``repair_rounds``
    the per-event-round repair times (see ``docs/robustness.md``), and
    ``recovered`` is ``False`` when the round budget interrupted an
    unfinished repair.
    """

    graph: Graph
    mis: Set[int]
    states: List[NodeState]
    metrics: SimulationMetrics
    trace: Optional[Trace]
    crashed: Set[int]
    absent: Set[int] = field(default_factory=set)
    repair_rounds: tuple = ()
    recovered: bool = True

    @property
    def num_rounds(self) -> int:
        """Rounds until every surviving node became inactive."""
        return self.metrics.num_rounds

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node (the Figure 5 quantity)."""
        return self.metrics.mean_beeps_per_node

    def bits_per_channel(self) -> float:
        """Mean bits sent per channel over the whole run.

        Each beep of ``v`` costs one bit on each of ``deg(v)`` channels.
        """
        if self.graph.num_edges == 0:
            return 0.0
        total_bits = sum(
            beeps * self.graph.degree(v)
            for v, beeps in enumerate(self.metrics.beeps_by_node)
        )
        return total_bits / self.graph.num_edges

    def verify(self) -> Set[int]:
        """Assert the output is an MIS of the surviving graph.

        Independence must hold among MIS members; every surviving
        (non-crashed, non-absent) vertex must be in the MIS or adjacent
        to an MIS member.  Crashed and absent vertices are excluded from
        the maximality requirement: they left the system.  A run the
        round budget cut off mid-repair (``recovered=False``) skips the
        maximality check — its output is still an independent set.
        """
        exempt = self.crashed | self.absent
        for u in sorted(self.mis):
            if u in self.crashed:
                raise MISValidationError(f"crashed vertex {u} is in the MIS")
            if u in self.absent:
                raise MISValidationError(f"absent vertex {u} is in the MIS")
            for w in self.graph.neighbors(u):
                if w in self.mis:
                    raise MISValidationError(
                        f"set is not independent: edge ({u}, {w}) inside MIS"
                    )
        if not self.recovered:
            return set(self.mis)
        for v in self.graph.vertices():
            if v in self.mis or v in exempt:
                continue
            if not any(w in self.mis for w in self.graph.neighbors(v)):
                raise MISValidationError(
                    f"set is not maximal: vertex {v} is uncovered"
                )
        return set(self.mis)


class BeepingSimulation:
    """Runs one beeping MIS algorithm on one graph.

    Parameters
    ----------
    graph:
        The communication graph.
    node_factory:
        Called once per vertex to create its probability policy.
    rng:
        Source of all randomness for this run.
    faults:
        Optional fault model (default: fault-free).
    trace:
        Optional :class:`Trace` to fill with per-round events.
    max_rounds:
        Round budget; exceeding it raises :class:`TerminationError`.
    """

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        rng: Random,
        faults: FaultModel = NO_FAULTS,
        trace: Optional[Trace] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self._churn = faults.churn_schedule
        self._has_churn = not self._churn.is_empty()
        if self._has_churn:
            # Expand to the universe graph; joiners exist from round 0 as
            # vertices but stay outside the system until their join round.
            graph = self._churn.universe_graph(graph)
        self._graph = graph
        self._rng = rng
        self._channel = BeepChannel(graph, faults)
        self._faults = faults
        self._trace = trace
        self._max_rounds = max_rounds
        self._node_factory = node_factory
        self._nodes: List[BeepingNode] = [
            node_factory(v) for v in graph.vertices()
        ]
        self._states: List[NodeState] = [NodeState.ACTIVE] * graph.num_vertices
        self._crashed: Set[int] = set()
        self._departed: Set[int] = set()
        self._asleep: Set[int] = set()
        self._not_joined: Set[int] = {
            event.vertex for event in self._churn.join_events()
        }
        for v in self._not_joined:
            self._states[v] = NodeState.RETIRED
        self._event_rounds = self._churn.event_rounds()
        self._repair: List[int] = [-1] * len(self._event_rounds)
        self._recovered = True
        self._metrics = SimulationMetrics(graph.num_vertices)
        self._round_index = 0

    # ------------------------------------------------------------------
    # Introspection (used by tests and instrumentation)
    # ------------------------------------------------------------------

    @property
    def round_index(self) -> int:
        """The index of the next round to execute."""
        return self._round_index

    @property
    def states(self) -> List[NodeState]:
        """Current node states (a live view; do not mutate)."""
        return self._states

    def active_vertices(self) -> List[int]:
        """Sorted list of currently active vertices."""
        return [
            v
            for v in self._graph.vertices()
            if self._states[v] is NodeState.ACTIVE
        ]

    def node(self, vertex: int) -> BeepingNode:
        """The policy object of ``vertex``."""
        return self._nodes[vertex]

    @property
    def is_terminated(self) -> bool:
        """Whether no active vertices remain."""
        return not self.active_vertices()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> RoundRecord:
        """Execute one round and return its aggregate record."""
        round_index = self._round_index
        if self._has_churn:
            self._apply_churn(round_index)
        self._apply_crashes(round_index)
        active = self.active_vertices()
        crashed_now = self._faults.crash_schedule.crashed_at(round_index)

        for v in active:
            self._nodes[v].on_round_start(round_index)

        probabilities = None
        if self._trace is not None and self._trace.record_probabilities:
            probabilities = tuple(
                (v, self._nodes[v].beep_probability()) for v in active
            )

        # First exchange: beep decisions, in vertex order for determinism.
        beepers: Set[int] = set()
        for v in active:
            probability = self._nodes[v].beep_probability()
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"policy of vertex {v} returned probability "
                    f"{probability} outside [0, 1]"
                )
            if self._rng.random() < probability:
                beepers.add(v)

        # Observation (possibly noisy) and probability feedback.
        heard = self._channel.deliver(beepers, set(active), self._rng)
        for v in active:
            self._nodes[v].observe_first_exchange(v in beepers, v in heard)

        # Second exchange: joins and retirements from the *true* beep sets.
        joined: Set[int] = {
            v
            for v in beepers
            if not self._channel.reliable_or(beepers, v)
        }
        retired: Set[int] = set()
        retire_cause: Dict[int, int] = {}
        for v in sorted(joined):
            self._states[v] = NodeState.IN_MIS
            for w in self._graph.neighbors(v):
                if self._states[w] is NodeState.ACTIVE:
                    self._states[w] = NodeState.RETIRED
                    retired.add(w)
                    retire_cause[w] = v

        # Accounting.
        self._metrics.record_beeps(beepers)
        record = RoundRecord(
            round_index=round_index,
            active_before=len(active),
            beeps=len(beepers),
            joins=len(joined),
            retirements=len(retired),
            crashes=len(crashed_now),
        )
        self._metrics.record_round(record)
        if self._trace is not None:
            self._trace.append_round(
                RoundEvent(
                    round_index=round_index,
                    beepers=frozenset(beepers),
                    heard=frozenset(heard),
                    joined=frozenset(joined),
                    retired=frozenset(retired),
                    crashed=frozenset(crashed_now),
                    probabilities=probabilities,
                )
            )
            for w in sorted(retired):
                self._trace.append_retirement(round_index, w, retire_cause[w])

        self._round_index += 1
        if self._has_churn and not self.active_vertices():
            self._record_quiescence(
                self._round_index, applied_rounds=self._round_index - 1
            )
        return record

    def _apply_churn(self, round_index: int) -> None:
        """Apply one round's churn batch in the canonical order.

        Leaves, then sleeps, then wakes, then joins, then one
        deterministic resolution pass: entrants listen first (a covered
        entrant retires on the spot), and every present, awake, retired,
        uncovered survivor re-enters the competition with a fresh policy
        object — the self-repair step.  The pass draws no randomness, so
        it leaves the engines' one-draw-order contract untouched.
        """
        events = self._churn.events_at(round_index)
        if not any(events.values()):
            return
        for v in events["leave"]:
            self._states[v] = NodeState.RETIRED
            self._departed.add(v)
            self._asleep.discard(v)
        for v in events["sleep"]:
            self._states[v] = NodeState.RETIRED
            self._asleep.add(v)
        for v in events["wake"]:
            self._asleep.discard(v)
        for v in events["join"]:
            self._not_joined.discard(v)
        in_mis = {
            v
            for v in self._graph.vertices()
            if self._states[v] is NodeState.IN_MIS
        }
        for v in self._graph.vertices():
            if self._states[v] is not NodeState.RETIRED:
                continue
            if (
                v in self._departed
                or v in self._asleep
                or v in self._not_joined
                or v in self._crashed
            ):
                continue
            if not any(w in in_mis for w in self._graph.neighbors(v)):
                self._states[v] = NodeState.ACTIVE
                self._nodes[v] = self._node_factory(v)
        if not self.active_vertices():
            self._record_quiescence(round_index)

    def _record_quiescence(
        self, executed_rounds: int, applied_rounds: int = -1
    ) -> None:
        # ``applied_rounds`` mirrors ChurnState.record_quiescence: the
        # end-of-round checkpoint after round r has executed r + 1 rounds
        # but must not resolve an event at round r + 1 whose batch has
        # not been applied yet.
        if applied_rounds < 0:
            applied_rounds = executed_rounds
        for b, event_round in enumerate(self._event_rounds):
            if event_round > applied_rounds:
                break
            if self._repair[b] == -1:
                self._repair[b] = executed_rounds - event_round

    def _apply_crashes(self, round_index: int) -> None:
        for v in self._faults.crash_schedule.crashed_at(round_index):
            if v in self._graph and self._states[v] is NodeState.ACTIVE:
                self._states[v] = NodeState.RETIRED
                self._crashed.add(v)

    def run(self) -> SimulationResult:
        """Run rounds until termination and return the result.

        Under churn the loop also spans quiet gaps up to the last event
        round (entrants can re-open the competition), and exceeding the
        round budget degrades gracefully — ``recovered=False`` on the
        result — instead of raising :class:`TerminationError`.
        """
        last_event = self._churn.last_event_round
        while not self.is_terminated or self._round_index <= last_event:
            if self._round_index >= self._max_rounds:
                if self._has_churn:
                    self._recovered = False
                    break
                raise TerminationError(
                    f"simulation exceeded {self._max_rounds} rounds with "
                    f"{len(self.active_vertices())} vertices still active"
                )
            self.step()
        mis = {
            v
            for v in self._graph.vertices()
            if self._states[v] is NodeState.IN_MIS
        }
        absent = self._departed | self._asleep | self._not_joined
        return SimulationResult(
            graph=self._graph,
            mis=mis,
            states=list(self._states),
            metrics=self._metrics,
            trace=self._trace,
            crashed=set(self._crashed),
            absent=absent,
            repair_rounds=tuple(self._repair),
            recovered=self._recovered,
        )
