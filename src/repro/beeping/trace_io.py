"""Trace serialisation: JSON Lines for offline analysis and replay.

A recorded :class:`~repro.beeping.events.Trace` can be written to a JSONL
stream (one round per line, plus a header line) and read back losslessly.
This decouples expensive simulations from analysis: run once at scale,
replay the potential-function instrumentation as often as needed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.beeping.events import NodeRetiredEvent, RoundEvent, Trace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def write_trace(trace: Trace, destination: Union[PathLike, TextIO]) -> None:
    """Serialise a trace as JSONL (header, then one line per round)."""
    if hasattr(destination, "write"):
        _write_stream(trace, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            _write_stream(trace, handle)


def _write_stream(trace: Trace, stream: TextIO) -> None:
    header = {
        "format_version": _FORMAT_VERSION,
        "record_probabilities": trace.record_probabilities,
        "num_rounds": trace.num_rounds,
        "retirements": [
            [e.round_index, e.vertex, e.cause] for e in trace.retirements
        ],
    }
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    for event in trace.rounds:
        payload = {
            "round": event.round_index,
            "beepers": sorted(event.beepers),
            "heard": sorted(event.heard),
            "joined": sorted(event.joined),
            "retired": sorted(event.retired),
            "crashed": sorted(event.crashed),
        }
        if event.probabilities is not None:
            payload["probabilities"] = [
                [v, p] for v, p in event.probabilities
            ]
        stream.write(json.dumps(payload, sort_keys=True) + "\n")


def read_trace(source: Union[PathLike, TextIO]) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    if hasattr(source, "read"):
        return _read_stream(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as handle:
        return _read_stream(handle)


def _read_stream(stream: TextIO) -> Trace:
    header_line = stream.readline()
    if not header_line.strip():
        raise ValueError("trace stream is empty: missing header line")
    header = json.loads(header_line)
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    trace = Trace(record_probabilities=header["record_probabilities"])
    for line in stream:
        if not line.strip():
            continue
        payload = json.loads(line)
        probabilities = None
        if "probabilities" in payload:
            probabilities = tuple(
                (int(v), float(p)) for v, p in payload["probabilities"]
            )
        trace.append_round(
            RoundEvent(
                round_index=payload["round"],
                beepers=frozenset(payload["beepers"]),
                heard=frozenset(payload["heard"]),
                joined=frozenset(payload["joined"]),
                retired=frozenset(payload["retired"]),
                crashed=frozenset(payload["crashed"]),
                probabilities=probabilities,
            )
        )
    # Restore retirements after rounds so append_round's join extraction
    # does not duplicate them.
    trace.retirements.clear()
    for round_index, vertex, cause in header["retirements"]:
        trace.retirements.append(
            NodeRetiredEvent(round_index, vertex, cause)
        )
    if trace.num_rounds != header["num_rounds"]:
        raise ValueError(
            f"header declares {header['num_rounds']} rounds but "
            f"{trace.num_rounds} were read"
        )
    return trace
