"""Asynchronous starts: the wake-on-beep beeping model.

The clean synchronous model assumes every node starts at round 0.  Afek et
al. (DISC 2011) also study the harder *wake-on-beep* setting: nodes sleep
until either an adversarially chosen wake-up round arrives or a neighbour's
beep reaches them (a sleeping radio can still be woken by carrier sense).
The PODC paper's robustness discussion ("the initial values ... may vary
from node to node") extends naturally to staggered starts, and this module
makes that testable.

Semantics per round:

1. Nodes whose scheduled round arrived wake up; nodes that heard a beep in
   the previous round wake up (wake-on-beep).
2. Awake active nodes run the usual two-exchange round.  Sleeping nodes
   never beep and never update their policy.
3. Joins require silence from *all* neighbours, which holds automatically
   for sleeping neighbours (they cannot beep).  A sleeping neighbour of a
   joiner is retired immediately — the join announcement is itself a beep,
   which wakes the sleeper and retires it in one step.

The output is therefore always an MIS of the whole graph, regardless of
the wake schedule; only the round count depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.beeping.node import BeepingNode, NodeState
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis

NodeFactory = Callable[[int], BeepingNode]

DEFAULT_MAX_ROUNDS = 100_000


@dataclass
class WakeupResult:
    """The outcome of one wake-on-beep simulation."""

    graph: Graph
    mis: Set[int]
    num_rounds: int
    wake_round: Dict[int, int]
    beeps_by_node: List[int]

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node over the whole run."""
        if not self.beeps_by_node:
            return 0.0
        return sum(self.beeps_by_node) / len(self.beeps_by_node)

    def verify(self) -> Set[int]:
        """Assert the output is an MIS of the full graph."""
        return verify_mis(self.graph, self.mis)


class WakeupSimulation:
    """A beeping simulation with per-node wake-up rounds and wake-on-beep.

    Parameters
    ----------
    graph:
        The communication graph.
    node_factory:
        Policy factory, as in :class:`~repro.beeping.BeepingSimulation`.
    wake_schedule:
        ``wake_schedule[v]`` is the earliest round at which ``v`` may act;
        hearing a beep earlier wakes it earlier.  Length must equal the
        vertex count.
    rng:
        Source of all randomness.
    """

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        wake_schedule: Sequence[int],
        rng: Random,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        if len(wake_schedule) != graph.num_vertices:
            raise ValueError(
                f"wake_schedule has {len(wake_schedule)} entries for "
                f"{graph.num_vertices} vertices"
            )
        if any(round_index < 0 for round_index in wake_schedule):
            raise ValueError("wake rounds must be >= 0")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._rng = rng
        self._max_rounds = max_rounds
        self._schedule = list(wake_schedule)
        self._nodes = [node_factory(v) for v in graph.vertices()]
        self._states = [NodeState.ACTIVE] * graph.num_vertices
        self._awake = [False] * graph.num_vertices
        self._actual_wake: Dict[int, int] = {}
        self._beeps = [0] * graph.num_vertices

    def _wake(self, vertex: int, round_index: int) -> None:
        if not self._awake[vertex]:
            self._awake[vertex] = True
            self._actual_wake[vertex] = round_index

    def run(self) -> WakeupResult:
        """Run rounds until every vertex is inactive."""
        round_index = 0
        pending_wake: Set[int] = set()
        while any(s is NodeState.ACTIVE for s in self._states):
            if round_index >= self._max_rounds:
                raise RuntimeError(
                    f"wake-up simulation exceeded {self._max_rounds} rounds"
                )
            # Scheduled wake-ups, plus wake-on-beep from the last round.
            for v in self._graph.vertices():
                if self._schedule[v] <= round_index:
                    self._wake(v, round_index)
            for v in pending_wake:
                self._wake(v, round_index)
            pending_wake = set()

            participants = [
                v
                for v in self._graph.vertices()
                if self._awake[v] and self._states[v] is NodeState.ACTIVE
            ]
            for v in participants:
                self._nodes[v].on_round_start(round_index)
            beepers: Set[int] = set()
            for v in participants:
                if self._rng.random() < self._nodes[v].beep_probability():
                    beepers.add(v)
                    self._beeps[v] += 1
            # Observations: participants adapt; sleeping neighbours of a
            # beeper are woken for the next round (wake-on-beep).
            heard: Set[int] = set()
            for v in self._graph.vertices():
                neighbor_beeped = not beepers.isdisjoint(
                    self._graph.neighbor_set(v)
                )
                if not neighbor_beeped:
                    continue
                if self._awake[v]:
                    heard.add(v)
                elif self._states[v] is NodeState.ACTIVE:
                    pending_wake.add(v)
            for v in participants:
                self._nodes[v].observe_first_exchange(
                    v in beepers, v in heard
                )
            # Second exchange: joins and retirements (sleeping neighbours
            # retire too — the announcement wakes and retires them).
            joined = {v for v in beepers if v not in heard}
            for v in sorted(joined):
                self._states[v] = NodeState.IN_MIS
                for w in self._graph.neighbors(v):
                    if self._states[w] is NodeState.ACTIVE:
                        self._states[w] = NodeState.RETIRED
                        self._wake(w, round_index)
            round_index += 1
        mis = {
            v
            for v in self._graph.vertices()
            if self._states[v] is NodeState.IN_MIS
        }
        return WakeupResult(
            graph=self._graph,
            mis=mis,
            num_rounds=round_index,
            wake_round=dict(self._actual_wake),
            beeps_by_node=list(self._beeps),
        )


def random_wake_schedule(
    num_vertices: int, max_delay: int, rng: Random
) -> List[int]:
    """Uniform random wake rounds in ``[0, max_delay]``."""
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")
    return [rng.randint(0, max_delay) for _ in range(num_vertices)]
