"""The Notch–Delta biology substrate.

The paper's algorithm is abstracted from the lateral-inhibition positive
feedback of Notch–Delta signalling in developing tissue (Figure 4 and the
surrounding Section 2 discussion).  The paper itself uses the biology only
as motivation; this package builds the closest standard computational
models so the motivating claims are reproducible artefacts:

- :mod:`~repro.bio.ode` — a from-scratch fixed-step RK4 integrator.
- :mod:`~repro.bio.notch_delta` — the Collier et al. (1996) lateral
  inhibition ODE model on arbitrary contact graphs; its two-cell instance
  reproduces Figure 4's mutually exclusive signalling states.
- :mod:`~repro.bio.stochastic` — a discrete-time stochastic accumulation
  model in the spirit of Afek et al.'s Science 2011 in-silico models.
- :mod:`~repro.bio.sop` — SOP-pattern extraction and comparison of the
  emergent pattern with maximal-independent-set structure.
"""

from repro.bio.ode import rk4_integrate
from repro.bio.notch_delta import (
    CollierParameters,
    NotchDeltaModel,
    NotchDeltaResult,
    two_cell_demo,
)
from repro.bio.stochastic import StochasticSOPModel, StochasticSOPResult
from repro.bio.sop import (
    SOPPatternReport,
    analyze_sop_pattern,
    select_sops_by_delta,
)

__all__ = [
    "CollierParameters",
    "NotchDeltaModel",
    "NotchDeltaResult",
    "SOPPatternReport",
    "StochasticSOPModel",
    "StochasticSOPResult",
    "analyze_sop_pattern",
    "rk4_integrate",
    "select_sops_by_delta",
    "two_cell_demo",
]
