"""The Collier et al. (1996) Notch–Delta lateral inhibition model.

Reference [7] of the paper: "Pattern formation by lateral inhibition with
feedback: a mathematical model of Delta-Notch intercellular signalling",
J. Theor. Biol. 183(4).  Each cell ``i`` carries Notch activity ``n_i`` and
Delta activity ``d_i``:

    dn_i/dt = F(<d>_i) − n_i          F(x) = x^k / (a + x^k)
    dd_i/dt = ν·(G(n_i) − d_i)        G(x) = 1 / (1 + b·x^h)

where ``<d>_i`` is the mean Delta activity of ``i``'s neighbours.  Delta
*trans*-activates neighbouring Notch (F increasing); Notch *cis*-inhibits
the cell's own Delta (G decreasing) — together the positive feedback loop
of the paper's Figure 4.  With the original parameters (a=0.01, b=100,
k=h=2, ν=1) the homogeneous steady state is unstable and small initial
differences amplify into a fine-grained pattern of mutually exclusive
states: scattered high-Delta "sender" cells (the SOPs) surrounded by
high-Notch receivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Tuple

import numpy as np

from repro.bio.ode import rk4_integrate
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class CollierParameters:
    """Parameters of the Collier model (defaults from the 1996 paper)."""

    a: float = 0.01
    b: float = 100.0
    k: float = 2.0
    h: float = 2.0
    nu: float = 1.0

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise ValueError("a and b must be > 0")
        if self.k <= 0 or self.h <= 0:
            raise ValueError("k and h must be > 0")
        if self.nu <= 0:
            raise ValueError("nu must be > 0")

    def trans_activation(self, mean_delta: np.ndarray) -> np.ndarray:
        """F: Notch production from neighbours' mean Delta."""
        powered = np.power(np.maximum(mean_delta, 0.0), self.k)
        return powered / (self.a + powered)

    def cis_inhibition(self, notch: np.ndarray) -> np.ndarray:
        """G: Delta production, inhibited by the cell's own Notch."""
        powered = np.power(np.maximum(notch, 0.0), self.h)
        return 1.0 / (1.0 + self.b * powered)


@dataclass
class NotchDeltaResult:
    """The trajectory and final state of one lateral-inhibition run."""

    graph: Graph
    times: np.ndarray
    notch: np.ndarray  # shape (timesteps, cells)
    delta: np.ndarray  # shape (timesteps, cells)

    @property
    def final_notch(self) -> np.ndarray:
        """Notch activity of every cell at the final time."""
        return self.notch[-1]

    @property
    def final_delta(self) -> np.ndarray:
        """Delta activity of every cell at the final time."""
        return self.delta[-1]

    def delta_trajectory(self, cell: int) -> np.ndarray:
        """Delta activity of one cell over time."""
        return self.delta[:, cell]

    def notch_trajectory(self, cell: int) -> np.ndarray:
        """Notch activity of one cell over time."""
        return self.notch[:, cell]


class NotchDeltaModel:
    """The Collier model on an arbitrary cell-contact graph."""

    def __init__(
        self,
        graph: Graph,
        parameters: CollierParameters = CollierParameters(),
    ) -> None:
        self._graph = graph
        self._parameters = parameters
        # Row-normalised adjacency for the neighbour-mean <d>_i; isolated
        # cells see zero Delta.
        n = graph.num_vertices
        matrix = graph.adjacency_matrix().astype(np.float64)
        degrees = matrix.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            self._mean_operator = np.where(
                degrees[:, None] > 0, matrix / np.maximum(degrees, 1.0)[:, None], 0.0
            )

    @property
    def graph(self) -> Graph:
        """The cell-contact graph."""
        return self._graph

    @property
    def parameters(self) -> CollierParameters:
        """The model parameters."""
        return self._parameters

    def derivative(self, t: float, state: np.ndarray) -> np.ndarray:
        """Right-hand side over the packed state ``[notch..., delta...]``."""
        n = self._graph.num_vertices
        notch = state[:n]
        delta = state[n:]
        mean_delta = self._mean_operator @ delta
        d_notch = self._parameters.trans_activation(mean_delta) - notch
        d_delta = self._parameters.nu * (
            self._parameters.cis_inhibition(notch) - delta
        )
        return np.concatenate([d_notch, d_delta])

    def initial_state(
        self, rng: Random, perturbation: float = 0.01
    ) -> np.ndarray:
        """A near-homogeneous initial state with small random differences.

        Lateral inhibition amplifies *small* asymmetries; a perfectly
        symmetric start would stay symmetric forever under the
        deterministic dynamics.
        """
        if not 0.0 <= perturbation < 1.0:
            raise ValueError(
                f"perturbation must be in [0, 1), got {perturbation}"
            )
        n = self._graph.num_vertices
        base = np.full(2 * n, 0.5)
        jitter = np.array(
            [rng.uniform(-perturbation, perturbation) for _ in range(2 * n)]
        )
        return np.clip(base + jitter, 0.0, 1.0)

    def run(
        self,
        rng: Random,
        t_end: float = 60.0,
        dt: float = 0.05,
        perturbation: float = 0.01,
        record_every: int = 10,
        initial_state: Optional[np.ndarray] = None,
    ) -> NotchDeltaResult:
        """Integrate the model and return the trajectory."""
        n = self._graph.num_vertices
        if initial_state is None:
            state0 = self.initial_state(rng, perturbation)
        else:
            state0 = np.asarray(initial_state, dtype=np.float64)
            if state0.shape != (2 * n,):
                raise ValueError(
                    f"initial_state must have shape ({2 * n},), got "
                    f"{state0.shape}"
                )
        times, states = rk4_integrate(
            self.derivative, state0, (0.0, t_end), dt, record_every
        )
        return NotchDeltaResult(
            graph=self._graph,
            times=times,
            notch=states[:, :n],
            delta=states[:, n:],
        )


def two_cell_demo(
    delta_bias: float = 0.01,
    t_end: float = 40.0,
    dt: float = 0.02,
) -> NotchDeltaResult:
    """Figure 4 as an experiment: two coupled cells, one with a slight
    excess of Delta, driven to mutually exclusive signalling states.

    Cell 1 starts with ``0.5 + delta_bias`` Delta, cell 0 with ``0.5``;
    the run ends with cell 1 as the high-Delta sender and cell 0 as the
    high-Notch receiver (asserted by the test-suite and the fig4 bench).
    """
    graph = Graph(2, [(0, 1)])
    model = NotchDeltaModel(graph)
    initial = np.array([0.5, 0.5, 0.5, 0.5 + delta_bias])
    times, states = rk4_integrate(
        model.derivative, initial, (0.0, t_end), dt, record_every=5
    )
    return NotchDeltaResult(
        graph=graph, times=times, notch=states[:, :2], delta=states[:, 2:]
    )
