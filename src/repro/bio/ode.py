"""A minimal fixed-step Runge–Kutta 4 integrator.

scipy is available in the environment, but the biology models only need a
plain non-stiff fixed-step integrator over numpy state vectors, so we keep
the substrate self-contained (and deterministic across scipy versions).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

Derivative = Callable[[float, np.ndarray], np.ndarray]


def rk4_step(
    f: Derivative, t: float, y: np.ndarray, dt: float
) -> np.ndarray:
    """One classical RK4 step from ``(t, y)`` with step size ``dt``."""
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def rk4_integrate(
    f: Derivative,
    y0: np.ndarray,
    t_span: Tuple[float, float],
    dt: float,
    record_every: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate ``y' = f(t, y)`` from ``t_span[0]`` to ``t_span[1]``.

    Parameters
    ----------
    f:
        Right-hand side; must return an array with ``y``'s shape.
    y0:
        Initial state (copied; never mutated).
    t_span:
        ``(t0, t1)`` with ``t1 > t0``.
    dt:
        Fixed step size; the final step is shortened to land on ``t1``.
    record_every:
        Keep every k-th state (plus the final one) in the returned
        trajectory, to bound memory on long integrations.

    Returns
    -------
    ``(times, states)``: 1-D times and a ``(len(times), len(y0))`` state
    matrix, both including the initial and final points.
    """
    t0, t1 = t_span
    if t1 <= t0:
        raise ValueError(f"need t1 > t0, got t_span={t_span}")
    if dt <= 0:
        raise ValueError(f"dt must be > 0, got {dt}")
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    y = np.array(y0, dtype=np.float64, copy=True)
    times = [t0]
    states = [y.copy()]
    t = t0
    step_count = 0
    while t < t1 - 1e-12:
        step = min(dt, t1 - t)
        y = rk4_step(f, t, y, step)
        t += step
        step_count += 1
        if step_count % record_every == 0 or t >= t1 - 1e-12:
            times.append(t)
            states.append(y.copy())
    return np.array(times), np.array(states)
