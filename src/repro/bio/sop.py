"""SOP-pattern extraction and comparison with MIS structure.

The paper's motivating observation (Figure 1B): after SOP selection, "each
cell either becomes an SOP or a neighbour of an SOP, and no two SOPs are
neighbours" — i.e. the SOP set is a maximal independent set of the cell
contact graph.  These helpers extract the emergent SOP set from a
Notch–Delta run and quantify how closely it satisfies the two MIS
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.validation import (
    independent_set_violations,
    uncovered_vertices,
)


def select_sops_by_delta(
    final_delta: Sequence[float], threshold: float = 0.5
) -> Set[int]:
    """Cells whose final Delta activity exceeds ``threshold``.

    In the Collier model the pattern is strongly bimodal (senders near
    Delta ≈ 1, receivers near 0), so any mid-range threshold selects the
    same set; 0.5 is the conventional midpoint.
    """
    return {
        cell
        for cell, delta in enumerate(final_delta)
        if float(delta) > threshold
    }


@dataclass(frozen=True)
class SOPPatternReport:
    """How MIS-like an emergent SOP pattern is."""

    num_cells: int
    num_sops: int
    adjacent_sop_pairs: int
    uncovered_cells: int
    delta_separation: float

    @property
    def is_independent(self) -> bool:
        """No two SOPs touch."""
        return self.adjacent_sop_pairs == 0

    @property
    def is_maximal(self) -> bool:
        """Every cell is an SOP or touches one."""
        return self.uncovered_cells == 0

    @property
    def is_mis(self) -> bool:
        """The full Figure 1B condition."""
        return self.is_independent and self.is_maximal


def analyze_sop_pattern(
    graph: Graph,
    sops: Iterable[int],
    final_delta: Sequence[float] = (),
) -> SOPPatternReport:
    """Score an SOP set against the MIS conditions.

    ``delta_separation`` is the gap between the lowest SOP Delta level and
    the highest non-SOP Delta level (positive = cleanly bimodal); 0.0 when
    no Delta levels are supplied or either class is empty.
    """
    sop_set = set(sops)
    violations = independent_set_violations(graph, sop_set)
    uncovered = uncovered_vertices(graph, sop_set)
    separation = 0.0
    if len(final_delta) == graph.num_vertices and graph.num_vertices > 0:
        deltas = np.asarray(final_delta, dtype=np.float64)
        sop_idx = sorted(sop_set)
        other_idx = [v for v in graph.vertices() if v not in sop_set]
        if sop_idx and other_idx:
            separation = float(deltas[sop_idx].min() - deltas[other_idx].max())
    return SOPPatternReport(
        num_cells=graph.num_vertices,
        num_sops=len(sop_set),
        adjacent_sop_pairs=len(violations),
        uncovered_cells=len(uncovered),
        delta_separation=separation,
    )
