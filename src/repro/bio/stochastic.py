"""A stochastic accumulation model of SOP selection.

Afek et al. (Science 2011) compared fly SOP selection statistics against
in-silico models of stochastic Notch–Delta accumulation, settling on a
model with *stochastic rate change* and threshold (binary) signalling.
This module implements a discrete-time model in that spirit:

- each undifferentiated cell accumulates an internal Delta level by a
  random increment per step (its accumulation *rate* is itself re-drawn
  over time — the "stochastic rate change");
- a cell whose level crosses the threshold starts inhibiting: it commits
  to the SOP fate *if no neighbour crossed in the same step* (ties are
  contested and the contestants reset, modelling mutual inhibition);
- neighbours of a committed SOP are laterally inhibited and drop out.

The emergent committed set is exactly an MIS of the contact graph — the
formal correspondence the paper starts from — while per-cell commitment
*times* vary stochastically like the observed SOP selection times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Set

from repro.graphs.graph import Graph


@dataclass
class StochasticSOPResult:
    """The outcome of one stochastic SOP selection run."""

    graph: Graph
    sops: Set[int]
    inhibited: Set[int]
    commit_step: Dict[int, int]
    steps: int

    @property
    def selection_times(self) -> List[int]:
        """Commitment step of each SOP, sorted ascending."""
        return sorted(self.commit_step[v] for v in self.sops)


class StochasticSOPModel:
    """Discrete-time stochastic accumulation with lateral inhibition.

    Parameters
    ----------
    threshold:
        Accumulation level at which a cell attempts to commit.
    rate_low, rate_high:
        Bounds of the uniform accumulation-rate distribution.
    rate_change_probability:
        Per-step probability that a cell re-draws its rate (the stochastic
        rate change of the Science model).
    """

    def __init__(
        self,
        threshold: float = 10.0,
        rate_low: float = 0.1,
        rate_high: float = 1.5,
        rate_change_probability: float = 0.2,
        max_steps: int = 100_000,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if not 0.0 < rate_low <= rate_high:
            raise ValueError("need 0 < rate_low <= rate_high")
        if not 0.0 <= rate_change_probability <= 1.0:
            raise ValueError("rate_change_probability must be in [0, 1]")
        self._threshold = threshold
        self._rate_low = rate_low
        self._rate_high = rate_high
        self._rate_change_probability = rate_change_probability
        self._max_steps = max_steps

    def run(self, graph: Graph, rng: Random) -> StochasticSOPResult:
        """Run until every cell is an SOP or laterally inhibited."""
        undecided: Set[int] = set(graph.vertices())
        sops: Set[int] = set()
        inhibited: Set[int] = set()
        commit_step: Dict[int, int] = {}
        level = {v: 0.0 for v in graph.vertices()}
        rate = {
            v: rng.uniform(self._rate_low, self._rate_high)
            for v in sorted(graph.vertices())
        }
        step = 0
        while undecided:
            if step >= self._max_steps:
                raise RuntimeError(
                    f"SOP selection exceeded {self._max_steps} steps"
                )
            # Accumulate, with stochastic rate change.
            crossers: Set[int] = set()
            for v in sorted(undecided):
                if rng.random() < self._rate_change_probability:
                    rate[v] = rng.uniform(self._rate_low, self._rate_high)
                level[v] += rate[v]
                if level[v] >= self._threshold:
                    crossers.add(v)
            # Commitment: a crosser with no crossing neighbour becomes an
            # SOP; contested crossers reset (mutual inhibition).
            committed: Set[int] = set()
            for v in crossers:
                if not any(w in crossers for w in graph.neighbors(v)):
                    committed.add(v)
                else:
                    level[v] = 0.0
            for v in committed:
                sops.add(v)
                commit_step[v] = step
                undecided.discard(v)
                for w in graph.neighbors(v):
                    if w in undecided:
                        inhibited.add(w)
                        undecided.discard(w)
            step += 1
        return StochasticSOPResult(
            graph=graph,
            sops=sops,
            inhibited=inhibited,
            commit_step=commit_step,
            steps=step,
        )
