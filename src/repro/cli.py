"""Command-line interface: ``repro-mis`` / ``python -m repro``.

Subcommands
-----------
- ``run``      — run one algorithm on one generated graph and report.
- ``figure3``  — regenerate the Figure 3 series (rounds vs n) and plot it.
- ``figure5``  — regenerate the Figure 5 series (beeps per node vs n).
- ``sweep``    — sharded, cached experiment grids (algorithms × sizes).
- ``compare``  — the paper's beeping-vs-message-passing comparison
  (rounds + bit complexity) across algorithms × workloads × sizes.
- ``robustness`` — fault grid (beep loss × spurious beeps, optional
  crashes) through the cached orchestrator, on the fleet engine.
- ``theorem1`` — the lower-bound experiment on the clique family.
- ``bio``      — run the Notch–Delta lattice model and report the pattern.
- ``paper``    — the one-command paper pipeline: regenerate every
  registered experiment through the cached orchestrator, write CSVs +
  a self-contained HTML report, record runs in a persistent run DB,
  and (``--check``) fail on drift vs the committed goldens.
- ``stats``    — summarise telemetry run ledgers, bench-floor drift,
  and (``--rundb``) the paper pipeline's run database.
- ``list``     — list the registered algorithms.

``figure3``, ``figure5``, ``sizes``, ``sweep``, ``robustness``,
``report`` and ``paper`` accept ``--jobs`` (shard execution over worker
processes) and ``--cache-dir`` (serve already-stored shards from the
content-addressed result store); neither affects results.

Every subcommand additionally accepts ``--telemetry DIR`` (write a JSONL
run ledger, default ``$REPRO_TELEMETRY_DIR``), ``--verbose`` (per-shard
progress lines on stderr as cold sweeps execute) and ``--quiet``
(suppress the ``#`` summary lines).  Telemetry is out of band: it draws
no randomness and changes no result bytes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.telemetry import Collector, capture, record_run

from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.beeping.rng import derive_seed, spawn_rng
from repro.experiments.figures import figure3_series, figure5_series
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.records import results_to_csv
from repro.experiments.tables import format_experiment
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import grid_graph, hex_lattice_graph
from repro.viz.ascii_plots import plot_experiment

#: Every CLI RNG flows through ``spawn_rng(seed, *path)`` /
#: ``derive_seed`` on a disjoint per-purpose path.  Path 0 draws the
#: graph — shared across commands deliberately, so one ``--seed`` shows
#: the same graph everywhere — and each command's algorithm randomness
#: gets its own path below (``run`` already uses the per-trial paths
#: ``(1, trial)``).  The old scheme seeded ``Random(args.seed + k)``
#: directly, so adjacent seeds collided across commands: ``wakeup --seed
#: 7`` and ``match --seed 8`` both consumed ``Random(9)``.
#: ``tests/test_cli.py`` pins the streams pairwise-distinct.
CLI_GRAPH_STREAM = 0
CLI_ALGO_STREAMS = {
    "color": (2,),
    "match": (3,),
    "wakeup-schedule": (4,),
    "wakeup-run": (5,),
    "animate": (6,),
    "bio": (7,),
}


def _add_sweep_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by every orchestrator-backed command."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cache-missing shards (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result store; reruns are served from it",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability knobs shared by *every* subcommand."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help=(
            "record this run as a JSONL ledger under DIR "
            "(default: $REPRO_TELEMETRY_DIR; results are unaffected)"
        ),
    )
    verbosity = group.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", "-v", action="store_true",
        help="per-shard progress lines on stderr while sweeps execute",
    )
    verbosity.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the trailing '#' summary lines",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description=(
            "Reproduction of 'Feedback from nature' (PODC 2013): "
            "beeping-model maximal independent set selection."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one random graph")
    run.add_argument("--algorithm", default="feedback",
                     choices=available_algorithms())
    run.add_argument("--nodes", type=int, default=100)
    run.add_argument("--edge-probability", type=float, default=0.5)
    run.add_argument("--grid", type=int, default=0, metavar="SIDE",
                     help="use a SIDE x SIDE grid instead of G(n, p)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--trials", type=int, default=1)

    fig3 = sub.add_parser("figure3", help="rounds vs n (Figure 3)")
    fig3.add_argument("--trials", type=int, default=20)
    fig3.add_argument("--max-n", type=int, default=500)
    fig3.add_argument("--seed", type=int, default=1303)
    fig3.add_argument("--csv", action="store_true", help="emit CSV only")
    _add_sweep_execution_arguments(fig3)

    fig5 = sub.add_parser("figure5", help="beeps per node vs n (Figure 5)")
    fig5.add_argument("--trials", type=int, default=50)
    fig5.add_argument("--max-n", type=int, default=200)
    fig5.add_argument("--seed", type=int, default=1305)
    fig5.add_argument("--csv", action="store_true", help="emit CSV only")
    _add_sweep_execution_arguments(fig5)

    thm1 = sub.add_parser("theorem1", help="lower-bound clique family")
    thm1.add_argument("--max-side", type=int, default=10)
    thm1.add_argument("--trials", type=int, default=20)
    thm1.add_argument("--seed", type=int, default=1101)
    _add_sweep_execution_arguments(thm1)

    bio = sub.add_parser("bio", help="Notch-Delta lattice simulation")
    bio.add_argument("--rows", type=int, default=8)
    bio.add_argument("--cols", type=int, default=8)
    bio.add_argument("--seed", type=int, default=7)
    bio.add_argument("--t-end", type=float, default=80.0)

    sizes = sub.add_parser("sizes", help="MIS-size comparison vs the optimum")
    sizes.add_argument("--nodes", type=int, default=30)
    sizes.add_argument("--edge-probability", type=float, default=0.3)
    sizes.add_argument("--trials", type=int, default=15)
    sizes.add_argument("--seed", type=int, default=1701)
    _add_sweep_execution_arguments(sizes)

    sweep = sub.add_parser(
        "sweep", help="sharded, cached sweep of algorithms x sizes"
    )
    sweep.add_argument(
        "--algorithms", nargs="+", default=["feedback", "afek-sweep"],
        metavar="NAME",
        help="algorithm names (fleet rules or registry algorithms)",
    )
    sweep.add_argument(
        "--engine", choices=("fleet", "reference"), default="fleet"
    )
    sweep.add_argument("--family", choices=("gnp", "grid"), default="gnp")
    sweep.add_argument(
        "--sizes", nargs="+", type=int, default=[50, 100, 200], metavar="N",
        help="graph sizes (grid family: side lengths)",
    )
    sweep.add_argument("--edge-probability", type=float, default=0.5)
    sweep.add_argument("--trials", type=int, default=32)
    sweep.add_argument(
        "--graphs", type=int, default=1,
        help="fleet engine: independent graphs per cell",
    )
    sweep.add_argument(
        "--backend", choices=("auto", "dense", "sparse", "bitboard"),
        default="auto",
        help="fleet neighbour-reduction kernel; pure execution strategy, "
        "rows are bit-identical across backends",
    )
    sweep.add_argument(
        "--quantity",
        choices=("rounds", "beeps", "mis-size", "messages", "bits"),
        default="rounds",
    )
    sweep.add_argument("--seed", type=int, default=1900)
    sweep.add_argument("--shard-trials", type=int, default=32)
    sweep.add_argument("--csv", action="store_true", help="emit CSV only")
    _add_sweep_execution_arguments(sweep)

    compare = sub.add_parser(
        "compare",
        help="beeping vs message-passing: rounds + bit complexity",
    )
    compare.add_argument(
        "--algorithms", nargs="+", metavar="NAME",
        default=None,
        help="algorithm names (default: the paper's comparison panel)",
    )
    compare.add_argument(
        "--families", nargs="+", choices=("gnp", "grid"), default=["gnp"],
        help="workload families (grid reads sizes as side lengths)",
    )
    compare.add_argument(
        "--sizes", nargs="+", type=int, default=[50, 100, 200], metavar="N"
    )
    compare.add_argument("--edge-probability", type=float, default=0.5)
    compare.add_argument("--trials", type=int, default=32)
    compare.add_argument(
        "--graphs", type=int, default=1,
        help="fleet engine: independent graphs per cell",
    )
    compare.add_argument(
        "--engine", choices=("auto", "fleet", "reference"), default="auto",
        help="auto: fleet where available, reference otherwise",
    )
    compare.add_argument("--seed", type=int, default=2013)
    compare.add_argument("--shard-trials", type=int, default=32)
    compare.add_argument("--csv", action="store_true", help="emit CSV only")
    compare.add_argument(
        "--churn", nargs="*", default=[], metavar="EVENT",
        help="churn events (leave:R:V sleep:R:V wake:R:V join:R:V:N1+N2) "
             "applied to every cell; adds repair/recovered columns",
    )
    _add_sweep_execution_arguments(compare)

    robust = sub.add_parser(
        "robustness",
        help="fault grid (beep loss x spurious beeps) via the cached sweep",
    )
    robust.add_argument(
        "--algorithm", default="feedback", metavar="NAME",
        help="fleet rule (or registry algorithm with --engine reference)",
    )
    robust.add_argument(
        "--engine", choices=("fleet", "reference"), default="fleet"
    )
    robust.add_argument("--nodes", type=int, default=100)
    robust.add_argument("--edge-probability", type=float, default=0.5)
    robust.add_argument(
        "--loss", nargs="+", type=float, default=[0.0, 0.05, 0.1, 0.2],
        metavar="P", help="beep-loss probabilities (one series per value)",
    )
    robust.add_argument(
        "--spurious", nargs="+", type=float, default=[0.0, 0.05, 0.1],
        metavar="P", help="spurious-beep probabilities (the x-axis)",
    )
    robust.add_argument(
        "--crash", nargs="*", default=[], metavar="ROUND:VERTEX",
        help="fail-stop crashes applied to every grid cell",
    )
    robust.add_argument(
        "--churn", nargs="*", default=[], metavar="EVENT",
        help="churn events (leave:R:V sleep:R:V wake:R:V join:R:V:N1+N2) "
             "applied to every grid cell; adds repair/recovered columns",
    )
    robust.add_argument("--trials", type=int, default=32)
    robust.add_argument(
        "--graphs", type=int, default=1,
        help="fleet engine: independent graphs per cell",
    )
    robust.add_argument(
        "--quantity",
        choices=(
            "rounds", "beeps", "mis-size", "messages", "bits",
            "repair", "recovered",
        ),
        default="rounds",
    )
    robust.add_argument("--seed", type=int, default=1603)
    robust.add_argument("--shard-trials", type=int, default=32)
    robust.add_argument("--csv", action="store_true", help="emit CSV only")
    _add_sweep_execution_arguments(robust)

    color = sub.add_parser("color", help="(Delta+1)-colouring by MIS peeling")
    color.add_argument("--nodes", type=int, default=60)
    color.add_argument("--edge-probability", type=float, default=0.15)
    color.add_argument("--seed", type=int, default=0)
    color.add_argument(
        "--engine", choices=("reference", "fleet"), default="reference",
        help="reference: per-node peeling; fleet: vectorised kernel batch",
    )
    color.add_argument(
        "--trials", type=int, default=8,
        help="fleet engine: lockstep colourings per batch",
    )

    match = sub.add_parser("match", help="maximal matching via line-graph MIS")
    match.add_argument("--nodes", type=int, default=40)
    match.add_argument("--edge-probability", type=float, default=0.1)
    match.add_argument("--seed", type=int, default=0)
    match.add_argument(
        "--engine", choices=("reference", "fleet"), default="reference",
        help="reference: per-node line-graph MIS; fleet: vectorised kernel",
    )
    match.add_argument(
        "--trials", type=int, default=8,
        help="fleet engine: lockstep matchings per batch",
    )

    wakeup = sub.add_parser(
        "wakeup", help="feedback MIS with staggered (wake-on-beep) starts"
    )
    wakeup.add_argument("--nodes", type=int, default=60)
    wakeup.add_argument("--edge-probability", type=float, default=0.3)
    wakeup.add_argument("--max-delay", type=int, default=10)
    wakeup.add_argument("--seed", type=int, default=0)

    report_cmd = sub.add_parser(
        "report", help="run every reduced experiment and print a report"
    )
    report_cmd.add_argument("--trials", type=int, default=10)
    report_cmd.add_argument("--seed", type=int, default=2303)
    _add_sweep_execution_arguments(report_cmd)

    paper = sub.add_parser(
        "paper",
        help=(
            "one-command paper pipeline: CSVs + HTML report + run DB, "
            "with drift checking against the committed goldens"
        ),
    )
    paper.add_argument(
        "--trials", type=int, default=3,
        help="trials per point (default: 3, the committed golden scale)",
    )
    paper.add_argument(
        "--out", default="paper-artefacts", metavar="DIR",
        help="output directory for csv/ and report.html",
    )
    paper.add_argument(
        "--only", nargs="+", default=None, metavar="NAME",
        help="run only these registry experiments",
    )
    paper.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every artefact PASSes the drift check",
    )
    paper.add_argument(
        "--golden", default=None, metavar="DIR",
        help=(
            "golden directory to diff against "
            "(default: tests/experiments/golden_paper when present)"
        ),
    )
    paper.add_argument(
        "--write-golden", default=None, metavar="DIR",
        help="pin this run's CSVs (plus manifest) as the goldens under DIR",
    )
    paper.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="directory holding committed BENCH_*.json records",
    )
    paper.add_argument(
        "--rundb", default=None, metavar="DIR",
        help="persistent run database root (default: <out>/rundb)",
    )
    paper.add_argument(
        "--now", default=None, metavar="STAMP",
        help=(
            "stamp the report with this timestamp string (omitting it "
            "keeps reruns byte-identical)"
        ),
    )
    paper.add_argument(
        "--list", action="store_true",
        help="list the registered experiments and exit",
    )
    _add_sweep_execution_arguments(paper)

    animate = sub.add_parser(
        "animate", help="round-by-round text animation of one run"
    )
    animate.add_argument("--nodes", type=int, default=16)
    animate.add_argument("--edge-probability", type=float, default=0.4)
    animate.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser(
        "stats", help="summarise telemetry ledgers and bench-floor drift"
    )
    stats.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: --telemetry / $REPRO_TELEMETRY_DIR)",
    )
    stats.add_argument(
        "--run", default=None, metavar="ID",
        help="run id (prefix ok) for the detail section (default: newest)",
    )
    stats.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="directory holding committed BENCH_*.json records",
    )
    stats.add_argument(
        "--slowest", type=int, default=5, metavar="N",
        help="how many slowest shards to show (default: 5)",
    )
    stats.add_argument(
        "--rundb", default=None, metavar="DIR",
        help="also list the paper pipeline's run database under DIR",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the JSON document instead"
    )

    sub.add_parser("list", help="list registered algorithms")
    # Observability is uniform: every subcommand takes the same
    # --telemetry/--verbose/--quiet trio.
    for subparser in sub.choices.values():
        _add_telemetry_arguments(subparser)
    return parser


def _command_run(args: argparse.Namespace) -> int:
    if args.grid:
        graph = grid_graph(args.grid, args.grid)
        workload = f"{args.grid}x{args.grid} grid"
    else:
        graph = gnp_random_graph(
            args.nodes, args.edge_probability, spawn_rng(args.seed, 0)
        )
        workload = f"G({args.nodes}, {args.edge_probability})"
    algorithm = make_algorithm(args.algorithm)
    print(f"algorithm={algorithm.name} workload={workload} "
          f"edges={graph.num_edges}")
    for trial in range(args.trials):
        run = algorithm.run(graph, spawn_rng(args.seed, 1, trial))
        run.verify()
        print(
            f"trial {trial}: rounds={run.rounds} |MIS|={run.mis_size} "
            f"beeps/node={run.mean_beeps_per_node:.2f}"
        )
    return 0


def _sizes_up_to(max_n: int, count: int = 8, minimum: int = 20) -> List[int]:
    if max_n < minimum:
        raise SystemExit(f"--max-n must be >= {minimum}")
    step = max(1, (max_n - minimum) // max(count - 1, 1))
    sizes = list(range(minimum, max_n + 1, step))
    if sizes[-1] != max_n:
        sizes.append(max_n)
    return sizes


def _command_figure3(args: argparse.Namespace) -> int:
    result = figure3_series(
        sizes=_sizes_up_to(args.max_n),
        trials=args.trials,
        master_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    if args.csv:
        print(results_to_csv(result), end="")
        return 0
    print(format_experiment(result))
    print()
    print(plot_experiment(result, y_label="rounds"))
    return 0


def _command_figure5(args: argparse.Namespace) -> int:
    result = figure5_series(
        sizes=_sizes_up_to(args.max_n, minimum=10),
        trials=args.trials,
        master_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    if args.csv:
        print(results_to_csv(result), end="")
        return 0
    print(format_experiment(result))
    print()
    print(plot_experiment(result, y_label="beeps/node"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.records import ExperimentResult
    from repro.sweep.aggregate import cell_point
    from repro.sweep.orchestrator import run_sweep
    from repro.sweep.spec import CellSpec, SweepSpec

    quantity = args.quantity.replace("-", "_")
    cells = []
    for size_index, size in enumerate(args.sizes):
        if args.family == "gnp":
            family = {
                "family": "gnp",
                "n": size,
                "edge_probability": args.edge_probability,
            }
        else:
            family = {"family": "grid", "rows": size, "cols": size}
        for name in args.algorithms:
            # One master seed per size, shared by every algorithm: in
            # reference mode all algorithms then see identical graphs
            # (paired comparisons); cells stay distinct via `algorithm`.
            cells.append(
                CellSpec(
                    algorithm=name,
                    engine=args.engine,
                    trials=args.trials,
                    graphs=args.graphs,
                    master_seed=derive_seed(args.seed, size_index),
                    backend=args.backend,
                    **family,
                )
            )
    spec = SweepSpec(tuple(cells), shard_trials=args.shard_trials)
    sweep = run_sweep(spec, store=args.cache_dir, jobs=args.jobs)
    points = [cell_point(cell, sweep.rows(cell), quantity) for cell in cells]
    result = ExperimentResult(
        experiment="sweep",
        points=points,
        master_seed=args.seed,
        parameters={
            "engine": args.engine,
            "backend": args.backend,
            "family": args.family,
            "sizes": list(args.sizes),
            "trials": args.trials,
            "graphs": args.graphs,
            "quantity": quantity,
            **(
                {"edge_probability": args.edge_probability}
                if args.family == "gnp"
                else {}
            ),
        },
    )
    cache = args.cache_dir if args.cache_dir else "none"
    summary = f"# {sweep.report.summary()} cache={cache}"
    if args.csv:
        # Keep stdout pure CSV (byte-stable, parseable); report on stderr.
        print(results_to_csv(result), end="")
        if not args.quiet:
            print(summary, file=sys.stderr)
    else:
        print(format_experiment(result))
        print()
        print(plot_experiment(result, y_label=quantity))
        if not args.quiet:
            print(summary)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.experiments.compare import (
        DEFAULT_ALGORITHMS,
        comparison_csv,
        comparison_experiment,
    )

    churn = _parse_churn_events(args.churn)
    if args.algorithms:
        algorithms = tuple(args.algorithms)
    elif churn:
        # The default panel includes fault-oblivious message kernels;
        # under churn, compare the churn-honouring subset instead.
        algorithms = (
            "feedback", "afek-sweep", "luby-permutation", "luby-probability"
        )
    else:
        algorithms = DEFAULT_ALGORITHMS
    try:
        result = comparison_experiment(
            algorithms=algorithms,
            families=tuple(args.families),
            sizes=tuple(args.sizes),
            edge_probability=args.edge_probability,
            trials=args.trials,
            graphs=args.graphs,
            master_seed=args.seed,
            shard_trials=args.shard_trials,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            engine=args.engine,
            churn=churn,
        )
    except ValueError as exc:
        # e.g. a churn-blind algorithm under --churn: a usage error, not
        # a crash — exit argparse-style.
        raise SystemExit(str(exc)) from None
    cache = args.cache_dir if args.cache_dir else "none"
    summary = f"# {result.report.summary()} cache={cache}"
    if args.csv:
        # Keep stdout pure CSV (byte-stable, parseable); report on stderr.
        print(comparison_csv(result), end="")
        if not args.quiet:
            print(summary, file=sys.stderr)
        return 0
    print(f"comparison (seed={args.seed})")
    print(result.table())
    print()
    print(plot_experiment(result.rounds, y_label="rounds"))
    print()
    print(plot_experiment(result.bits_per_node, y_label="bits/node"))
    if not args.quiet:
        print(summary)
    return 0


def _parse_crash_pairs(entries: List[str]) -> tuple:
    """Parse ``--crash`` entries, mapping parse errors to a clean exit."""
    from repro.beeping.faults import parse_crash_spec

    try:
        return parse_crash_spec(entries)
    except ValueError as exc:
        raise SystemExit(f"--crash: {exc}") from None


def _parse_churn_events(entries: List[str]) -> tuple:
    """Parse ``--churn`` entries, mapping parse errors to a clean exit."""
    from repro.beeping.faults import parse_churn_spec

    try:
        return parse_churn_spec(entries)
    except ValueError as exc:
        raise SystemExit(f"--churn: {exc}") from None


def _robustness_churn_csv(result) -> str:
    """Robustness CSV with the churn repair columns appended."""
    import csv as _csv
    import io as _io

    buffer = _io.StringIO()
    writer = _csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["series", "x", "mean", "std", "trials", "repair", "recovered"]
    )
    for point in result.points:
        writer.writerow(
            [
                point.series, point.x, point.mean, point.std, point.trials,
                point.extra.get("repair", 0.0),
                point.extra.get("recovered", 1.0),
            ]
        )
    return buffer.getvalue()


def _robustness_churn_table(result) -> str:
    """The per-cell self-repair summary table of a churned grid."""
    from repro.experiments.tables import format_table

    rows = [
        [
            p.series,
            f"{p.x:g}",
            f"{p.extra.get('repair', 0.0):.2f}",
            f"{p.extra.get('recovered', 1.0):.2f}",
        ]
        for p in result.points
    ]
    return format_table(["series", "x", "repair", "recovered"], rows)


def _command_robustness(args: argparse.Namespace) -> int:
    from repro.experiments.robustness import robustness_grid

    quantity = args.quantity.replace("-", "_")
    churn = _parse_churn_events(args.churn)
    result, report = robustness_grid(
        algorithm=args.algorithm,
        engine=args.engine,
        n=args.nodes,
        edge_probability=args.edge_probability,
        loss_probabilities=args.loss,
        spurious_probabilities=args.spurious,
        crashes=_parse_crash_pairs(args.crash),
        churn=churn,
        trials=args.trials,
        graphs=args.graphs,
        master_seed=args.seed,
        quantity=quantity,
        shard_trials=args.shard_trials,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    cache = args.cache_dir if args.cache_dir else "none"
    summary = f"# {report.summary()} cache={cache}"
    if args.csv:
        # Keep stdout pure CSV (byte-stable, parseable); report on stderr.
        csv_text = (
            _robustness_churn_csv(result) if churn else results_to_csv(result)
        )
        print(csv_text, end="")
        if not args.quiet:
            print(summary, file=sys.stderr)
    else:
        print(format_experiment(result))
        if churn:
            print()
            print("self-repair (mean rounds to re-quiescence, "
                  "recovered fraction):")
            print(_robustness_churn_table(result))
        print()
        print(
            plot_experiment(
                result, y_label=quantity, x_label="spurious probability"
            )
        )
        if not args.quiet:
            print(summary)
    return 0


def _command_theorem1(args: argparse.Namespace) -> int:
    sides = list(range(3, args.max_side + 1, max(1, (args.max_side - 3) // 4)))
    result = theorem1_experiment(
        sides=sides, trials=args.trials, master_seed=args.seed,
        jobs=args.jobs, cache_dir=args.cache_dir,
    )
    print(format_experiment(result))
    print()
    print(plot_experiment(result, y_label="rounds"))
    return 0


def _command_bio(args: argparse.Namespace) -> int:
    from repro.bio.notch_delta import NotchDeltaModel
    from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta
    from repro.viz.graph_render import render_grid_mis

    graph = hex_lattice_graph(args.rows, args.cols)
    model = NotchDeltaModel(graph)
    result = model.run(
        spawn_rng(args.seed, *CLI_ALGO_STREAMS["bio"]), t_end=args.t_end
    )
    sops = select_sops_by_delta(result.final_delta)
    report = analyze_sop_pattern(graph, sops, result.final_delta)
    print(
        f"cells={report.num_cells} SOPs={report.num_sops} "
        f"adjacent-SOP-pairs={report.adjacent_sop_pairs} "
        f"uncovered={report.uncovered_cells} "
        f"delta-separation={report.delta_separation:.3f}"
    )
    print(f"pattern is an MIS of the contact graph: {report.is_mis}")
    print(render_grid_mis(args.rows, args.cols, sops))
    return 0


def _command_sizes(args: argparse.Namespace) -> int:
    from repro.experiments.sizes import mis_size_experiment
    from repro.experiments.tables import format_table

    result = mis_size_experiment(
        n=args.nodes,
        edge_probability=args.edge_probability,
        trials=args.trials,
        master_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    rows = [
        [
            p.series,
            f"{p.mean:.2f}",
            f"{p.std:.2f}",
            f"{p.extra.get('optimum_ratio', float('nan')):.3f}",
        ]
        for p in result.points
    ]
    print(
        format_table(
            ["algorithm", "mean |MIS|", "std", "fraction of optimum"], rows
        )
    )
    return 0


def _command_color(args: argparse.Namespace) -> int:
    from repro.applications.coloring import mis_coloring

    graph = gnp_random_graph(
        args.nodes, args.edge_probability,
        spawn_rng(args.seed, CLI_GRAPH_STREAM),
    )
    print(
        f"n={graph.num_vertices} m={graph.num_edges} "
        f"max degree={graph.max_degree()}"
    )
    if args.engine == "fleet":
        from repro.beeping.rng import derive_seed_block
        from repro.engine.applications import (
            ApplicationFleetSimulator,
            ColoringRule,
        )

        seeds = derive_seed_block(
            args.seed, *CLI_ALGO_STREAMS["color"], count=args.trials
        )
        run = ApplicationFleetSimulator(graph, ColoringRule()).run_fleet(
            seeds, validate=True
        )
        print(
            f"fleet batch: {run.trials} proper colourings in lockstep "
            f"(bound {graph.max_degree() + 1}); "
            f"mean {float(run.layers.mean()):.2f} colours, "
            f"mean {float(run.rounds.mean()):.1f} total beeping rounds"
        )
        print(
            f"trial 0: {run.num_colors(0)} colours in "
            f"{int(run.rounds[0])} rounds"
        )
        return 0
    result = mis_coloring(
        graph, spawn_rng(args.seed, *CLI_ALGO_STREAMS["color"])
    )
    print(
        f"proper colouring: {result.num_colors} colours "
        f"(bound {graph.max_degree() + 1}), "
        f"{result.total_rounds} total beeping rounds"
    )
    for color, members in sorted(result.color_classes().items()):
        print(f"  colour {color}: {len(members)} vertices")
    return 0


def _command_match(args: argparse.Namespace) -> int:
    from repro.applications.matching import mis_matching

    graph = gnp_random_graph(
        args.nodes, args.edge_probability,
        spawn_rng(args.seed, CLI_GRAPH_STREAM),
    )
    print(f"n={graph.num_vertices} m={graph.num_edges}")
    if args.engine == "fleet":
        from repro.beeping.rng import derive_seed_block
        from repro.engine.applications import (
            ApplicationFleetSimulator,
            MatchingRule,
        )

        seeds = derive_seed_block(
            args.seed, *CLI_ALGO_STREAMS["match"], count=args.trials
        )
        run = ApplicationFleetSimulator(graph, MatchingRule()).run_fleet(
            seeds, validate=True
        )
        sizes = run.membership.sum(axis=1)
        print(
            f"fleet batch: {run.trials} maximal matchings in lockstep "
            f"on the {run.num_vertices}-vertex line graph; "
            f"mean {float(sizes.mean()):.2f} edges, "
            f"mean {float(run.rounds.mean()):.1f} rounds"
        )
        print(
            f"trial 0: {int(sizes[0])} edges in {int(run.rounds[0])} rounds"
        )
        return 0
    result = mis_matching(
        graph, spawn_rng(args.seed, *CLI_ALGO_STREAMS["match"])
    )
    print(
        f"maximal matching: {result.size} edges in {result.rounds} rounds; "
        f"{len(result.matched_vertices())} vertices matched"
    )
    return 0


def _command_wakeup(args: argparse.Namespace) -> int:
    from repro.beeping.wakeup import WakeupSimulation, random_wake_schedule
    from repro.core.policy import ExponentFeedbackNode

    graph = gnp_random_graph(
        args.nodes, args.edge_probability,
        spawn_rng(args.seed, CLI_GRAPH_STREAM),
    )
    schedule = random_wake_schedule(
        graph.num_vertices, args.max_delay,
        spawn_rng(args.seed, *CLI_ALGO_STREAMS["wakeup-schedule"]),
    )
    result = WakeupSimulation(
        graph,
        lambda v: ExponentFeedbackNode(),
        schedule,
        spawn_rng(args.seed, *CLI_ALGO_STREAMS["wakeup-run"]),
    ).run()
    result.verify()
    woken_by_beep = sum(
        1
        for v, actual in result.wake_round.items()
        if actual < schedule[v]
    )
    print(
        f"n={graph.num_vertices} staggered starts over "
        f"[0, {args.max_delay}] rounds"
    )
    print(
        f"MIS of {len(result.mis)} vertices in {result.num_rounds} rounds; "
        f"{woken_by_beep} nodes woken early by a neighbour's beep"
    )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    print(
        build_report(
            trials=args.trials,
            master_seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
    )
    return 0


def _command_paper(args: argparse.Namespace) -> int:
    from repro.experiments.paper import (
        GOLDEN_AUTO,
        experiment_names,
        run_paper,
        write_golden,
    )

    if args.list:
        for name in experiment_names():
            print(name)
        return 0
    quiet = getattr(args, "quiet", False)

    def progress(line: str) -> None:
        if not quiet:
            print(f"# {line}")

    try:
        pipeline = run_paper(
            trials=args.trials,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            out_dir=args.out,
            only=args.only,
            golden_dir=args.golden if args.golden is not None else GOLDEN_AUTO,
            bench_dir=args.bench_dir,
            rundb_dir=args.rundb,
            now=args.now,
            progress=progress,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    if args.write_golden is not None:
        for path in write_golden(pipeline, args.write_golden):
            progress(f"golden pinned: {path}")
    for verdict in pipeline.drift:
        progress(f"drift {verdict.artefact}: {verdict.status} "
                 f"({verdict.detail})")
    progress(f"report: {pipeline.report_path}")
    if args.check and not pipeline.check_passed:
        print("paper --check FAILED: artefacts drifted from the goldens "
              "(or were unverifiable)", file=sys.stderr)
        return 1
    return 0


def _command_animate(args: argparse.Namespace) -> int:
    from repro.beeping.events import Trace
    from repro.beeping.scheduler import BeepingSimulation
    from repro.core.policy import ExponentFeedbackNode
    from repro.viz.animation import render_animation

    graph = gnp_random_graph(
        args.nodes, args.edge_probability,
        spawn_rng(args.seed, CLI_GRAPH_STREAM),
    )
    trace = Trace()
    result = BeepingSimulation(
        graph,
        lambda v: ExponentFeedbackNode(),
        spawn_rng(args.seed, *CLI_ALGO_STREAMS["animate"]),
        trace=trace,
    ).run()
    result.verify()
    print(render_animation(trace, graph.num_vertices))
    print(
        f"\ndone in {result.num_rounds} rounds; "
        f"MIS = {sorted(result.mis)}"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import format_stats, stats_payload

    root = args.ledger or _telemetry_root(args)
    if root is None and args.rundb is None:
        raise SystemExit(
            "repro stats needs a ledger directory (--ledger/--telemetry or "
            "REPRO_TELEMETRY_DIR) or a run database (--rundb)"
        )
    if args.json:
        print(
            json.dumps(
                stats_payload(
                    root, args.bench_dir, args.run, slowest=args.slowest,
                    rundb_dir=args.rundb,
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        format_stats(
            root, args.bench_dir, args.run, slowest=args.slowest,
            rundb_dir=args.rundb,
        )
    )
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    for name in available_algorithms():
        print(name)
    return 0


_COMMANDS = {
    "run": _command_run,
    "figure3": _command_figure3,
    "figure5": _command_figure5,
    "sweep": _command_sweep,
    "compare": _command_compare,
    "robustness": _command_robustness,
    "theorem1": _command_theorem1,
    "bio": _command_bio,
    "sizes": _command_sizes,
    "color": _command_color,
    "match": _command_match,
    "wakeup": _command_wakeup,
    "report": _command_report,
    "paper": _command_paper,
    "animate": _command_animate,
    "stats": _command_stats,
    "list": _command_list,
}


def _telemetry_root(args: argparse.Namespace) -> Optional[str]:
    """The ledger root: ``--telemetry`` first, then the environment."""
    explicit = getattr(args, "telemetry", None)
    if explicit:
        return explicit
    return os.environ.get("REPRO_TELEMETRY_DIR") or None


def _progress_sink(event: dict) -> None:
    """``--verbose``: narrate sweep progress from the probe stream.

    Runs as a collector sink, so cold sweeps report each executed shard
    the moment its worker finishes — no engine or orchestrator code knows
    the CLI is watching.
    """
    name = event.get("name")
    if event.get("event") == "span" and name == "sweep.shard":
        attrs = event.get("attrs", {})
        if attrs.get("cached"):
            return
        print(
            f"# shard {attrs.get('index', '?')}/{attrs.get('total', '?')} "
            f"{attrs.get('algorithm', '?')}[n={attrs.get('n', '?')} "
            f"{attrs.get('lo', '?')}:{attrs.get('hi', '?')}] "
            f"{float(event.get('seconds', 0.0)):.3f}s",
            file=sys.stderr,
        )
    elif event.get("event") == "annotation" and name == "sweep.resume":
        attrs = event.get("attrs", {})
        print(
            f"# resuming: {attrs.get('cached', '?')} shards cached, "
            f"{attrs.get('missing', '?')} to execute",
            file=sys.stderr,
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-mis`` and ``python -m repro``.

    With ``--telemetry``/``$REPRO_TELEMETRY_DIR`` set, the whole command
    runs inside :func:`repro.telemetry.record_run`, so every probe the
    layers below fire lands in one per-run JSONL ledger; ``--verbose``
    additionally streams shard progress to stderr.  Neither changes any
    result byte (``stats`` only *reads* ledgers and is never recorded).
    """
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    root = _telemetry_root(args) if args.command != "stats" else None
    verbose = getattr(args, "verbose", False)
    if root is None and not verbose:
        return handler(args)
    collector = Collector()
    if verbose:
        collector.add_sink(_progress_sink)
    if root is not None:
        recorded_argv = list(argv) if argv is not None else sys.argv[1:]
        with record_run(root, args.command, recorded_argv, collector):
            return handler(args)
    with capture(collector):
        return handler(args)


if __name__ == "__main__":
    sys.exit(main())
