"""The paper's primary contribution: the local-feedback beep policy.

- :mod:`~repro.core.policy` — the exact algorithm of Definition 1
  (:class:`ExponentFeedbackNode`) and its generalised multiplicative form
  (:class:`FeedbackNode`).
- :mod:`~repro.core.automaton` — the explicit node automaton of Figure 2.
- :mod:`~repro.core.variants` — the robustness variants discussed in
  Section 6 (per-node factors, randomised initial probabilities).
- :mod:`~repro.core.instrumentation` — the potential-function quantities
  (``µ_t``, light/heavy neighbourhoods, the E1–E4 event classification)
  from the proof of Theorem 2, computable from a recorded trace.
"""

from repro.core.automaton import AutomatonState, NodeAutomaton
from repro.core.beep_accounting import (
    BeepDecomposition,
    decompose_beeps,
    mean_decomposition,
)
from repro.core.policy import ExponentFeedbackNode, FeedbackNode
from repro.core.variants import (
    heterogeneous_feedback_factory,
    jittered_factor_factory,
    random_initial_probability_factory,
)
from repro.core.instrumentation import (
    EventKind,
    PotentialTracker,
    RoundClassification,
    classify_vertex_rounds,
    neighborhood_weight,
    partition_light_heavy,
)

__all__ = [
    "AutomatonState",
    "BeepDecomposition",
    "EventKind",
    "decompose_beeps",
    "mean_decomposition",
    "ExponentFeedbackNode",
    "FeedbackNode",
    "NodeAutomaton",
    "PotentialTracker",
    "RoundClassification",
    "classify_vertex_rounds",
    "heterogeneous_feedback_factory",
    "jittered_factor_factory",
    "neighborhood_weight",
    "partition_light_heavy",
    "random_initial_probability_factory",
]
