"""The explicit node automaton of Figure 2.

The scheduler in :mod:`repro.beeping.scheduler` implements the round
semantics directly; this module reproduces the *state-based description* of
the paper's Figure 2 as an explicit automaton, so that the figure itself is
a tested artefact.  A test drives the automaton and the scheduler side by
side and checks that they agree (see ``tests/core/test_automaton.py``).

States (Figure 2):

- ``INITIAL``       — active, not currently signalling.
- ``SIGNALLING``    — wishes to join the MIS this round (entered with
  probability ``p``).
- ``JOINED``        — in the MIS; inactive.
- ``NEIGHBOR_IN_MIS`` — a neighbour joined the MIS; inactive.

Transitions (one round):

- ``INITIAL → SIGNALLING`` with probability ``p``.
- ``SIGNALLING → JOINED`` if no neighbour signals.
- ``SIGNALLING → INITIAL`` if a neighbour also signals (stop signalling).
- ``INITIAL → NEIGHBOR_IN_MIS`` if a signalling neighbour joins.
"""

from __future__ import annotations

import enum
from random import Random
from typing import Optional


class AutomatonState(enum.Enum):
    """The four states of Figure 2."""

    INITIAL = "initial"
    SIGNALLING = "signalling"
    JOINED = "joined"
    NEIGHBOR_IN_MIS = "neighbor_in_mis"

    @property
    def is_terminal(self) -> bool:
        """Whether the state is inactive (grey in the figure)."""
        return self in (AutomatonState.JOINED, AutomatonState.NEIGHBOR_IN_MIS)


class NodeAutomaton:
    """One node's automaton, driven round by round.

    The automaton follows Table 1: ``p`` starts at ``1/2`` and is updated by
    the feedback rule during the first exchange; the state transitions of
    Figure 2 happen across the two exchanges.
    """

    def __init__(
        self,
        initial_probability: float = 0.5,
        decrease_factor: float = 0.5,
        increase_factor: float = 2.0,
        max_probability: float = 0.5,
    ) -> None:
        if not 0.0 < initial_probability <= max_probability:
            raise ValueError(
                "initial_probability must be in (0, max_probability]"
            )
        self._state = AutomatonState.INITIAL
        self._probability = initial_probability
        self._decrease_factor = decrease_factor
        self._increase_factor = increase_factor
        self._max_probability = max_probability

    @property
    def state(self) -> AutomatonState:
        """The current automaton state."""
        return self._state

    @property
    def probability(self) -> float:
        """The current signalling probability ``p``."""
        return self._probability

    @property
    def is_active(self) -> bool:
        """Whether the node is still participating."""
        return not self._state.is_terminal

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------

    def first_exchange_start(self, rng: Random) -> bool:
        """Decide whether to start signalling; returns True if signalling.

        Line 4 of Table 1: with probability ``p``, start signalling.
        """
        self._require_active()
        if rng.random() < self._probability:
            self._state = AutomatonState.SIGNALLING
            return True
        return False

    def first_exchange_feedback(self, neighbor_signalling: bool) -> None:
        """React to the neighbours' signals (lines 5-9 of Table 1)."""
        self._require_active()
        if neighbor_signalling:
            if self._state is AutomatonState.SIGNALLING:
                # Line 6: stop signalling.
                self._state = AutomatonState.INITIAL
            # Line 7: reduce p.
            self._probability *= self._decrease_factor
        else:
            # Line 9: increase p, up to the cap.
            self._probability = min(
                self._probability * self._increase_factor,
                self._max_probability,
            )

    def second_exchange(self, neighbor_joined: bool) -> Optional[AutomatonState]:
        """Apply the second exchange (lines 10-15 of Table 1).

        Returns the new terminal state if the node terminates this round,
        else ``None``.  ``neighbor_joined`` reports whether some neighbour
        announced joining the MIS.
        """
        self._require_active()
        if self._state is AutomatonState.SIGNALLING:
            # Still signalling after the feedback phase means no neighbour
            # signalled, so the node joins (lines 11-13).
            self._state = AutomatonState.JOINED
            return self._state
        if neighbor_joined:
            # Lines 14-15.
            self._state = AutomatonState.NEIGHBOR_IN_MIS
            return self._state
        return None

    def _require_active(self) -> None:
        if self._state.is_terminal:
            raise RuntimeError(
                f"automaton is already terminal in state {self._state}"
            )
