"""Beep accounting from the proof of Theorem 6.

The O(1) expected-beeps proof decomposes a node's active life into:

- the **new-low subsequence** — steps where the node heard a beep and its
  probability dropped to a value lower than ever before; the expected
  number of beeps over these steps telescopes to ≤ 1 (½ + ¼ + …);
- **Case 1/2 pairs** — a probability increase at step ``t`` paired with
  the next return to the same level; each pair contributes beeps only via
  the event ``B_t`` ("beeped at t or its partner"), and at most 3 such
  events occur in expectation;
- **Case 3** — steps at the ½ cap hearing silence: a beep there joins the
  MIS, so at most one beep total.

This module replays a recorded trace and produces that decomposition, so
tests can check the proof's per-category bounds empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.beeping.events import Trace
from repro.core.instrumentation import probability_map


@dataclass(frozen=True)
class BeepDecomposition:
    """Beep counts of one vertex, split by the proof's categories."""

    vertex: int
    total_beeps: int
    new_low_beeps: int
    cap_beeps: int
    paired_beeps: int
    steps_active: int

    @property
    def accounted(self) -> int:
        """Sum over categories (must equal ``total_beeps``)."""
        return self.new_low_beeps + self.cap_beeps + self.paired_beeps


def decompose_beeps(trace: Trace, vertex: int) -> BeepDecomposition:
    """Classify every beep of ``vertex`` into the proof's categories.

    Requires a trace recorded with probabilities.  Classification per
    active step ``t`` (with probability ``p_t`` at the start of the step):

    - the node heard a beep and ``p_{t+1}`` is a new all-time low →
      *new-low* step;
    - the node heard no beep at the cap (``p_t = ½`` stays ½) → *cap* step;
    - anything else (increases and non-new-low decreases) → *paired* step.
    """
    total = 0
    new_low = 0
    cap = 0
    paired = 0
    steps = 0
    lowest = None
    for t in range(trace.num_rounds):
        prob_now = probability_map(trace, t)
        if vertex not in prob_now:
            break
        steps += 1
        p_t = prob_now[vertex]
        if lowest is None:
            lowest = p_t
        beeped = vertex in trace.rounds[t].beepers
        heard = vertex in trace.rounds[t].heard
        if t + 1 < trace.num_rounds:
            prob_next = probability_map(trace, t + 1)
        else:
            prob_next = {}
        p_next = prob_next.get(vertex)
        if beeped:
            total += 1
        is_new_low = (
            heard and p_next is not None and p_next < lowest
        )
        at_cap_silent = not heard and p_t == 0.5
        if beeped:
            if is_new_low:
                new_low += 1
            elif at_cap_silent:
                cap += 1
            else:
                paired += 1
        if p_next is not None and p_next < lowest:
            lowest = p_next
    return BeepDecomposition(
        vertex=vertex,
        total_beeps=total,
        new_low_beeps=new_low,
        cap_beeps=cap,
        paired_beeps=paired,
        steps_active=steps,
    )


def mean_decomposition(
    trace: Trace, num_vertices: int
) -> Dict[str, float]:
    """Average the decomposition over all vertices of a run."""
    decompositions: List[BeepDecomposition] = [
        decompose_beeps(trace, v) for v in range(num_vertices)
    ]
    count = max(len(decompositions), 1)
    return {
        "total": sum(d.total_beeps for d in decompositions) / count,
        "new_low": sum(d.new_low_beeps for d in decompositions) / count,
        "cap": sum(d.cap_beeps for d in decompositions) / count,
        "paired": sum(d.paired_beeps for d in decompositions) / count,
    }
