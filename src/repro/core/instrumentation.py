"""Potential-function instrumentation from the proof of Theorem 2.

The proof of the O(log n) upper bound follows, for a fixed vertex ``v``, the
weight ``µ_t(Γ(v))`` of its neighbourhood (the sum of its neighbours' beep
probabilities), splits the neighbourhood into *λ-light* and *λ-heavy*
vertices, and classifies every round into one of four events:

- **E1** — the light part carries significant weight, ``µ_t(L_t) ≥ α``;
- **E2** — ``µ_t(L_t) < α`` and the whole neighbourhood is light,
  ``µ_t(Γ(v)) ≤ β``;
- **E3** — neither, and the neighbourhood weight shrinks by at least
  ``1/√2`` during the round;
- **E4** — neither, and it does not shrink that much (the "bad" event,
  shown to have probability at most 1/80 in Claim 2).

This module recomputes all of these quantities from a recorded trace, which
lets the test-suite check the proof's claims *empirically* (e.g. the E4
frequency bound of Claim 2 and the "µ_t(Γ(v)) is small most of the time"
conclusion of Claim 4) on real runs of the algorithm.

The paper's constants are ``α = 10⁻³``, ``β = 1/50``, ``λ = 7``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.beeping.events import Trace
from repro.graphs.graph import Graph

PAPER_ALPHA = 1e-3
PAPER_BETA = 1.0 / 50.0
PAPER_LAMBDA = 7.0


class EventKind(enum.Enum):
    """The proof's four per-round events (exactly one occurs per round)."""

    E1 = "E1"
    E2 = "E2"
    E3 = "E3"
    E4 = "E4"


@dataclass(frozen=True)
class RoundClassification:
    """The classification of one round of a tracked vertex's life."""

    round_index: int
    kind: EventKind
    mu_light: float
    mu_neighborhood: float
    mu_neighborhood_next: float


def probability_map(trace: Trace, round_index: int) -> Dict[int, float]:
    """The ``µ_t`` measure at the start of the given round.

    Only active vertices appear; by the paper's convention inactive vertices
    have ``µ_t(v) = 0`` and are simply absent from the map.
    """
    event = trace.rounds[round_index]
    if event.probabilities is None:
        raise ValueError(
            "trace was recorded without probabilities; construct it with "
            "Trace(record_probabilities=True)"
        )
    return dict(event.probabilities)


def measure(prob_map: Dict[int, float], vertices: Iterable[int]) -> float:
    """``µ_t(S)`` — the total weight of a vertex set (inactive → 0)."""
    return sum(prob_map.get(v, 0.0) for v in vertices)


def neighborhood_weight(
    graph: Graph, prob_map: Dict[int, float], vertex: int
) -> float:
    """``µ_t(Γ(v))`` — the total beep probability of ``v``'s neighbours."""
    return measure(prob_map, graph.neighbors(vertex))


def partition_light_heavy(
    graph: Graph,
    prob_map: Dict[int, float],
    vertex: int,
    lam: float = PAPER_LAMBDA,
) -> Tuple[List[int], List[int]]:
    """Split ``Γ(v)`` into λ-light and λ-heavy *active* neighbours.

    A neighbour ``x`` is λ-light when ``µ_t(Γ(x)) ≤ λ``.  Inactive
    neighbours carry no weight and are excluded from both sides.
    """
    light: List[int] = []
    heavy: List[int] = []
    for x in graph.neighbors(vertex):
        if x not in prob_map:
            continue
        if neighborhood_weight(graph, prob_map, x) <= lam:
            light.append(x)
        else:
            heavy.append(x)
    return light, heavy


def classify_vertex_rounds(
    graph: Graph,
    trace: Trace,
    vertex: int,
    alpha: float = PAPER_ALPHA,
    beta: float = PAPER_BETA,
    lam: float = PAPER_LAMBDA,
) -> List[RoundClassification]:
    """Classify each round of ``vertex``'s active life into E1-E4.

    The classification stops at the round in which the vertex becomes
    inactive (inclusive), mirroring the proof, which only tracks ``v`` while
    it is active.
    """
    classifications: List[RoundClassification] = []
    for t in range(trace.num_rounds):
        prob_map = probability_map(trace, t)
        if vertex not in prob_map:
            break
        light, _heavy = partition_light_heavy(graph, prob_map, vertex, lam)
        mu_light = measure(prob_map, light)
        mu_gamma = neighborhood_weight(graph, prob_map, vertex)
        if t + 1 < trace.num_rounds:
            next_map = probability_map(trace, t + 1)
        else:
            next_map = {}
        mu_gamma_next = measure(next_map, graph.neighbors(vertex))
        if mu_light >= alpha:
            kind = EventKind.E1
        elif mu_gamma <= beta:
            kind = EventKind.E2
        elif mu_gamma_next <= mu_gamma / math.sqrt(2.0):
            kind = EventKind.E3
        else:
            kind = EventKind.E4
        classifications.append(
            RoundClassification(
                round_index=t,
                kind=kind,
                mu_light=mu_light,
                mu_neighborhood=mu_gamma,
                mu_neighborhood_next=mu_gamma_next,
            )
        )
    return classifications


def event_frequencies(
    classifications: Sequence[RoundClassification],
) -> Dict[EventKind, float]:
    """The empirical frequency of each event kind (0.0 when no rounds)."""
    counts = {kind: 0 for kind in EventKind}
    for classification in classifications:
        counts[classification.kind] += 1
    total = len(classifications)
    if total == 0:
        return {kind: 0.0 for kind in EventKind}
    return {kind: counts[kind] / total for kind in counts}


class PotentialTracker:
    """Convenience wrapper: per-round potential series for a whole run.

    Computes, for every round ``t``, the total measure ``µ_t(V)`` and the
    number of active vertices — the global quantities one plots to *see* the
    algorithm converge.
    """

    def __init__(self, graph: Graph, trace: Trace) -> None:
        self._graph = graph
        self._trace = trace

    def total_measure_series(self) -> List[float]:
        """``µ_t(V)`` for each recorded round."""
        return [
            sum(probability_map(self._trace, t).values())
            for t in range(self._trace.num_rounds)
        ]

    def active_count_series(self) -> List[int]:
        """Number of active vertices at the start of each round."""
        return [
            len(probability_map(self._trace, t))
            for t in range(self._trace.num_rounds)
        ]

    def neighborhood_series(self, vertex: int) -> List[float]:
        """``µ_t(Γ(v))`` for each round in which ``v`` is active."""
        series: List[float] = []
        for t in range(self._trace.num_rounds):
            prob_map = probability_map(self._trace, t)
            if vertex not in prob_map:
                break
            series.append(neighborhood_weight(self._graph, prob_map, vertex))
        return series
