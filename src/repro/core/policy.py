"""The feedback beep-probability policies (Table 1 / Definition 1).

Two implementations are provided:

- :class:`ExponentFeedbackNode` is the *exact* algorithm of Definition 1:
  the node keeps an integer exponent ``n(v)`` with ``p = 2^-n(v)``,
  ``n(0, v) = 1``; hearing a beep increments the exponent (p halves), not
  hearing one decrements it down to 1 (p doubles, capped at 1/2).

- :class:`FeedbackNode` is the generalised multiplicative form used by the
  robustness discussion in Section 6: arbitrary decrease/increase factors,
  cap, optional floor and arbitrary initial probability.  With the default
  parameters it coincides with :class:`ExponentFeedbackNode` (and a test
  asserts this).

Both are pure policies — all MIS semantics live in the scheduler.
"""

from __future__ import annotations

from repro.beeping.node import BeepingNode


class ExponentFeedbackNode(BeepingNode):
    """The algorithm of Definition 1, exactly as stated in the paper.

    State is the integer exponent ``n(v, t)``; the beep probability is
    ``2^-n(v, t)``.  Update rules (for a node that stays active):

    - a neighbour beeped            → ``n ← n + 1``        (p halves)
    - no neighbour beeped           → ``n ← max(n - 1, 1)`` (p doubles, cap ½)
    """

    __slots__ = ("_exponent",)

    INITIAL_EXPONENT = 1

    def __init__(self) -> None:
        self._exponent = self.INITIAL_EXPONENT

    @property
    def exponent(self) -> int:
        """The current value of ``n(v, t)``."""
        return self._exponent

    def beep_probability(self) -> float:
        return 2.0 ** -self._exponent

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        if heard_beep:
            self._exponent += 1
        else:
            self._exponent = max(self._exponent - 1, 1)

    def describe(self) -> str:
        return f"ExponentFeedbackNode(n={self._exponent})"


class FeedbackNode(BeepingNode):
    """Generalised multiplicative feedback (Section 6 robustness form).

    Parameters
    ----------
    initial_probability:
        Starting beep probability (paper default ``1/2``).
    decrease_factor:
        Multiplier applied when a neighbour beeps; must be in ``(0, 1)``.
    increase_factor:
        Multiplier applied when no neighbour beeps; must be ``> 1``.
    max_probability:
        Cap on the probability (paper default ``1/2``).
    min_probability:
        Optional floor (default 0.0, i.e. no floor).  The exact Definition 1
        policy has an implicit floor of 0 (the exponent may grow without
        bound) and cap of ``1/2``.
    """

    __slots__ = (
        "_probability",
        "_decrease_factor",
        "_increase_factor",
        "_max_probability",
        "_min_probability",
    )

    def __init__(
        self,
        initial_probability: float = 0.5,
        decrease_factor: float = 0.5,
        increase_factor: float = 2.0,
        max_probability: float = 0.5,
        min_probability: float = 0.0,
    ) -> None:
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        if increase_factor <= 1.0:
            raise ValueError(
                f"increase_factor must be > 1, got {increase_factor}"
            )
        if not 0.0 < max_probability <= 1.0:
            raise ValueError(
                f"max_probability must be in (0, 1], got {max_probability}"
            )
        if not 0.0 <= min_probability <= max_probability:
            raise ValueError(
                "min_probability must be in [0, max_probability], got "
                f"{min_probability}"
            )
        if not 0.0 < initial_probability <= max_probability:
            raise ValueError(
                "initial_probability must be in (0, max_probability], got "
                f"{initial_probability}"
            )
        self._probability = initial_probability
        self._decrease_factor = decrease_factor
        self._increase_factor = increase_factor
        self._max_probability = max_probability
        self._min_probability = min_probability

    @property
    def probability(self) -> float:
        """The current beep probability."""
        return self._probability

    def beep_probability(self) -> float:
        return self._probability

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        if heard_beep:
            self._probability = max(
                self._probability * self._decrease_factor,
                self._min_probability,
            )
        else:
            self._probability = min(
                self._probability * self._increase_factor,
                self._max_probability,
            )

    def describe(self) -> str:
        return (
            f"FeedbackNode(p={self._probability:.6g}, "
            f"down={self._decrease_factor}, up={self._increase_factor})"
        )
