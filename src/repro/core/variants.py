"""Robustness variants of the feedback policy (Section 6).

The paper's conclusion claims the algorithm tolerates:

- feedback factors different from 2 ("do not need to increase and decrease
  by a precise factor");
- factors that *vary between nodes* and over time;
- initial probabilities different from ``1/2``, varying from node to node,
  "as long as sufficiently many of them are bounded away from zero".

Each claim gets a node-factory builder here; the ablation benchmarks sweep
over them.  All builders return a factory with the ``vertex -> BeepingNode``
signature expected by the scheduler, deriving per-node randomness from an
explicit seed so variants stay reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.beeping.node import BeepingNode
from repro.beeping.rng import spawn_rng
from repro.core.policy import FeedbackNode

NodeFactory = Callable[[int], BeepingNode]


def uniform_feedback_factory(
    decrease_factor: float = 0.5,
    increase_factor: float = 2.0,
    initial_probability: float = 0.5,
    max_probability: float = 0.5,
) -> NodeFactory:
    """Every node runs the same generalised feedback policy.

    With the default arguments this is exactly the paper's algorithm.
    """

    def factory(vertex: int) -> BeepingNode:
        return FeedbackNode(
            initial_probability=initial_probability,
            decrease_factor=decrease_factor,
            increase_factor=increase_factor,
            max_probability=max_probability,
        )

    return factory


def heterogeneous_feedback_factory(
    seed: int,
    decrease_factors: Sequence[float] = (0.4, 0.5, 0.6),
    increase_factors: Sequence[float] = (1.6, 2.0, 2.5),
    max_probability: float = 0.5,
) -> NodeFactory:
    """Each node independently draws its own (fixed) pair of factors.

    Models the "factors may vary between nodes" robustness claim: vertex
    ``v`` picks uniformly from the given factor menus using randomness
    derived from ``seed`` and ``v``, so the assignment is reproducible and
    independent of construction order.
    """
    if not decrease_factors or not increase_factors:
        raise ValueError("factor menus must be non-empty")

    def factory(vertex: int) -> BeepingNode:
        rng = spawn_rng(seed, 0xFAC0, vertex)
        return FeedbackNode(
            decrease_factor=rng.choice(list(decrease_factors)),
            increase_factor=rng.choice(list(increase_factors)),
            max_probability=max_probability,
        )

    return factory


def random_initial_probability_factory(
    seed: int,
    low: float = 0.05,
    high: float = 0.5,
    max_probability: float = 0.5,
) -> NodeFactory:
    """Each node starts at its own uniformly random probability in
    ``[low, high]`` (the "initial values may vary from node to node" claim).

    ``low`` must be strictly positive: the paper requires the initial
    probabilities to be bounded away from zero.
    """
    if not 0.0 < low <= high <= max_probability:
        raise ValueError(
            f"need 0 < low <= high <= max_probability, got "
            f"low={low}, high={high}, max={max_probability}"
        )

    def factory(vertex: int) -> BeepingNode:
        rng = spawn_rng(seed, 0x1417, vertex)
        return FeedbackNode(
            initial_probability=rng.uniform(low, high),
            max_probability=max_probability,
        )

    return factory


class _JitteredFactorNode(FeedbackNode):
    """A feedback node whose factors are re-drawn every round.

    Models the "factors may vary over time" robustness claim.  The node
    keeps its own RNG so the scheduler's random stream is untouched.
    """

    def __init__(
        self,
        seed: int,
        vertex: int,
        decrease_range,
        increase_range,
        max_probability: float,
    ) -> None:
        super().__init__(max_probability=max_probability)
        self._jitter_rng = spawn_rng(seed, 0x7177, vertex)
        self._decrease_range = decrease_range
        self._increase_range = increase_range

    def observe_first_exchange(self, did_beep: bool, heard_beep: bool) -> None:
        self._decrease_factor = self._jitter_rng.uniform(*self._decrease_range)
        self._increase_factor = self._jitter_rng.uniform(*self._increase_range)
        super().observe_first_exchange(did_beep, heard_beep)


def jittered_factor_factory(
    seed: int,
    decrease_range=(0.35, 0.65),
    increase_range=(1.5, 2.8),
    max_probability: float = 0.5,
) -> NodeFactory:
    """Factors re-drawn uniformly at every round, per node.

    ``decrease_range`` must stay inside (0, 1) and ``increase_range`` above 1.
    """
    lo, hi = decrease_range
    if not 0.0 < lo <= hi < 1.0:
        raise ValueError(f"decrease_range must lie in (0, 1), got {decrease_range}")
    lo, hi = increase_range
    if not 1.0 < lo <= hi:
        raise ValueError(f"increase_range must lie above 1, got {increase_range}")

    def factory(vertex: int) -> BeepingNode:
        return _JitteredFactorNode(
            seed, vertex, decrease_range, increase_range, max_probability
        )

    return factory
