"""Vectorised numpy engines for large-scale beeping simulations.

The reference runtime in :mod:`repro.beeping` is per-node and fully
instrumented — ideal for correctness, traces and the proof instrumentation,
but too slow for the paper's Figure 3 sweep (graphs up to n = 1000 with 100
trials per size).  This package provides three interchangeable fast
engines, all implementing the same two-exchange round semantics:

**Dense** (:class:`VectorizedSimulator`)
    One trial at a time; the one-bit OR observation is an n x n
    matrix-vector product.  Wins on small-to-medium graphs of any density
    and is the most direct translation of the reference semantics — the
    oracle the other engines are checked against.

**Sparse** (:class:`SparseSimulator`)
    One trial at a time over a CSR adjacency with ``add.reduceat``; a round
    costs O(n + m).  Wins on large sparse topologies (grids, geometric and
    sensor networks) where the dense engine's quadratic memory is waste —
    it comfortably reaches n = 50,000 at mean degree 8.

**Fleet** (:class:`FleetSimulator`)
    All ``trials`` independent runs of one graph in lockstep as
    ``(trials, n)`` tensors: one batched float32 GEMM (dense backend),
    one CSR ``reduceat`` pass (sparse backend), or one packed ``uint64``
    AND/OR pass (bitboard backend, :class:`BitboardKernel`) per round
    serves the whole batch, and finished trials drop out through an
    alive-mask (the bitboard backend compacts them away entirely).  Wins
    whenever many trials of one graph are needed — i.e. every figure
    benchmark; ``benchmarks/bench_fleet_speedup.py`` records the margin
    over the per-trial loop and ``benchmarks/bench_bitboard_fleet.py``
    the bitboard margin over the dense backend.

**Armada** (:class:`ArmadaSimulator`)
    The fleet lifted one dimension: every same-``n`` graph group of one
    experiment cell in a single ``(trials, graphs * n)`` block-diagonal
    batch — one batched GEMM or block-diagonal CSR ``reduceat`` pass per
    round for the *whole cell*.  Counter rng mode only;
    ``benchmarks/bench_counter_rng.py`` records the margin over the
    per-graph stream path.

**Message fleet** (:class:`MessageFleetSimulator` /
:class:`MessageArmadaSimulator`)
    The same lockstep fabric for the *message-passing* baselines (Luby's
    two variants, Métivier et al., local-minimum-id): a
    :class:`MessageRule` expresses each round as a masked
    neighbour-minimum priority contest, run on the dense full-adjacency
    sweep or the CSR ``minimum.reduceat`` pass, counter rng mode only.
    ``benchmarks/bench_message_fleet.py`` records the margin over the
    per-node loop; see :mod:`repro.engine.messages` and
    ``docs/algorithms.md``.

**Application fleet** (:class:`ApplicationFleetSimulator` /
:class:`ApplicationArmadaSimulator`)
    The MIS *applications* — iterated-peeling colouring, maximal matching
    on the array-built line graph, independent dominating sets and
    (α, α−1)-ruling sets on vectorised graph powers — as
    :class:`ApplicationRule` reductions on the same lockstep fabric,
    counter rng mode only.  They are conformance-locked bit for bit
    against the per-node reductions in :mod:`repro.applications` through
    the :class:`EngineMIS` adapter;
    ``benchmarks/bench_application_fleet.py`` records the margin over the
    per-node peeling loop; see :mod:`repro.engine.applications`.

Seed-derivation contract
------------------------
Every batch derives trial seeds from one master seed with the splitmix64
chain in :mod:`repro.beeping.rng`: trial ``t`` on graph ``g`` runs with
``derive_seed(master_seed, g, t)``, and
``derive_seed_block(master_seed, g, count=trials)`` produces the same
seeds as one vectorised block.  How a seed expands into per-round
uniforms is the ``rng_mode``: in ``"stream"`` (the default) each trial
draws one ``Generator.random(n)`` row per round from ``numpy``'s default
PCG64; in ``"counter"`` every uniform is a stateless
:func:`repro.beeping.rng.counter_uniforms` value, computed blockwise with
no generator objects at all.  Because all engines consume randomness
identically within a mode, **engine choice never changes results**:
dense, sparse, fleet and armada agree bit for bit on round counts, MIS
membership and beep counts under a shared seed and mode
(``tests/engine/test_conformance.py`` enforces this), and the per-node
reference engine agrees distributionally.  :func:`run_batch` picks the
fleet engine automatically for trial-parallel rules and falls back to the
per-trial loop (:func:`run_batch_loop`) for stateful ones.
"""

from repro.engine.rules import (
    FeedbackRule,
    GlobalScheduleRule,
    ProbabilityRule,
    SweepRule,
)
from repro.engine.simulator import EngineRun, VectorizedSimulator
from repro.engine.sparse import SparseSimulator
from repro.engine.bitboard import BitboardKernel
from repro.engine.fleet import ArmadaSimulator, FleetRun, FleetSimulator
from repro.engine.messages import (
    LocalMinimumRule,
    LubyPermutationRule,
    LubyProbabilityRule,
    MessageArmadaSimulator,
    MessageFleetRun,
    MessageFleetSimulator,
    MessageRule,
    MetivierRule,
)
from repro.engine.applications import (
    APPLICATION_RULES,
    ApplicationArmadaSimulator,
    ApplicationFleetRun,
    ApplicationFleetSimulator,
    ApplicationRule,
    ColoringRule,
    DominatingSetRule,
    EngineMIS,
    MatchingRule,
    RulingSetRule,
)
from repro.engine.batch import (
    BatchResult,
    run_batch,
    run_batch_loop,
)

__all__ = [
    "APPLICATION_RULES",
    "ApplicationArmadaSimulator",
    "ApplicationFleetRun",
    "ApplicationFleetSimulator",
    "ApplicationRule",
    "ArmadaSimulator",
    "BatchResult",
    "BitboardKernel",
    "ColoringRule",
    "DominatingSetRule",
    "EngineMIS",
    "EngineRun",
    "FeedbackRule",
    "FleetRun",
    "FleetSimulator",
    "GlobalScheduleRule",
    "LocalMinimumRule",
    "MatchingRule",
    "LubyPermutationRule",
    "LubyProbabilityRule",
    "MessageArmadaSimulator",
    "MessageFleetRun",
    "MessageFleetSimulator",
    "MessageRule",
    "MetivierRule",
    "ProbabilityRule",
    "RulingSetRule",
    "SparseSimulator",
    "SweepRule",
    "VectorizedSimulator",
    "run_batch",
    "run_batch_loop",
]
