"""Vectorised numpy engine for large-scale beeping simulations.

The reference runtime in :mod:`repro.beeping` is per-node and fully
instrumented — ideal for correctness, traces and the proof instrumentation,
but too slow for the paper's Figure 3 sweep (graphs up to n = 1000 with 100
trials per size).  This engine re-implements the same round semantics with
numpy boolean linear algebra: one matrix-vector product per round instead
of per-node set scans.

The two engines are cross-validated in ``tests/engine/`` — exact agreement
on degenerate graphs and distributional agreement (round counts, beep
counts) on random graphs.
"""

from repro.engine.rules import (
    FeedbackRule,
    GlobalScheduleRule,
    ProbabilityRule,
    SweepRule,
)
from repro.engine.simulator import EngineRun, VectorizedSimulator
from repro.engine.sparse import SparseSimulator
from repro.engine.batch import BatchResult, run_batch

__all__ = [
    "BatchResult",
    "EngineRun",
    "FeedbackRule",
    "GlobalScheduleRule",
    "ProbabilityRule",
    "SparseSimulator",
    "SweepRule",
    "VectorizedSimulator",
    "run_batch",
]
