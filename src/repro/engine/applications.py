"""Application kernels: the MIS reductions on the fleet fabric.

The paper's conclusion sells MIS as a building block: colouring, maximal
matching, dominating sets and ruling sets all reduce to it.  The per-node
reductions in :mod:`repro.applications` realise those reductions one
Python set operation at a time; this module lifts the whole family onto
the lockstep tensor fabric the beeping and message-passing engines
already share.  An :class:`ApplicationRule` describes one reduction —
which *host graph* the inner MIS runs on and whether layers are peeled —
and a shared outer-loop driver advances a whole ``(trials, n)`` batch
(``(slots, n)`` in the armada form) of complete reductions at once:

- :class:`ColoringRule` — iterated MIS peeling; every layer is one
  lockstep feedback-MIS pass over the still-uncoloured lanes of every
  trial simultaneously.
- :class:`MatchingRule` — one MIS on the line graph ``L(G)``, which is
  built with array primitives (lexsorted incidence lists, no per-vertex
  Python loops) and equals :func:`repro.applications.matching.line_graph`
  exactly.
- :class:`DominatingSetRule` — one MIS of ``G`` (every MIS dominates).
- :class:`RulingSetRule` — one MIS on the (α−1)-th graph power, computed
  by repeated boolean GEMM instead of per-source BFS, giving an
  (α, α−1)-ruling set.

Randomness and the conformance lock
-----------------------------------
All draws come from the counter fabric.  Layer ``L`` of trial seed ``s``
runs the inner feedback MIS on the derived seed
``counter_state(s, L, DRAW_LAYER)`` — its own disjoint domain, so layers
are mutually independent and single-layer reductions consume exactly the
layer-0 seed.  Within a layer, the still-remaining lanes of each trial
are *rank-compacted*: remaining vertex ``v`` draws the uniform of lane
``rank(v)`` (its index in the induced subgraph the per-node reduction
would build), via :func:`repro.beeping.rng.counter_uniforms_at`.  Since
``mis_coloring`` peels induced subgraphs in ascending vertex order, the
lane mapping matches the reference relabelling exactly, and the inner
round loop reproduces :class:`~repro.engine.fleet.FleetSimulator`'s
counter-mode feedback semantics verbatim.  Consequence: feeding the
*unchanged* per-node reductions an :class:`EngineMIS` adapter (which runs
each ``algorithm.run`` call as a one-trial counter fleet on the matching
layer seed) reproduces the kernels' colourings, matchings and chosen sets
**bit for bit** — the conformance wall ``tests/engine/test_applications.py``
enforces, alongside the dense/sparse, batch/per-trial and fleet/armada
bit-equality contracts of the other engines.

The inner MIS is always the paper's feedback rule
(:class:`~repro.engine.rules.FeedbackRule`), matching the per-node
reductions' :class:`~repro.algorithms.feedback.FeedbackMIS` default.

Accounting: ``beeps_by_node`` counts every beep of every layer on the
host graph (for matching that is the line graph — the radio links); a
beep is one 1-bit message per incident host channel, mirroring the
beeping engines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.applications.coloring import verify_coloring
from repro.applications.dominating import verify_dominating_set
from repro.applications.matching import verify_maximal_matching
from repro.applications.ruling_sets import verify_ruling_set
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LAYER,
    counter_state,
    counter_uniforms_at,
    seed_array,
)
from repro.beeping.events import Trace
from repro.engine.fleet import FleetSimulator
from repro.engine.messages import _MessageKernel, _resolve_backend
from repro.engine.rules import FeedbackRule
from repro.engine.simulator import DEFAULT_MAX_ROUNDS
from repro.engine.sparse import build_csr
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes


def line_graph_arrays(
    graph: Graph,
) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """The line graph ``L(G)`` built with array primitives.

    Returns ``(line_graph, edge_u, edge_v)`` where line-graph vertex
    ``i`` is the edge ``(edge_u[i], edge_v[i])`` of ``G`` — the same
    canonical ``u < v`` lexicographic order :meth:`Graph.edges` yields,
    so the indexing agrees with
    :func:`repro.applications.matching.line_graph` (and the two produce
    equal graphs; the conformance suite pins it).

    Construction: the incidence list ``(vertex, edge)`` is lexsorted by
    vertex; within each vertex's group, every pair of incident edges is
    one line-graph edge, enumerated by repeating each group element once
    per earlier element — no per-vertex Python loop.
    """
    columns, starts, _ = build_csr(graph)
    n = graph.num_vertices
    degrees = np.diff(np.append(starts, columns.size))
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    once = rows < columns
    edge_u = rows[once]
    edge_v = columns[once].astype(np.int64)
    m = int(edge_u.size)
    if m == 0:
        return Graph(0), edge_u, edge_v
    endpoint_vertex = np.concatenate([edge_u, edge_v])
    endpoint_edge = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
    order = np.lexsort((endpoint_edge, endpoint_vertex))
    grouped_vertex = endpoint_vertex[order]
    grouped_edge = endpoint_edge[order]
    first = np.empty(grouped_vertex.size, dtype=bool)
    first[0] = True
    np.not_equal(grouped_vertex[1:], grouped_vertex[:-1], out=first[1:])
    indices = np.arange(grouped_vertex.size, dtype=np.int64)
    group_start = np.maximum.accumulate(np.where(first, indices, 0))
    position = indices - group_start
    total = int(position.sum())
    # Element at position t of its group pairs with the t earlier group
    # members; grouped_edge is ascending within a group (the lexsort's
    # secondary key), so pairs come out canonical (lo < hi).
    pair_hi = np.repeat(grouped_edge, position)
    base = np.repeat(group_start, position)
    offset = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(position) - position, position
    )
    pair_lo = grouped_edge[base + offset]
    line = Graph(m, zip(pair_lo.tolist(), pair_hi.tolist()))
    return line, edge_u, edge_v


def graph_power_matrix(graph: Graph, k: int) -> Graph:
    """The k-th graph power via repeated boolean GEMM.

    Vectorised replacement for the per-source BFS of
    :func:`repro.applications.ruling_sets.graph_power` (equal results;
    the conformance suite pins it): ``reach`` starts as the adjacency
    and absorbs one extra hop per float32 matmul, so after ``k - 1``
    products it holds exactly the distance-``<= k`` pairs.  Quadratic
    memory, like the dense engines — fine at simulated sizes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    adjacency = graph.adjacency_matrix()
    reach = adjacency.copy()
    step = adjacency.astype(np.float32)
    for _ in range(k - 1):
        reach |= (reach.astype(np.float32) @ step) > 0.0
    np.fill_diagonal(reach, False)
    upper_u, upper_v = np.nonzero(np.triu(reach, 1))
    return Graph(n, zip(upper_u.tolist(), upper_v.tolist()))


class ApplicationRule(ABC):
    """One MIS application as a reduction the lockstep driver can run.

    A rule is pure topology policy — it never touches the round loop.  It
    names the *host graph* the inner feedback MIS beeps on (identity for
    colouring and dominating sets, ``L(G)`` for matching, the graph power
    for ruling sets), says whether the driver peels layers
    (:attr:`peel`), verifies one trial's output against the
    applications-layer invariants, and sizes the output for accounting.
    """

    #: Application kernels always batch (counter draws are stateless).
    trial_parallel = True

    #: True for iterated-MIS reductions (colouring): after each layer the
    #: driver restricts to the still-unselected lanes and runs another.
    peel = False

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier (the sweep/compare ``algorithm`` value)."""

    def host(self, graph: Graph) -> Graph:
        """The graph the inner MIS actually runs on (default: ``graph``)."""
        return graph

    def host_size(self, graph: Graph) -> int:
        """``host(graph).num_vertices`` without building the host.

        Lets dispatchers decide armada eligibility (equal host sizes)
        before paying for host construction.
        """
        return graph.num_vertices

    @abstractmethod
    def verify(
        self, graph: Graph, host: Graph, run: "ApplicationFleetRun",
        trial: int,
    ) -> None:
        """Assert one trial's output satisfies the application invariants."""

    @abstractmethod
    def output_size(self, run: "ApplicationFleetRun", trial: int) -> int:
        """The application's headline size (colours, matched edges, ...)."""


class ColoringRule(ApplicationRule):
    """(Δ+1)-colouring by iterated MIS peeling, all trials in lockstep."""

    peel = True

    @property
    def name(self) -> str:
        return "mis-coloring"

    def verify(self, graph, host, run, trial):
        colors = run.colors_list(trial)
        count = verify_coloring(graph, colors)
        if count != run.num_colors(trial):
            raise AssertionError(
                f"verified colour count {count} != {run.num_colors(trial)} "
                "peeling layers"
            )
        if count > graph.max_degree() + 1:
            raise AssertionError(
                f"MIS peeling used {count} colours, more than "
                f"max_degree + 1 = {graph.max_degree() + 1}"
            )

    def output_size(self, run, trial):
        return run.num_colors(trial)


class DominatingSetRule(ApplicationRule):
    """Independent dominating sets: one MIS of ``G`` per trial."""

    @property
    def name(self) -> str:
        return "mis-dominating"

    def verify(self, graph, host, run, trial):
        chosen = run.chosen_set(trial)
        verify_mis(graph, chosen)
        verify_dominating_set(graph, chosen)

    def output_size(self, run, trial):
        return len(run.chosen_set(trial))


class MatchingRule(ApplicationRule):
    """Maximal matching: one MIS of the array-built line graph ``L(G)``."""

    @property
    def name(self) -> str:
        return "mis-matching"

    def host(self, graph: Graph) -> Graph:
        return line_graph_arrays(graph)[0]

    def host_size(self, graph: Graph) -> int:
        return graph.num_edges

    def matching_edges(
        self, graph: Graph, run: "ApplicationFleetRun", trial: int
    ) -> Set[Tuple[int, int]]:
        """One trial's chosen line-graph vertices decoded back to edges."""
        edges = list(graph.edges())
        return {edges[i] for i in run.chosen_set(trial)}

    def verify(self, graph, host, run, trial):
        verify_maximal_matching(
            graph, self.matching_edges(graph, run, trial)
        )

    def output_size(self, run, trial):
        return len(run.chosen_set(trial))


class RulingSetRule(ApplicationRule):
    """(α, α−1)-ruling sets: one MIS of the (α−1)-th graph power."""

    def __init__(self, alpha: int = 3) -> None:
        if alpha < 2:
            raise ValueError(f"alpha must be >= 2, got {alpha}")
        self._alpha = alpha

    @property
    def alpha(self) -> int:
        """The pairwise-distance parameter α."""
        return self._alpha

    @property
    def name(self) -> str:
        return f"mis-ruling-{self._alpha}"

    def host(self, graph: Graph) -> Graph:
        if self._alpha == 2:
            return graph
        return graph_power_matrix(graph, self._alpha - 1)

    def verify(self, graph, host, run, trial):
        verify_ruling_set(
            graph, run.chosen_set(trial), self._alpha, self._alpha - 1
        )

    def output_size(self, run, trial):
        return len(run.chosen_set(trial))


def check_application_run(
    rule: "ApplicationRule", faults: FaultModel, rng_mode: str
) -> None:
    """The shared entry-point guard: counter fabric only, no faults.

    The application siblings of
    :func:`repro.engine.messages.check_message_run`; every driver that
    can receive an application rule funnels through this one check so
    the restriction — and its error wording — cannot drift.
    """
    if rng_mode != "counter":
        raise ValueError(
            f"application rule {rule.name!r} runs the counter fabric only; "
            "pass rng_mode='counter'"
        )
    if not faults.is_fault_free:
        raise ValueError(
            f"application rule {rule.name!r} does not support fault "
            "injection"
        )


#: The application kernels the fleet fabric can run, by sweep-axis name.
APPLICATION_RULES = {
    "mis-coloring": ColoringRule,
    "mis-matching": MatchingRule,
    "mis-dominating": DominatingSetRule,
    "mis-ruling-3": RulingSetRule,
}


@dataclass
class ApplicationFleetRun:
    """Per-trial outcomes of one application-kernel simulation.

    Row ``t`` of every array is trial ``t``; ``num_vertices`` (and the
    lane axis) refer to the *host* graph the MIS layers beeped on.
    ``colors[t, v]`` is the layer at which host vertex ``v`` joined its
    MIS (the colour for peeling rules, necessarily 0 for single-layer
    rules), or ``-1`` if it never joined — impossible after a completed
    layer of a single-shot rule, but kept uniform with peeling.
    """

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    layers: np.ndarray
    colors: np.ndarray
    beeps_by_node: np.ndarray

    @property
    def membership(self) -> np.ndarray:
        """``(trials, n)`` bool: host vertex joined some layer's MIS."""
        return self.colors >= 0

    @property
    def mean_beeps(self) -> np.ndarray:
        """Per-trial mean beeps per host vertex."""
        if self.num_vertices == 0:
            return np.zeros(self.trials, dtype=np.float64)
        return self.beeps_by_node.sum(axis=1) / float(self.num_vertices)

    def num_colors(self, trial: int) -> int:
        """Colour count of one trial (= layers executed for that trial)."""
        return int(self.layers[trial])

    def colors_list(self, trial: int) -> List[int]:
        """One trial's colours as the applications-layer list format."""
        return [int(c) for c in self.colors[trial]]

    def chosen_set(self, trial: int) -> Set[int]:
        """The layer-0 MIS of one trial — the chosen set of the
        single-layer reductions (and the first colour class of peeling)."""
        return {int(v) for v in np.flatnonzero(self.colors[trial] == 0)}


def _run_application_lockstep(
    rule: ApplicationRule,
    seeds: np.ndarray,
    blocks: Sequence[Tuple[_MessageKernel, slice]],
    num_vertices: int,
    max_rounds: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The shared outer (layer) and inner (round) loops over the batch.

    ``blocks`` assigns contiguous row ranges to per-host-graph kernels
    (one block for a fleet run, one per graph for an armada batch).
    Every layer reruns the counter-mode feedback-MIS round loop of
    :class:`~repro.engine.fleet.FleetSimulator` with two twists that keep
    it bit-compatible with the per-node reduction over induced
    subgraphs:

    - the layer's seeds are ``counter_state(trial_seed, layer,
      DRAW_LAYER)`` — exactly what :class:`EngineMIS` hands the lone
      fleet run of the same layer;
    - uniforms are drawn *rank-compacted*: remaining vertex ``v`` reads
      lane ``rank(v)`` (its index among the trial's remaining vertices,
      ascending — the reference's subgraph relabelling), so the draw at
      ``v`` equals the subgraph fleet's draw at its relabelled lane bit
      for bit.

    The feedback rule's probabilities are constant per round-0 lane and
    updated elementwise, so the remaining lanes evolve exactly as the
    compacted subgraph batch would; the neighbour-OR restricted to
    remaining lanes equals the induced subgraph's OR because retired
    lanes never beep.  ``max_rounds`` bounds each layer separately, the
    same budget every per-node ``algorithm.run`` call gets.  Returns
    ``(rounds, layers, colors, beeps)``.
    """
    if not isinstance(rule, ApplicationRule):
        raise TypeError(
            f"need an ApplicationRule, got {type(rule).__name__!r}"
        )
    mis_rule = FeedbackRule()
    total = int(seeds.size)
    n = num_vertices
    colors = np.full((total, n), -1, dtype=np.int64)
    beeps = np.zeros((total, n), dtype=np.int64)
    rounds = np.zeros(total, dtype=np.int64)
    layers = np.zeros(total, dtype=np.int64)
    remaining = np.ones((total, n), dtype=bool)
    heard = np.zeros((total, n), dtype=bool)
    neighbor_joined = np.zeros((total, n), dtype=bool)
    uniforms = np.empty((total, n), dtype=np.float64)
    layer = 0
    while True:
        live = remaining.any(axis=1)
        if not live.any():
            break
        if layer > n:
            raise RuntimeError(
                "application peeling exceeded the vertex count "
                f"({n} layers) — the inner MIS cannot be maximal"
            )
        layers += live
        layer_seeds = counter_state(seeds, layer, DRAW_LAYER)
        # rank[t, v]: v's lane in the induced-subgraph fleet the per-node
        # reduction would run for trial t this layer (garbage off-mask).
        rank = np.cumsum(remaining, axis=1, dtype=np.int64) - 1
        active = remaining.copy()
        probabilities = np.broadcast_to(
            mis_rule.initial(n), (total, n)
        ).astype(np.float64, copy=True)
        alive = live.copy()
        round_index = 0
        while alive.any():
            if round_index >= max_rounds:
                raise RuntimeError(
                    f"application simulation exceeded {max_rounds} rounds"
                )
            state = counter_state(layer_seeds, round_index, DRAW_BEEP)
            rows = np.flatnonzero(alive)
            uniforms[rows] = counter_uniforms_at(
                state[rows, np.newaxis], rank[rows]
            )
            beep = active & (uniforms < probabilities)
            # Per-block reductions touch only the block's live rows;
            # finished rows keep stale values, masked by all-False active.
            heard[:] = False
            live_blocks = []
            for kernel, block in blocks:
                block_rows = np.flatnonzero(alive[block])
                if block_rows.size == 0:
                    continue
                block_rows += block.start
                live_blocks.append((kernel, block_rows))
                heard[block_rows] = kernel.neighbor_or(beep[block_rows])
            probabilities = mis_rule.update(
                probabilities, heard, active, round_index
            )
            joined = beep & ~heard
            colors[joined] = layer
            neighbor_joined[:] = False
            for kernel, block_rows in live_blocks:
                neighbor_joined[block_rows] = kernel.neighbor_or(
                    joined[block_rows]
                )
            beeps += beep
            active &= ~(joined | neighbor_joined)
            still_alive = active.any(axis=1)
            rounds[alive & ~still_alive] += round_index + 1
            alive = still_alive
            round_index += 1
        if not rule.peel:
            break
        remaining &= colors < 0
        layer += 1
    if probes.enabled():
        probes.count("engine.application.runs")
        probes.count("engine.application.trials", total)
        probes.count("engine.application.rounds", int(rounds.max(initial=0)))
        probes.count("engine.application.layers", int(layers.max(initial=0)))
        if blocks:
            probes.count(f"engine.backend.{blocks[0][0]._backend}")
    return rounds, layers, colors, beeps


class ApplicationFleetSimulator:
    """All trials of one application rule on one graph, in lockstep.

    The application sibling of
    :class:`~repro.engine.fleet.FleetSimulator`: builds the rule's host
    graph once, then ``run_fleet`` advances a ``(trials, n_host)`` batch
    of complete reductions.  Counter rng mode only; trial ``t`` is a pure
    function of ``seeds[t]``, so any sub-batch equals the matching rows
    of the full batch bit for bit.
    """

    def __init__(
        self,
        graph: Graph,
        rule: ApplicationRule,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if not isinstance(rule, ApplicationRule):
            raise TypeError(
                f"need an ApplicationRule, got {type(rule).__name__!r}"
            )
        self._graph = graph
        self._rule = rule
        self._host = rule.host(graph)
        self._max_rounds = max_rounds
        self._backend = _resolve_backend(
            backend, 1, self._host.num_vertices
        )
        self._kernel = _MessageKernel(self._host, self._backend)

    @property
    def graph(self) -> Graph:
        """The input graph the application is computed for."""
        return self._graph

    @property
    def host(self) -> Graph:
        """The host graph the inner MIS layers beep on."""
        return self._host

    @property
    def rule(self) -> ApplicationRule:
        """The application rule."""
        return self._rule

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def run_fleet(
        self, seeds: Sequence[int], validate: bool = False
    ) -> ApplicationFleetRun:
        """Run one complete reduction per seed, all in lockstep."""
        seed_row = seed_array(seeds)
        if seed_row.size < 1:
            raise ValueError("need at least one seed")
        rounds, layers, colors, beeps = _run_application_lockstep(
            self._rule,
            seed_row,
            [(self._kernel, slice(0, int(seed_row.size)))],
            self._host.num_vertices,
            self._max_rounds,
        )
        run = ApplicationFleetRun(
            rule_name=self._rule.name,
            num_vertices=self._host.num_vertices,
            trials=int(seed_row.size),
            rounds=rounds,
            layers=layers,
            colors=colors,
            beeps_by_node=beeps,
        )
        if validate:
            for trial in range(run.trials):
                self._rule.verify(self._graph, self._host, run, trial)
        return run


class ApplicationArmadaSimulator:
    """One lockstep layer/round loop for several same-host-size graphs.

    The application sibling of
    :class:`~repro.engine.fleet.ArmadaSimulator`: every ``(graph,
    trial)`` pair becomes one slot row of a ``(slots, n_host)`` batch
    (rows grouped per graph), the layer loop runs once for the whole
    cell, and the reductions stay block-diagonal — each host graph's
    kernel serves its own row block — so slot ``(g, t)`` is bit-identical
    to trial ``t`` of
    ``ApplicationFleetSimulator(graphs[g], rule).run_fleet(seed_rows[g])``.
    The *host* vertex counts must match (for matching: equal edge
    counts), not the input ones.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        rule: ApplicationRule,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if not graphs:
            raise ValueError("need at least one graph")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if not isinstance(rule, ApplicationRule):
            raise TypeError(
                f"need an ApplicationRule, got {type(rule).__name__!r}"
            )
        self._graphs = list(graphs)
        self._rule = rule
        self._hosts = [rule.host(graph) for graph in self._graphs]
        n = self._hosts[0].num_vertices
        for host in self._hosts:
            if host.num_vertices != n:
                raise ValueError(
                    "armada host graphs must share one vertex count, got "
                    f"{n} and {host.num_vertices}"
                )
        self._n = n
        self._max_rounds = max_rounds
        self._backend = _resolve_backend(backend, len(graphs), n)
        self._kernels = [
            _MessageKernel(host, self._backend) for host in self._hosts
        ]

    @property
    def graphs(self) -> Sequence[Graph]:
        """The stacked input graphs, in slot order."""
        return tuple(self._graphs)

    @property
    def hosts(self) -> Sequence[Graph]:
        """The per-graph host graphs, in slot order."""
        return tuple(self._hosts)

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def run_armada(
        self,
        seed_rows: Sequence[Sequence[int]],
        validate: bool = False,
    ) -> List[ApplicationFleetRun]:
        """Run every graph's trial group in one lockstep batch.

        ``seed_rows[g]`` holds graph ``g``'s trial seeds (rows may have
        different lengths).  Returns one :class:`ApplicationFleetRun`
        per graph.
        """
        if len(seed_rows) != len(self._graphs):
            raise ValueError(
                f"need one seed row per graph, got {len(seed_rows)} rows "
                f"for {len(self._graphs)} graphs"
            )
        groups = [seed_array(row) for row in seed_rows]
        sizes = [int(group.size) for group in groups]
        if min(sizes) < 1:
            raise ValueError("every graph needs at least one seed")
        seeds = np.concatenate(groups)
        blocks = []
        offset = 0
        for kernel, size in zip(self._kernels, sizes):
            blocks.append((kernel, slice(offset, offset + size)))
            offset += size
        rounds, layers, colors, beeps = _run_application_lockstep(
            self._rule, seeds, blocks, self._n, self._max_rounds
        )
        runs: List[ApplicationFleetRun] = []
        for (kernel, block), size, graph, host in zip(
            blocks, sizes, self._graphs, self._hosts
        ):
            run = ApplicationFleetRun(
                rule_name=self._rule.name,
                num_vertices=self._n,
                trials=size,
                rounds=rounds[block].copy(),
                layers=layers[block].copy(),
                colors=colors[block].copy(),
                beeps_by_node=beeps[block].copy(),
            )
            if validate:
                for trial in range(size):
                    self._rule.verify(graph, host, run, trial)
            runs.append(run)
        return runs


class EngineMIS(MISAlgorithm):
    """The conformance bridge: per-node reductions on engine randomness.

    Call ``i`` of :meth:`run` executes a one-trial counter-mode
    :class:`~repro.engine.fleet.FleetSimulator` feedback run seeded with
    ``counter_state(trial_seed, i, DRAW_LAYER)`` — exactly the seed the
    vectorised kernels give layer ``i`` of the same trial.  Feeding this
    adapter to the *unchanged* per-node reductions in
    :mod:`repro.applications` (``mis_coloring``, ``mis_matching``,
    ``mis_dominating_set``, ``ruling_set``) therefore reproduces the
    kernels' outputs bit for bit, which is what makes them exact
    references rather than law-level ones.

    Deliberately stateful across calls (the call counter *is* the layer
    index), unlike the registry algorithms: one instance serves exactly
    one trial of one reduction.  The ``rng`` argument is ignored — all
    randomness is the counter fabric's.
    """

    def __init__(
        self, trial_seed: int, max_rounds: int = DEFAULT_MAX_ROUNDS
    ) -> None:
        self._trial_seed = int(trial_seed)
        self._max_rounds = max_rounds
        self._calls = 0

    @property
    def name(self) -> str:
        return "engine-feedback"

    @property
    def calls(self) -> int:
        """How many layers this adapter has run so far."""
        return self._calls

    def run(
        self,
        graph: Graph,
        rng,
        trace: Optional[Trace] = None,
        faults: FaultModel = NO_FAULTS,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> MISRun:
        if not faults.is_fault_free:
            raise ValueError("EngineMIS does not support fault injection")
        layer_seed = int(
            counter_state(self._trial_seed, self._calls, DRAW_LAYER)
        )
        self._calls += 1
        run = FleetSimulator(
            graph, max_rounds=min(max_rounds, self._max_rounds)
        ).run_fleet(FeedbackRule(), [layer_seed], rng_mode="counter")
        beeps = run.beeps_by_node[0]
        degrees = np.array(graph.degrees(), dtype=np.int64)
        channel_bits = int((beeps * degrees).sum())
        return MISRun(
            algorithm=self.name,
            graph=graph,
            mis=run.mis_set(0),
            rounds=int(run.rounds[0]),
            beeps_by_node=[int(b) for b in beeps],
            messages=channel_bits,
            bits=channel_bits,
        )
