"""Multi-trial batch driver for the vectorised engines.

This is what the figure benchmarks call: for one graph (or one graph
generator) run ``trials`` independent simulations and return the round and
beep statistics as arrays.  Seeds are derived with the same splitmix
discipline as the reference engine, so a batch is reproducible from its
master seed alone.

Two execution strategies produce bit-identical results:

- ``engine="fleet"`` (the default through ``"auto"``): all trials advance
  in lockstep as ``(trials, n)`` tensors on the
  :class:`~repro.engine.fleet.FleetSimulator` — one batched matmul or CSR
  ``reduceat`` pass per round for the whole batch.
- ``engine="loop"``: the original per-trial reference path, one
  :class:`~repro.engine.simulator.VectorizedSimulator` run per trial.  It
  is kept both as the fallback for rules that are not trial-parallel
  (stateful rules) and as the oracle the conformance suite checks the
  fleet against.

Trial ``t`` of either strategy is seeded with
``derive_seed(master_seed, graph_index, trial)``, so the two agree bit for
bit and results never depend on which strategy ran.  Both accept a
``faults`` model (beep loss, spurious beeps, crashes — see
:mod:`repro.beeping.faults`); the engines share one fault draw order, so
the bit-equality holds for fault-injected batches too.  Both also accept
an ``rng_mode`` (``"stream"``, the golden-trace-pinned default, or the
stateless ``"counter"`` discipline — see :mod:`repro.beeping.rng`); the
fleet/loop bit-equality holds within each mode.

Message-passing rules (:class:`~repro.engine.messages.MessageRule` — the
Luby variants, Métivier, local-minimum-id) batch through the same two
entry points: ``engine="fleet"`` runs one lockstep
:class:`~repro.engine.messages.MessageFleetSimulator` batch and
``engine="loop"`` the seed-by-seed oracle, bit-identical to each other.
They are counter-only (``rng_mode="counter"`` required) and reject fault
models — the per-node message baselines ignore faults, so a silently
dropped model would misreport robustness results.

Application rules (:class:`~repro.engine.applications.ApplicationRule` —
MIS-peeling colouring, matching, dominating and ruling sets) batch the
same way: ``engine="fleet"`` runs one lockstep
:class:`~repro.engine.applications.ApplicationFleetSimulator` batch over
complete reductions, ``engine="loop"`` the seed-by-seed oracle, and the
two are bit-identical.  Like the message rules they are counter-only and
fault-free; ``rounds`` counts beeping rounds summed over all MIS layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import derive_seed, derive_seed_block
from repro.engine.applications import (
    ApplicationFleetSimulator,
    ApplicationRule,
    check_application_run,
)
from repro.engine.fleet import FleetSimulator
from repro.engine.messages import (
    MessageFleetSimulator,
    MessageRule,
    check_message_run,
)
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.graph import Graph

BATCH_ENGINES = ("auto", "fleet", "loop")


def _run_message_batch(
    graph: Graph,
    rule: MessageRule,
    trials: int,
    master_seed: int,
    graph_index: int,
    validate: bool,
    max_rounds: int,
    per_trial: bool,
) -> BatchResult:
    """Both batch strategies for a message rule, sharing one simulator.

    ``per_trial=False`` runs all trials as one lockstep batch;
    ``per_trial=True`` loops seed by seed — the "loop" oracle the
    conformance suite compares the batch against.  Counter draws are
    pure per-seed functions, so the two agree bit for bit.  Message
    algorithms do not beep; ``mean_beeps`` is all zeros.
    """
    seeds = derive_seed_block(master_seed, graph_index, count=trials)
    simulator = MessageFleetSimulator(graph, max_rounds=max_rounds)
    if per_trial:
        rounds = np.zeros(trials, dtype=np.int64)
        for trial in range(trials):
            run = simulator.run_fleet(
                rule, seeds[trial : trial + 1], validate=validate
            )
            rounds[trial] = run.rounds[0]
    else:
        rounds = simulator.run_fleet(rule, seeds, validate=validate).rounds
    return BatchResult(
        rule_name=rule.name,
        num_vertices=graph.num_vertices,
        trials=trials,
        rounds=rounds,
        mean_beeps=np.zeros(trials, dtype=np.float64),
    )


def _run_application_batch(
    graph: Graph,
    rule: ApplicationRule,
    trials: int,
    master_seed: int,
    graph_index: int,
    validate: bool,
    max_rounds: int,
    per_trial: bool,
) -> BatchResult:
    """Both batch strategies for an application rule, one simulator.

    Mirrors :func:`_run_message_batch`: ``per_trial=False`` advances all
    reductions in one lockstep batch, ``per_trial=True`` loops seed by
    seed, and counter draws make the two bit-identical.  ``rounds`` sums
    beeping rounds over every MIS layer of the reduction; ``mean_beeps``
    counts beeps per *host* vertex (line-graph vertices for matching).
    """
    seeds = derive_seed_block(master_seed, graph_index, count=trials)
    simulator = ApplicationFleetSimulator(graph, rule, max_rounds=max_rounds)
    if per_trial:
        rounds = np.zeros(trials, dtype=np.int64)
        mean_beeps = np.zeros(trials, dtype=np.float64)
        for trial in range(trials):
            run = simulator.run_fleet(
                seeds[trial : trial + 1], validate=validate
            )
            rounds[trial] = run.rounds[0]
            mean_beeps[trial] = run.mean_beeps[0]
    else:
        run = simulator.run_fleet(seeds, validate=validate)
        rounds = run.rounds
        mean_beeps = run.mean_beeps
    return BatchResult(
        rule_name=rule.name,
        num_vertices=graph.num_vertices,
        trials=trials,
        rounds=rounds,
        mean_beeps=mean_beeps,
    )


@dataclass
class BatchResult:
    """Statistics over one batch of independent trials."""

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    mean_beeps: np.ndarray

    @property
    def mean_rounds(self) -> float:
        """Mean round count over the batch."""
        return float(self.rounds.mean())

    @property
    def std_rounds(self) -> float:
        """Sample standard deviation of the round count."""
        if self.trials < 2:
            return 0.0
        return float(self.rounds.std(ddof=1))

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean (over trials) of the per-trial mean beeps per node."""
        return float(self.mean_beeps.mean())

    @property
    def std_beeps_per_node(self) -> float:
        """Sample standard deviation of per-trial mean beeps per node."""
        if self.trials < 2:
            return 0.0
        return float(self.mean_beeps.std(ddof=1))


def run_batch_loop(
    graph: Graph,
    rule_factory: Callable[[], ProbabilityRule],
    trials: int,
    master_seed: int,
    graph_index: int = 0,
    validate: bool = False,
    max_rounds: int = 100_000,
    faults: FaultModel = NO_FAULTS,
    rng_mode: str = "stream",
) -> BatchResult:
    """The per-trial reference path: one simulator run per trial.

    ``rule_factory`` is called once per trial so stateful rules start
    fresh.  This is the oracle :func:`run_batch`'s fleet path is
    cross-validated against (mode for mode).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    probe = rule_factory()
    if isinstance(probe, MessageRule):
        check_message_run(probe, faults, rng_mode)
        return _run_message_batch(
            graph, probe, trials, master_seed, graph_index,
            validate, max_rounds, per_trial=True,
        )
    if isinstance(probe, ApplicationRule):
        check_application_run(probe, faults, rng_mode)
        return _run_application_batch(
            graph, probe, trials, master_seed, graph_index,
            validate, max_rounds, per_trial=True,
        )
    simulator = VectorizedSimulator(graph, max_rounds=max_rounds)
    rounds = np.zeros(trials, dtype=np.int64)
    mean_beeps = np.zeros(trials, dtype=np.float64)
    rule_name = ""
    for trial in range(trials):
        rule = rule_factory()
        rule_name = rule.name
        seed = derive_seed(master_seed, graph_index, trial)
        run = simulator.run(
            rule, seed, validate=validate, faults=faults, rng_mode=rng_mode
        )
        rounds[trial] = run.rounds
        mean_beeps[trial] = run.mean_beeps_per_node
    return BatchResult(
        rule_name=rule_name,
        num_vertices=graph.num_vertices,
        trials=trials,
        rounds=rounds,
        mean_beeps=mean_beeps,
    )


def run_batch(
    graph: Graph,
    rule_factory: Callable[[], ProbabilityRule],
    trials: int,
    master_seed: int,
    graph_index: int = 0,
    validate: bool = False,
    max_rounds: int = 100_000,
    engine: str = "auto",
    faults: FaultModel = NO_FAULTS,
    rng_mode: str = "stream",
    backend: str = "auto",
) -> BatchResult:
    """Run ``trials`` independent simulations of one rule on one graph.

    ``graph_index`` namespaces the seed derivation when one experiment uses
    several graphs under the same master seed.  ``engine`` picks the
    execution strategy (``"auto"``, ``"fleet"`` or ``"loop"``; see module
    docstring) without affecting results; neither does ``faults`` depend
    on it — both strategies inject the same vectorised fault model.
    ``backend`` selects the fleet path's neighbour-reduction kernel
    (``"auto"``, ``"dense"``, ``"sparse"`` or ``"bitboard"``;
    :class:`~repro.engine.fleet.FleetSimulator`) — pure execution
    strategy again, bit-identical results.  ``rng_mode`` *does* affect
    results (the two disciplines draw different uniforms) but never the
    fleet/loop agreement, which holds per mode.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if engine not in BATCH_ENGINES:
        raise ValueError(f"engine must be one of {BATCH_ENGINES}, got {engine!r}")
    rule = None
    if engine == "auto":
        # Read the flag off the factory when it is the rule class itself;
        # only opaque factories (lambdas) cost one probe instance, which
        # the fleet path then reuses.
        parallel = getattr(rule_factory, "trial_parallel", None)
        if parallel is None:
            rule = rule_factory()
            parallel = getattr(rule, "trial_parallel", False)
        engine = "fleet" if parallel else "loop"
    if engine == "loop":
        return run_batch_loop(
            graph,
            rule_factory,
            trials,
            master_seed,
            graph_index=graph_index,
            validate=validate,
            max_rounds=max_rounds,
            faults=faults,
            rng_mode=rng_mode,
        )
    if rule is None:
        rule = rule_factory()
    if isinstance(rule, MessageRule):
        check_message_run(rule, faults, rng_mode)
        return _run_message_batch(
            graph, rule, trials, master_seed, graph_index,
            validate, max_rounds, per_trial=False,
        )
    if isinstance(rule, ApplicationRule):
        check_application_run(rule, faults, rng_mode)
        return _run_application_batch(
            graph, rule, trials, master_seed, graph_index,
            validate, max_rounds, per_trial=False,
        )
    seeds = derive_seed_block(master_seed, graph_index, count=trials)
    simulator = FleetSimulator(graph, max_rounds=max_rounds, backend=backend)
    run = simulator.run_fleet(
        rule, seeds, validate=validate, faults=faults, rng_mode=rng_mode
    )
    return BatchResult(
        rule_name=run.rule_name,
        num_vertices=graph.num_vertices,
        trials=trials,
        rounds=run.rounds,
        mean_beeps=run.mean_beeps,
    )
