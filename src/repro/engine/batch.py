"""Multi-trial batch driver for the vectorised engine.

This is what the figure benchmarks call: for one graph (or one graph
generator) run ``trials`` independent simulations and return the round and
beep statistics as arrays.  Seeds are derived with the same splitmix
discipline as the reference engine, so a batch is reproducible from its
master seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.beeping.rng import derive_seed
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import VectorizedSimulator
from repro.graphs.graph import Graph


@dataclass
class BatchResult:
    """Statistics over one batch of independent trials."""

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    mean_beeps: np.ndarray

    @property
    def mean_rounds(self) -> float:
        """Mean round count over the batch."""
        return float(self.rounds.mean())

    @property
    def std_rounds(self) -> float:
        """Sample standard deviation of the round count."""
        if self.trials < 2:
            return 0.0
        return float(self.rounds.std(ddof=1))

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean (over trials) of the per-trial mean beeps per node."""
        return float(self.mean_beeps.mean())

    @property
    def std_beeps_per_node(self) -> float:
        """Sample standard deviation of per-trial mean beeps per node."""
        if self.trials < 2:
            return 0.0
        return float(self.mean_beeps.std(ddof=1))


def run_batch(
    graph: Graph,
    rule_factory: Callable[[], ProbabilityRule],
    trials: int,
    master_seed: int,
    graph_index: int = 0,
    validate: bool = False,
    max_rounds: int = 100_000,
) -> BatchResult:
    """Run ``trials`` independent simulations of one rule on one graph.

    ``rule_factory`` is called once per trial so stateful rules start fresh.
    ``graph_index`` namespaces the seed derivation when one experiment uses
    several graphs under the same master seed.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    simulator = VectorizedSimulator(graph, max_rounds=max_rounds)
    rounds = np.zeros(trials, dtype=np.int64)
    mean_beeps = np.zeros(trials, dtype=np.float64)
    rule_name = ""
    for trial in range(trials):
        rule = rule_factory()
        rule_name = rule.name
        seed = derive_seed(master_seed, graph_index, trial)
        run = simulator.run(rule, seed, validate=validate)
        rounds[trial] = run.rounds
        mean_beeps[trial] = run.mean_beeps_per_node
    return BatchResult(
        rule_name=rule_name,
        num_vertices=graph.num_vertices,
        trials=trials,
        rounds=rounds,
        mean_beeps=mean_beeps,
    )
