"""Bit-packed uint64 bitboard backend for the fleet engine.

The dense fleet backend spends a float32 cell per ``(node, neighbour)``
flag: the n=1000 adjacency alone is ~4 MB and every round's neighbour-OR
is a full GEMM against it.  This module packs the same booleans into
``uint64`` *lanes* — 64 flags per word, ``ceil(n / 64)`` words per row —
so a flag tensor is 64x smaller and the OR observation becomes bitwise
AND/OR over packed adjacency rows instead of floating-point multiply-add:

- ``neighbor_or``: for sparse flag rounds, gather the packed adjacency
  rows of the set bits and fold each trial's segment with one
  ``bitwise_or.reduceat`` pass; for dense rounds, one chunked broadcast
  AND + lane-OR whose cost is ``trials * n * lanes`` words regardless of
  how many bits are set.
- ``neighbor_counts`` (the fault path): chunked
  ``popcount(flags & adjacency)`` summed over lanes — exact integer
  counts, bit-equal to the float32 GEMM and CSR counts.

:func:`run_bitboard_fleet` is the engine built on those kernels.  It is
*semantically* the :meth:`FleetSimulator.run_fleet` loop — same draw
order per rng mode, same fault discipline, same join/retire schedule, so
results stay bit-identical to every other backend — but it keeps all
per-trial state compacted to the rows still alive (finished trials leave
the tensors entirely instead of riding along masked), and in counter
mode it hands the tail of a run to an entry-level frontier phase exactly
like the armada's: uniforms are evaluated only at the surviving
``(trial, vertex)`` entries (:func:`repro.beeping.rng.counter_uniforms_at`)
and ``heard`` is a bit test against the OR of the beeping entries'
packed adjacency rows.  Stream mode cannot shrink the draws (a
sequential generator must keep emitting full rows to stay aligned), so
it runs the compacted full-width loop throughout.

``tests/engine/test_bitboard.py`` pins the packing primitives
(round-trip, tail-lane masking, popcount-vs-GEMM equality) and
``tests/engine/test_conformance.py`` holds the backend to the
bit-reproducibility contract across both rng modes and all fault models.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LOSS,
    DRAW_SPURIOUS,
    counter_state,
    counter_uniforms,
    counter_uniforms_at,
    seed_array,
    stream_generators,
)
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import (
    DEFAULT_MAX_ROUNDS,
    ChurnState,
    faulty_observation,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

#: Flags per packed word.
LANE_BITS = 64

#: Vertices per broadcast chunk of the dense neighbour kernels; 256
#: keeps the ``(trials, chunk, lanes)`` intermediate cache-resident.
_CHUNK_VERTICES = 256

#: ``neighbor_or`` switches from the gather/reduceat path to the
#: broadcast path when more than one flag in ``_DENSE_FRACTION`` is set:
#: gather cost grows with the set-bit count, broadcast cost is flat.
_DENSE_FRACTION = 4


def lane_count(n: int) -> int:
    """Packed words per row of ``n`` flags (``ceil(n / 64)``)."""
    return (n + LANE_BITS - 1) // LANE_BITS


def pack_bits(flags: np.ndarray) -> np.ndarray:
    """Boolean rows packed little-endian into ``uint64`` lanes.

    Bit ``v % 64`` of lane ``v // 64`` is flag ``v``; bits at and above
    ``n`` in the trailing lane are zero (``packbits`` pads with zeros, so
    the tail mask holds by construction).
    """
    n = flags.shape[-1]
    lanes = lane_count(n)
    packed = np.packbits(
        np.ascontiguousarray(flags), axis=-1, bitorder="little"
    )
    if packed.shape[-1] != lanes * 8:
        padded = np.zeros(flags.shape[:-1] + (lanes * 8,), dtype=np.uint8)
        padded[..., : packed.shape[-1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view("<u8")


def unpack_bits(packed: np.ndarray, n: int) -> np.ndarray:
    """The boolean rows a :func:`pack_bits` result encodes."""
    flat = np.unpackbits(
        packed.view(np.uint8), axis=-1, bitorder="little", count=n
    )
    return flat.astype(bool)


if hasattr(np, "bitwise_count"):

    def popcount(lanes: np.ndarray) -> np.ndarray:
        """Set bits per ``uint64`` word (``uint8``, vectorised)."""
        return np.bitwise_count(lanes)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_BYTE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def popcount(lanes: np.ndarray) -> np.ndarray:
        """Set bits per ``uint64`` word (``uint8``, byte-table fallback)."""
        per_byte = _POPCOUNT_BYTE[lanes.view(np.uint8)]
        return per_byte.reshape(lanes.shape + (8,)).sum(
            axis=-1, dtype=np.uint8
        )


def pack_adjacency(graph: Graph) -> np.ndarray:
    """The graph's adjacency as ``(n, lanes)`` packed ``uint64`` rows.

    Built from the CSR neighbour lists (no dense boolean intermediate),
    so packing a large sparse graph costs its edges, not ``n**2``.  The
    per-vertex neighbour tuples are sorted and concatenated in vertex
    order, so the ``(vertex, lane)`` keys are globally nondecreasing and
    one ``bitwise_or.reduceat`` folds every lane's bits in a single pass.
    """
    from repro.engine.sparse import build_csr

    n = graph.num_vertices
    lanes = lane_count(n)
    packed = np.zeros((n, lanes), dtype=np.uint64)
    columns, starts, _isolated = build_csr(graph)
    if columns.size == 0:
        return packed
    degrees = np.diff(np.append(starts, columns.size))
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    keys = rows * lanes + (columns >> 6)
    bits = np.uint64(1) << (columns & 63).astype(np.uint64)
    run_starts = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
    folded = np.bitwise_or.reduceat(bits, run_starts)
    packed.reshape(-1)[keys[run_starts]] = folded
    return packed


class BitboardKernel:
    """Packed-adjacency neighbour reductions for one graph.

    Holds the ``(n, lanes)`` packed adjacency (128 KB at n=1000, vs 4 MB
    for the float32 GEMM operand) and computes the two reductions every
    engine needs: the one-bit OR observation and the integer
    beeping-neighbour counts.  Both are bit-equal to the dense GEMM and
    sparse CSR results; the conformance suite enforces it.
    """

    def __init__(self, graph: Graph) -> None:
        self._n = graph.num_vertices
        self._lanes = lane_count(self._n)
        self._adjacency = pack_adjacency(graph)

    @property
    def num_vertices(self) -> int:
        """Vertex count of the packed graph."""
        return self._n

    @property
    def packed_adjacency(self) -> np.ndarray:
        """The ``(n, lanes)`` packed adjacency rows."""
        return self._adjacency

    def neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise: whether any neighbour's flag is set, per vertex."""
        rows_count, n = flags.shape
        if n == 0 or rows_count == 0:
            return np.zeros((rows_count, n), dtype=bool)
        set_bits = np.count_nonzero(flags)
        if set_bits * _DENSE_FRACTION > rows_count * n:
            return self._broadcast_or(flags)
        out = np.zeros((rows_count, n), dtype=bool)
        rows, cols = np.nonzero(flags)
        if rows.size == 0:
            return out
        # np.nonzero is row-major, so equal-row runs are contiguous: one
        # reduceat over the gathered packed rows folds each trial's OR.
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(rows)) + 1)
        )
        folded = np.bitwise_or.reduceat(
            self._adjacency[cols], starts, axis=0
        )
        out[rows[starts]] = unpack_bits(folded, n)
        return out

    def _broadcast_or(self, flags: np.ndarray) -> np.ndarray:
        """Dense-round OR: chunked broadcast AND + lane fold."""
        rows_count, n = flags.shape
        packed = pack_bits(flags)
        out = np.empty((rows_count, n), dtype=bool)
        for lo in range(0, n, _CHUNK_VERTICES):
            hi = min(lo + _CHUNK_VERTICES, n)
            meet = packed[:, None, :] & self._adjacency[None, lo:hi, :]
            np.not_equal(
                np.bitwise_or.reduce(meet, axis=-1), 0, out=out[:, lo:hi]
            )
        return out

    def neighbor_counts(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise beeping-neighbour counts (int64), per vertex."""
        rows_count, n = flags.shape
        counts = np.zeros((rows_count, n), dtype=np.int64)
        if n == 0 or rows_count == 0:
            return counts
        packed = pack_bits(flags)
        for lo in range(0, n, _CHUNK_VERTICES):
            hi = min(lo + _CHUNK_VERTICES, n)
            meet = packed[:, None, :] & self._adjacency[None, lo:hi, :]
            popcount(meet).sum(axis=-1, dtype=np.int64, out=counts[:, lo:hi])
        return counts

    def entry_or_test(
        self,
        source_rows: np.ndarray,
        source_cols: np.ndarray,
        query_rows: np.ndarray,
        query_cols: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        """Whether each query entry neighbours a source entry of its row.

        The frontier-phase primitive: fold the source entries' packed
        adjacency rows per trial row (``source_rows`` must be sorted,
        which ``np.nonzero`` row-major order guarantees), then test the
        query entries' bits — no full-width tensor is materialised.
        """
        result = np.zeros(query_rows.size, dtype=bool)
        if source_rows.size == 0 or query_rows.size == 0:
            return result
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(source_rows)) + 1)
        )
        folded = np.bitwise_or.reduceat(
            self._adjacency[source_cols], starts, axis=0
        )
        row_position = np.full(num_rows, -1, dtype=np.int64)
        row_position[source_rows[starts]] = np.arange(starts.size)
        position = row_position[query_rows]
        hit = position >= 0
        cols = query_cols[hit]
        bits = (
            folded[position[hit], cols >> 6]
            >> (cols & 63).astype(np.uint64)
        ) & np.uint64(1)
        result[hit] = bits != 0
        return result


def run_bitboard_fleet(
    kernel: BitboardKernel,
    graph: Graph,
    rule: ProbabilityRule,
    seeds: Sequence[int],
    validate: bool = False,
    record_beeps: bool = False,
    faults: FaultModel = NO_FAULTS,
    rng_mode: str = "stream",
    max_rounds: int = DEFAULT_MAX_ROUNDS,
):
    """The fleet round-loop on bitboard kernels, results bit-identical.

    Argument semantics match :meth:`FleetSimulator.run_fleet` (which
    delegates here for the ``"bitboard"`` backend after the shared
    argument checks).  Two execution differences, neither observable:

    - **Live-row compaction.**  Finished trials leave every tensor at
      the end of the round instead of riding along behind the alive
      mask; boolean-mask compaction preserves ascending trial order, so
      stream generators are still drawn in the per-trial engines' exact
      sequence and counter blocks are the matching row subsets.
    - **Counter frontier.**  Fault-free counter runs without beep
      recording hand the tail to an entry-level phase once the active
      fraction is small (the armada's frontier discipline): per-round
      cost then scales with the surviving entries, and every uniform
      read is bit-equal to the corresponding block entry.
    """
    from repro.engine.fleet import FleetRun

    churn_schedule = faults.churn_schedule
    has_churn = not churn_schedule.is_empty()
    if has_churn:
        # Repack on the universe graph (base + joiners) for this run;
        # churn runs are niche, so per-run packing beats complicating
        # the cached kernel.
        graph = churn_schedule.universe_graph(graph)
        kernel = BitboardKernel(graph)
    n = graph.num_vertices
    trials = len(seeds)
    loss = faults.beep_loss_probability
    spurious = faults.spurious_beep_probability
    noisy = loss > 0.0 or spurious > 0.0
    crash_masks = faults.crash_schedule.round_masks(n)
    crashed = (
        np.zeros((trials, n), dtype=bool)
        if crash_masks or has_churn
        else None
    )
    counter = rng_mode == "counter"
    if counter:
        live_seeds = seed_array(seeds).copy()
        generators = None
    else:
        generators = stream_generators(seeds)
    # Full-width result arrays, written back as trials retire.
    rounds = np.zeros(trials, dtype=np.int64)
    membership = np.zeros((trials, n), dtype=bool)
    beeps = np.zeros((trials, n), dtype=np.int64)
    # Live (compacted) state: row i belongs to original trial orig[i].
    orig = np.arange(trials)
    churn = (
        ChurnState(churn_schedule, n, shape=(trials, n))
        if has_churn
        else None
    )
    last_event = churn.last_event_round if has_churn else -1
    active = (
        churn.initial_active()
        if has_churn
        else np.ones((trials, n), dtype=bool)
    )
    initial_row = rule.initial(n) if has_churn else None
    recovered = np.ones(trials, dtype=bool) if has_churn else None
    probabilities = np.broadcast_to(
        rule.initial(n), (trials, n)
    ).astype(np.float64, copy=True)
    beeps_live = np.zeros((trials, n), dtype=np.int64)
    member_live = np.zeros((trials, n), dtype=bool)
    history = [] if record_beeps else None
    if n == 0:
        # No vertices: every trial terminates before round 0, exactly
        # like the full-width engines' initial alive check.
        orig = orig[:0]
    round_index = 0
    telemetry_on = probes.enabled()
    active_cells = 0
    # The frontier needs stateless point reads (counter mode), whole
    # tensors stay relevant under noise or beep recording, and churn
    # repairs need the full-width quiescence bookkeeping.
    frontier_ok = (
        counter and not noisy and not record_beeps and not has_churn
    )
    frontier_limit = max(256, (trials * n) // 3)
    capped = False
    # ---------------- compacted full-width phase ----------------
    while orig.size:
        if round_index >= max_rounds:
            if has_churn:
                # Graceful degradation: flag the trials still mid-repair
                # instead of raising.
                rounds[orig] = round_index
                membership[orig] = member_live
                beeps[orig] = beeps_live
                recovered[orig] = False
                capped = True
                break
            raise RuntimeError(
                f"fleet simulation exceeded {max_rounds} rounds"
            )
        if frontier_ok and np.count_nonzero(active) <= frontier_limit:
            break
        if has_churn and churn.apply_events(
            # Events all land at rounds <= last_event, before any
            # compaction: every tensor is still full-width and row t is
            # trial t.
            round_index, active, member_live, crashed,
            kernel.neighbor_or, probabilities, initial_row,
        ):
            quiet = np.zeros(trials, dtype=bool)
            quiet[orig] = ~active.any(axis=1)
            churn.record_quiescence(round_index, quiet)
        crash = crash_masks.get(round_index)
        if crash is not None:
            newly_crashed = active & crash
            crashed[orig] |= newly_crashed
            active &= ~newly_crashed
        if telemetry_on:
            active_cells += int(np.count_nonzero(active))
        loss_uniforms = None
        spurious_uniforms = None
        if counter:
            uniforms = counter_uniforms(
                live_seeds, round_index, DRAW_BEEP, n
            )
            if loss > 0.0:
                loss_uniforms = counter_uniforms(
                    live_seeds, round_index, DRAW_LOSS, n
                )
            if spurious > 0.0:
                spurious_uniforms = counter_uniforms(
                    live_seeds, round_index, DRAW_SPURIOUS, n
                )
        else:
            uniforms = np.empty((orig.size, n), dtype=np.float64)
            if loss > 0.0:
                loss_uniforms = np.empty((orig.size, n), dtype=np.float64)
            if spurious > 0.0:
                spurious_uniforms = np.empty(
                    (orig.size, n), dtype=np.float64
                )
            # Ascending original-trial order, beep then loss then
            # spurious within each trial: the exact stream schedule.
            for row, trial in enumerate(orig):
                uniforms[row] = generators[trial].random(n)
                if loss > 0.0:
                    loss_uniforms[row] = generators[trial].random(n)
                if spurious > 0.0:
                    spurious_uniforms[row] = generators[trial].random(n)
        beep = active & (uniforms < probabilities)
        if noisy:
            counts = kernel.neighbor_counts(beep)
            heard_true = counts > 0
            # Every compacted row is alive, so no stale-row masking.
            heard = faulty_observation(
                counts, loss, spurious, loss_uniforms, spurious_uniforms
            )
        else:
            heard_true = kernel.neighbor_or(beep)
            heard = heard_true
        probabilities = rule.update(
            probabilities, heard, active, round_index
        )
        # Second exchange stays reliable: joins come from the true OR.
        joined = beep & ~heard_true
        member_live |= joined
        neighbor_joined = kernel.neighbor_or(joined)
        beeps_live += beep
        active &= ~(joined | neighbor_joined)
        if record_beeps:
            frame = np.zeros((trials, n), dtype=bool)
            frame[orig] = beep
            history.append(frame)
        round_index += 1
        still_alive = active.any(axis=1)
        if has_churn:
            quiet = np.zeros(trials, dtype=bool)
            quiet[orig] = ~still_alive
            churn.record_quiescence(
                round_index, quiet, applied_rounds=round_index - 1
            )
            if round_index <= last_event:
                # No trial retires before the last event: quiescent
                # trials keep executing (and drawing) through the gaps.
                still_alive = np.ones(orig.size, dtype=bool)
        if not still_alive.all():
            done = ~still_alive
            finished = orig[done]
            rounds[finished] = round_index
            membership[finished] = member_live[done]
            beeps[finished] = beeps_live[done]
            orig = orig[still_alive]
            active = active[still_alive]
            probabilities = probabilities[still_alive]
            beeps_live = beeps_live[still_alive]
            member_live = member_live[still_alive]
            if counter:
                live_seeds = live_seeds[still_alive]
    # ---------------- counter frontier phase ----------------
    if orig.size and not capped:
        membership[orig] = member_live
        beeps[orig] = beeps_live
        live_count = orig.size
        entry_rows, entry_cols = np.nonzero(active)
        entry_p = probabilities[entry_rows, entry_cols]
        row_alive = np.ones(live_count, dtype=bool)
        true_entries = np.ones(entry_rows.size, dtype=bool)
        if telemetry_on:
            probes.count("engine.bitboard.frontier_transitions")
            probes.gauge(
                "engine.bitboard.frontier_round", float(round_index)
            )
            probes.gauge(
                "engine.bitboard.frontier_entries", float(entry_rows.size)
            )
        # Counter states for a block of future rounds in one call
        # (statelessness makes look-ahead free), as in the armada.
        state_block_rounds = 16
        state_block_base = -1
        state_block = None
        while entry_rows.size:
            if round_index >= max_rounds:
                raise RuntimeError(
                    f"fleet simulation exceeded {max_rounds} rounds"
                )
            crash = crash_masks.get(round_index)
            if crash is not None:
                hit = crash[entry_cols]
                if hit.any():
                    crashed[
                        orig[entry_rows[hit]], entry_cols[hit]
                    ] = True
                    keep = ~hit
                    entry_rows = entry_rows[keep]
                    entry_cols = entry_cols[keep]
                    entry_p = entry_p[keep]
            if telemetry_on:
                active_cells += int(entry_rows.size)
            if (
                state_block is None
                or round_index >= state_block_base + state_block_rounds
            ):
                state_block_base = round_index
                block = np.arange(
                    state_block_base,
                    state_block_base + state_block_rounds,
                    dtype=np.uint64,
                )
                state_block = counter_state(
                    live_seeds, block[:, np.newaxis], DRAW_BEEP
                )
            state = state_block[round_index - state_block_base]
            entry_uniforms = counter_uniforms_at(
                state[entry_rows], entry_cols
            )
            entry_beep = entry_uniforms < entry_p
            beep_rows = entry_rows[entry_beep]
            beep_cols = entry_cols[entry_beep]
            beeps[orig[beep_rows], beep_cols] += 1
            entry_heard = kernel.entry_or_test(
                beep_rows, beep_cols, entry_rows, entry_cols, live_count
            )
            if true_entries.size < entry_rows.size:
                true_entries = np.ones(entry_rows.size, dtype=bool)
            entry_p = rule.update(
                entry_p,
                entry_heard,
                true_entries[: entry_rows.size],
                round_index,
            )
            entry_joined = entry_beep & ~entry_heard
            joined_rows = entry_rows[entry_joined]
            joined_cols = entry_cols[entry_joined]
            membership[orig[joined_rows], joined_cols] = True
            neighbor_joined = kernel.entry_or_test(
                joined_rows, joined_cols, entry_rows, entry_cols,
                live_count,
            )
            keep = ~(entry_joined | neighbor_joined)
            entry_rows = entry_rows[keep]
            entry_cols = entry_cols[keep]
            entry_p = entry_p[keep]
            surviving = np.zeros(live_count, dtype=bool)
            surviving[entry_rows] = True
            retired = row_alive & ~surviving
            rounds[orig[retired]] = round_index + 1
            row_alive = surviving
            round_index += 1
    run = FleetRun(
        rule_name=rule.name,
        num_vertices=n,
        trials=trials,
        rounds=rounds,
        membership=membership,
        beeps_by_node=beeps,
        beep_history=(
            np.array(history, dtype=bool).reshape(
                len(history), trials, n
            )
            if record_beeps
            else None
        ),
        crashed=crashed if crash_masks else None,
        absent=churn.absent_mask() if has_churn else None,
        repair_rounds=churn.repair if has_churn else None,
        recovered=recovered,
    )
    if telemetry_on:
        probes.count("engine.fleet.runs")
        probes.count("engine.fleet.rounds", round_index)
        probes.count("engine.fleet.trials", trials)
        probes.count("engine.backend.bitboard")
        if has_churn:
            probes.count(
                "engine.churn.events",
                trials * len(churn_schedule.events),
            )
            resolved = churn.repair[churn.repair >= 0]
            if resolved.size:
                probes.gauge(
                    "engine.repair.rounds", float(resolved.mean())
                )
        if round_index and trials and n:
            probes.gauge(
                "engine.fleet.active_fraction",
                active_cells / (round_index * trials * n),
            )
    if validate:
        for trial in range(trials):
            if not run.trial_recovered(trial):
                continue
            verify_mis(
                graph,
                run.mis_set(trial),
                crashed=run.crashed_set(trial),
                absent=run.absent_set(trial),
            )
    return run
