"""Trial-parallel fleet engine: all trials of one batch in lockstep.

The per-trial engines (:class:`~repro.engine.simulator.VectorizedSimulator`,
:class:`~repro.engine.sparse.SparseSimulator`) vectorise over *vertices* but
still pay one Python round-loop per trial, so a 100-trial figure point costs
100 interpreted loops.  This engine vectorises over vertices *and* trials:
the whole batch is a ``(trials, n)`` boolean tensor advanced one round at a
time —

- ``beep = active & (U < P)`` with one fresh uniform row per live trial;
- ``heard``: one batched matmul against the adjacency (dense backend) or
  one ``add.reduceat`` pass over the CSR neighbour lists (sparse backend);
- per-trial early exit through an alive-mask: finished trials drop out of
  the random drawing and the matmul, and their round counts freeze.

Fault injection is vectorised the same way (:mod:`repro.beeping.faults`):
beep loss and spurious beeps are per-node Bernoulli masks on the
``(trials, n)`` tensors — loss collapses each listener's ``k`` independent
edge deliveries into one draw against ``1 - loss**k``, with ``k`` the
beeping-neighbour counts both backends already compute — and a
:class:`~repro.beeping.faults.CrashSchedule` is a per-round active-mask
update shared by every live trial.  Faults perturb only the *first*
exchange (the ``heard`` fed to the probability rule); joins and
retirements come from the true beep tensor, so every trial's output stays
a valid independent set, maximal over the surviving vertices.

Bit-reproducibility contract
----------------------------
Trial ``t`` of a fleet run seeded with
``derive_seed_block(master_seed, graph_index, count=trials)`` consumes the
exact uniforms of a per-trial run seeded with
``derive_seed(master_seed, graph_index, t)`` *in the same* ``rng_mode``:

- ``"stream"`` (the default): every live trial draws
  ``Generator.random(n)`` once per round from its own sequential
  generator — then once per enabled fault kind (loss uniforms, then
  spurious uniforms).  One ``numpy`` generator object per trial; the
  per-trial draw loop is interpreted Python.
- ``"counter"``: each round's whole ``(trials, n)`` uniform block is one
  stateless :func:`repro.beeping.rng.counter_uniforms` call — a pure
  function of ``(trial seed, round, draw kind, node)``, no generator
  objects, no sequential state, no Python loop.

Both backends compute the same ``heard`` booleans as the per-trial
engines, so round counts, MIS membership, beep counts and crash sets
agree *bit for bit* with the per-trial loop within each mode, with or
without faults — the conformance suite in
``tests/engine/test_conformance.py`` enforces this per mode.  The two
modes draw different uniforms and therefore give different (equally
valid) trajectories; golden traces pin the ``"stream"`` byte streams.

:class:`ArmadaSimulator` extends the lockstep one dimension further for
the counter mode: all same-``n`` graph groups of one experiment cell run
as a single block-diagonal batch — one batched dense GEMM (``(graphs, n,
n)`` adjacency stack) or one block-diagonal CSR ``reduceat`` pass per
round for the *whole cell* — removing the last per-graph interpreted
round-loop from the figure hot path.

The lockstep schedule requires the probability rule to be elementwise
(``ProbabilityRule.trial_parallel``); the three paper rules qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LOSS,
    DRAW_SPURIOUS,
    counter_state,
    counter_uniforms,
    counter_uniforms_at,
    seed_array,
    stream_generators,
)
from repro.engine.bitboard import BitboardKernel, run_bitboard_fleet
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import (
    DEFAULT_MAX_ROUNDS,
    ChurnState,
    EngineRun,
    check_rng_mode,
    faulty_observation,
)
from repro.engine.sparse import build_csr, csr_row_counts
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

#: Largest vertex count for which the ``auto`` backend picks the dense
#: (float32 GEMM) path; a 4096^2 float32 adjacency is 64 MB.
DENSE_VERTEX_LIMIT = 4096


@dataclass
class FleetRun:
    """Per-trial outcomes of one fleet simulation.

    Row ``t`` of every array is trial ``t``; :meth:`trial_run` re-packages a
    row as the :class:`~repro.engine.simulator.EngineRun` the per-trial
    engines return.
    """

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    membership: np.ndarray
    beeps_by_node: np.ndarray
    beep_history: Optional[np.ndarray] = None
    #: ``(trials, n)`` crash indicators; ``None`` when the fault model
    #: scheduled no crashes (the overwhelmingly common case).
    crashed: Optional[np.ndarray] = None
    #: ``(trials, n)`` churn-absence indicators (departed, asleep at the
    #: end, or never joined); ``None`` when the fault model scheduled no
    #: churn.  The schedule is shared, so every row is identical.
    absent: Optional[np.ndarray] = None
    #: ``(trials, events)`` per-churn-event repair times (``-1`` for
    #: events unresolved at the round cap); ``None`` without churn.
    repair_rounds: Optional[np.ndarray] = None
    #: ``(trials,)`` recovery flags: ``False`` for trials that hit the
    #: round cap mid-repair; ``None`` without churn.
    recovered: Optional[np.ndarray] = None

    @property
    def mean_beeps(self) -> np.ndarray:
        """Per-trial mean beeps per node (``BatchResult.mean_beeps``)."""
        if self.num_vertices == 0:
            return np.zeros(self.trials, dtype=np.float64)
        return self.beeps_by_node.sum(axis=1) / float(self.num_vertices)

    def mis_set(self, trial: int) -> Set[int]:
        """The MIS selected by one trial."""
        return {int(v) for v in np.flatnonzero(self.membership[trial])}

    def crashed_set(self, trial: int) -> Set[int]:
        """The vertices that crashed during one trial."""
        if self.crashed is None:
            return set()
        return {int(v) for v in np.flatnonzero(self.crashed[trial])}

    def absent_set(self, trial: int) -> Set[int]:
        """The universe vertices absent at the end of one trial."""
        if self.absent is None:
            return set()
        return {int(v) for v in np.flatnonzero(self.absent[trial])}

    def trial_recovered(self, trial: int) -> bool:
        """Whether one trial reached quiescence before the round cap."""
        if self.recovered is None:
            return True
        return bool(self.recovered[trial])

    def trial_run(self, trial: int) -> EngineRun:
        """One trial's outcome in the per-trial engines' result type."""
        return EngineRun(
            rule_name=self.rule_name,
            num_vertices=self.num_vertices,
            rounds=int(self.rounds[trial]),
            mis=self.mis_set(trial),
            beeps_by_node=self.beeps_by_node[trial].copy(),
            crashed=self.crashed_set(trial),
            absent=self.absent_set(trial),
            repair_rounds=(
                tuple(int(r) for r in self.repair_rounds[trial])
                if self.repair_rounds is not None
                else ()
            ),
            recovered=self.trial_recovered(trial),
        )


class FleetSimulator:
    """Runs one rule on one graph for a whole fleet of trials at once.

    ``backend`` selects how the one-bit OR observation is computed:

    - ``"dense"``: ``(trials, n) @ (n, n)`` float32 GEMM.  Exact (counts are
      small integers) and BLAS-fast; memory is the n x n adjacency.
    - ``"sparse"``: gather + ``add.reduceat`` over CSR neighbour lists,
      O(trials * (n + m)) per round; the large-sparse-graph path.
    - ``"bitboard"``: flags and adjacency rows packed into ``uint64``
      lanes; the OR is bitwise AND/OR over the packed rows and counts
      come from ``popcount`` (:mod:`repro.engine.bitboard`).  Runs its
      own live-row-compacted loop with a counter-mode frontier tail —
      the fastest backend at figure sizes, opt-in.
    - ``"auto"`` (default): dense up to :data:`DENSE_VERTEX_LIMIT` vertices,
      sparse beyond.

    All backends produce identical booleans, so backend choice never
    changes results — only speed and memory.
    """

    def __init__(
        self,
        graph: Graph,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if backend not in ("auto", "dense", "sparse", "bitboard"):
            raise ValueError(
                "backend must be 'auto', 'dense', 'sparse' or 'bitboard', "
                f"got {backend!r}"
            )
        self._graph = graph
        self._max_rounds = max_rounds
        n = graph.num_vertices
        if backend == "auto":
            backend = "dense" if n <= DENSE_VERTEX_LIMIT else "sparse"
        self._backend = backend
        if backend == "dense":
            self._adjacency = graph.adjacency_matrix().astype(np.float32)
            # Reused float32 staging buffer for the GEMM operand; grown on
            # demand, so no per-round astype allocation on the hot path.
            self._flags32: Optional[np.ndarray] = None
        elif backend == "bitboard":
            self._kernel = BitboardKernel(graph)
        else:
            self._columns, self._starts, self._isolated = build_csr(graph)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved backend: ``"dense"``, ``"sparse"`` or ``"bitboard"``."""
        return self._backend

    def _as_float32(self, flags: np.ndarray) -> np.ndarray:
        """``flags`` cast into the cached float32 GEMM staging buffer."""
        k, n = flags.shape
        if self._flags32 is None or self._flags32.shape[0] < k:
            self._flags32 = np.empty((k, n), dtype=np.float32)
        staged = self._flags32[:k]
        np.copyto(staged, flags)
        return staged

    def _neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise: whether any neighbour's flag is set, per vertex."""
        if self._backend == "bitboard":
            return self._kernel.neighbor_or(flags)
        if self._backend == "dense":
            k, n = flags.shape
            if n == 0:
                return np.zeros((k, 0), dtype=bool)
            # Compare the float counts directly: the fault-free hot path
            # skips _neighbor_counts's int64 conversion.
            counts = self._as_float32(flags) @ self._adjacency
            return counts > 0.0
        return self._neighbor_counts(flags) > 0

    def _scattered_neighbor_or(
        self, flags: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Neighbour-OR computed only on live rows, zero elsewhere."""
        if live.size == flags.shape[0]:
            return self._neighbor_or(flags)
        result = np.zeros(flags.shape, dtype=bool)
        result[live] = self._neighbor_or(flags[live])
        return result

    def _neighbor_counts(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise beeping-neighbour counts (int64), per vertex."""
        k, n = flags.shape
        if n == 0:
            return np.zeros((k, 0), dtype=np.int64)
        if self._backend == "bitboard":
            return self._kernel.neighbor_counts(flags)
        if self._backend == "dense":
            # float32 GEMM counts are exact small integers (degree < 2^24).
            counts = self._as_float32(flags) @ self._adjacency
            return counts.astype(np.int64)
        return csr_row_counts(
            flags, self._columns, self._starts, self._isolated
        )

    def _scattered_neighbor_counts(
        self, flags: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Neighbour counts computed only on live rows, zero elsewhere."""
        if live.size == flags.shape[0]:
            return self._neighbor_counts(flags)
        result = np.zeros(flags.shape, dtype=np.int64)
        result[live] = self._neighbor_counts(flags[live])
        return result

    def run_fleet(
        self,
        rule: ProbabilityRule,
        seeds: Sequence[int],
        validate: bool = False,
        record_beeps: bool = False,
        faults: FaultModel = NO_FAULTS,
        rng_mode: str = "stream",
    ) -> FleetRun:
        """Simulate one independent trial per seed, all in lockstep.

        ``record_beeps=True`` additionally returns the full round-by-round
        beep tensor (``(rounds, trials, n)``) for trace tests; leave it off
        for large runs.  ``faults`` applies the same fault model to every
        trial; a fault-free model draws no extra randomness, so the run is
        bit-identical to one without the argument.  ``rng_mode`` selects
        the uniform discipline (module docstring); trial ``t`` always
        equals the per-trial engines' run on ``seeds[t]`` in the same
        mode.
        """
        check_rng_mode(rng_mode)
        if len(seeds) < 1:
            raise ValueError("need at least one seed")
        if not getattr(rule, "trial_parallel", False):
            raise ValueError(
                f"rule {rule.name!r} is not trial-parallel; "
                "use the per-trial loop instead"
            )
        if self._backend == "bitboard":
            # The bitboard engine runs its own (live-row-compacted) loop;
            # same draw order per mode, bit-identical results.  It
            # handles any churn universe rebuild itself.
            return run_bitboard_fleet(
                self._kernel,
                self._graph,
                rule,
                seeds,
                validate=validate,
                record_beeps=record_beeps,
                faults=faults,
                rng_mode=rng_mode,
                max_rounds=self._max_rounds,
            )
        churn_schedule = faults.churn_schedule
        if churn_schedule.is_empty():
            engine = self
        else:
            # Rebuild on the universe graph (base + joiners) for this
            # run — churn runs are niche, so per-run construction beats
            # complicating the cached structures.
            engine = FleetSimulator(
                churn_schedule.universe_graph(self._graph),
                max_rounds=self._max_rounds,
                backend=self._backend,
            )
        return engine._run_fleet(
            rule, seeds, validate, record_beeps, faults, rng_mode
        )

    def _run_fleet(
        self,
        rule: ProbabilityRule,
        seeds: Sequence[int],
        validate: bool,
        record_beeps: bool,
        faults: FaultModel,
        rng_mode: str,
    ) -> FleetRun:
        """The lockstep loop; ``self._graph`` is already the universe."""
        n = self._graph.num_vertices
        trials = len(seeds)
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        noisy = loss > 0.0 or spurious > 0.0
        churn_schedule = faults.churn_schedule
        has_churn = not churn_schedule.is_empty()
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = (
            np.zeros((trials, n), dtype=bool)
            if crash_masks or has_churn
            else None
        )
        counter = rng_mode == "counter"
        if counter:
            trial_seeds = seed_array(seeds)
            generators = None
        else:
            generators = stream_generators(seeds)
        churn = (
            ChurnState(churn_schedule, n, shape=(trials, n))
            if has_churn
            else None
        )
        last_event = churn.last_event_round if has_churn else -1
        active = (
            churn.initial_active()
            if has_churn
            else np.ones((trials, n), dtype=bool)
        )
        initial_row = rule.initial(n) if has_churn else None
        recovered = np.ones(trials, dtype=bool) if has_churn else None
        membership = np.zeros((trials, n), dtype=bool)
        probabilities = np.broadcast_to(
            rule.initial(n), (trials, n)
        ).astype(np.float64, copy=True)
        beeps = np.zeros((trials, n), dtype=np.int64)
        rounds = np.zeros(trials, dtype=np.int64)
        uniforms = np.empty((trials, n), dtype=np.float64)
        loss_uniforms = (
            np.empty((trials, n), dtype=np.float64) if loss > 0.0 else None
        )
        spurious_uniforms = (
            np.empty((trials, n), dtype=np.float64) if spurious > 0.0 else None
        )
        history = [] if record_beeps else None
        alive = active.any(axis=1)
        if has_churn:
            # Every trial shares the schedule, so none may retire before
            # the last event: quiescent trials keep executing (and, in
            # stream mode, drawing) through the quiet gaps, exactly like
            # the per-trial loop's ``rounds <= last_event`` condition.
            alive[:] = True
        round_index = 0
        # Telemetry is out of band: the flag is hoisted so disabled runs
        # pay one boolean check per round, and the active-cell tally (the
        # only probe-side computation) happens only when probes are on.
        telemetry_on = probes.enabled()
        active_cells = 0
        while alive.any():
            if round_index >= self._max_rounds:
                if has_churn:
                    # Graceful degradation: flag the trials still mid-
                    # repair instead of raising, like the per-trial
                    # engines.
                    recovered = ~alive
                    rounds[alive] = round_index
                    break
                raise RuntimeError(
                    f"fleet simulation exceeded {self._max_rounds} rounds"
                )
            if has_churn and churn.apply_events(
                round_index, active, membership, crashed,
                self._neighbor_or, probabilities, initial_row,
            ):
                churn.record_quiescence(round_index, ~active.any(axis=1))
            crash = crash_masks.get(round_index)
            if crash is not None:
                # Fail-stop at the start of the round.  Finished trials
                # have all-False active rows, so the crash never reaches
                # them — exactly like the per-trial loop, which stops
                # executing rounds at termination.
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            if telemetry_on:
                active_cells += int(np.count_nonzero(active))
            live = np.flatnonzero(alive)
            if counter:
                # Counter mode: each enabled kind's whole block is one
                # stateless vectorised call — no per-trial Python loop.
                live_seeds = trial_seeds[live]
                uniforms[live] = counter_uniforms(
                    live_seeds, round_index, DRAW_BEEP, n
                )
                if loss > 0.0:
                    loss_uniforms[live] = counter_uniforms(
                        live_seeds, round_index, DRAW_LOSS, n
                    )
                if spurious > 0.0:
                    spurious_uniforms[live] = counter_uniforms(
                        live_seeds, round_index, DRAW_SPURIOUS, n
                    )
            else:
                # One pass over the live trials draws all enabled uniform
                # rows; generators are per-trial, so only the within-trial
                # order (beep, then loss, then spurious) affects the
                # streams.
                for t in live:
                    uniforms[t] = generators[t].random(n)
                    if loss > 0.0:
                        loss_uniforms[t] = generators[t].random(n)
                    if spurious > 0.0:
                        spurious_uniforms[t] = generators[t].random(n)
            # Dead rows keep stale uniforms, but their active row is
            # all-False so beep stays all-False there.
            beep = active & (uniforms < probabilities)
            if noisy:
                counts = self._scattered_neighbor_counts(beep, live)
                heard_true = counts > 0
                # Stale fault uniforms on dead rows could flip their heard
                # bits; mask them off (their probabilities are unused, but
                # keep the tensors clean).
                heard = faulty_observation(
                    counts, loss, spurious, loss_uniforms, spurious_uniforms
                ) & alive[:, None]
            else:
                heard_true = self._scattered_neighbor_or(beep, live)
                heard = heard_true
            probabilities = rule.update(probabilities, heard, active, round_index)
            # Second exchange stays reliable: joins come from the true OR.
            joined = beep & ~heard_true
            membership |= joined
            neighbor_joined = self._scattered_neighbor_or(joined, live)
            beeps += beep
            active &= ~(joined | neighbor_joined)
            if record_beeps:
                history.append(beep.copy())
            still_alive = active.any(axis=1)
            if has_churn:
                churn.record_quiescence(
                    round_index + 1, ~still_alive, applied_rounds=round_index
                )
                if round_index + 1 <= last_event:
                    still_alive = np.ones(trials, dtype=bool)
            rounds[alive & ~still_alive] = round_index + 1
            alive = still_alive
            round_index += 1
        run = FleetRun(
            rule_name=rule.name,
            num_vertices=n,
            trials=trials,
            rounds=rounds,
            membership=membership,
            beeps_by_node=beeps,
            beep_history=(
                np.array(history, dtype=bool).reshape(len(history), trials, n)
                if record_beeps
                else None
            ),
            crashed=crashed if crash_masks else None,
            absent=churn.absent_mask() if has_churn else None,
            repair_rounds=churn.repair if has_churn else None,
            recovered=recovered,
        )
        if telemetry_on:
            probes.count("engine.fleet.runs")
            probes.count("engine.fleet.rounds", round_index)
            probes.count("engine.fleet.trials", trials)
            probes.count(f"engine.backend.{self._backend}")
            if has_churn:
                probes.count(
                    "engine.churn.events",
                    trials * len(churn_schedule.events),
                )
                resolved = churn.repair[churn.repair >= 0]
                if resolved.size:
                    probes.gauge(
                        "engine.repair.rounds", float(resolved.mean())
                    )
            if round_index and trials and n:
                probes.gauge(
                    "engine.fleet.active_fraction",
                    active_cells / (round_index * trials * n),
                )
        if validate:
            for trial in range(trials):
                if not run.trial_recovered(trial):
                    continue
                verify_mis(
                    self._graph,
                    run.mis_set(trial),
                    crashed=run.crashed_set(trial),
                    absent=run.absent_set(trial),
                )
        return run


class ArmadaSimulator:
    """One lockstep round-loop for *several* same-``n`` graphs at once.

    ``run_fleet_trials`` spreads a cell's trials over independently drawn
    graphs; with one :class:`FleetSimulator` per graph that costs one
    interpreted round-loop per graph.  The armada flattens every
    ``(graph, trial)`` pair into one *slot row* of a ``(slots, n)`` batch
    (rows grouped by graph) and advances the whole cell in a single loop.
    It runs in ``"counter"`` rng mode only: its uniforms are pure
    functions of ``(seed, round, kind, node)``, so no per-trial generator
    state exists to thread through the batching, and every slot is
    bit-identical to the per-graph counter-mode fleet run it replaces
    (``"stream"`` mode would need one live generator per slot plus the
    fleet's per-trial draw loop — exactly the interpreted work this class
    exists to delete).

    Execution has two phases, chosen per round by activity:

    - **Dense phase** (early rounds, most vertices active): the
      one-bit OR observation is one *batched* float32 GEMM against the
      ``(graphs, n, n)`` adjacency stack (``"dense"`` backend), a
      per-graph CSR ``add.reduceat`` pass (``"sparse"`` backend), or a
      per-graph packed AND/OR over ``uint64`` bitboard rows
      (``"bitboard"`` backend) — exact in all cases.
    - **Frontier phase** (fault-free runs, once the live fraction is
      small): the state collapses to the list of still-active ``(slot,
      vertex)`` entries.  Uniforms are evaluated only at those entries
      (:func:`repro.beeping.rng.counter_uniforms_at` — bit-equal to the
      corresponding block entries), and ``heard`` comes from scattering
      the beeping entries' neighbour lists through one block-diagonal
      CSR over the ``graphs * n``-vertex union.  Per-round cost then
      scales with the surviving frontier instead of ``slots * n``, which
      is where most of a figure cell's rounds live.

    Beep-loss/spurious-noise runs stay in the dense phase throughout
    (noise keeps the whole tensor relevant); crash schedules work in both
    phases.  Either way the observable outputs — round counts, MIS
    membership, beep counts, crash sets — are bit-identical to
    ``FleetSimulator(graphs[g]).run_fleet(..., rng_mode="counter")``
    slot for slot, which the conformance suite enforces.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
        frontier_entries: Optional[int] = None,
    ) -> None:
        if not graphs:
            raise ValueError("need at least one graph")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if backend not in ("auto", "dense", "sparse", "bitboard"):
            raise ValueError(
                "backend must be 'auto', 'dense', 'sparse' or 'bitboard', "
                f"got {backend!r}"
            )
        if frontier_entries is not None and frontier_entries < 0:
            raise ValueError(
                f"frontier_entries must be >= 0, got {frontier_entries}"
            )
        n = graphs[0].num_vertices
        for graph in graphs:
            if graph.num_vertices != n:
                raise ValueError(
                    "armada graphs must share one vertex count, got "
                    f"{n} and {graph.num_vertices}"
                )
        self._graphs = list(graphs)
        self._n = n
        self._max_rounds = max_rounds
        self._frontier_entries = frontier_entries
        num_graphs = len(self._graphs)
        if backend == "auto":
            backend = (
                "dense"
                if num_graphs * n * n <= DENSE_VERTEX_LIMIT ** 2
                else "sparse"
            )
        self._backend = backend
        # Block-diagonal CSR over the graphs * n-vertex union, with
        # *local* column ids: the segment of super-vertex g*n + v holds
        # graph g's neighbour list of v.  Shared by the scatter paths of
        # both backends.  Per-graph starts are unclamped (build_csr), so
        # a trailing isolated run's start lands on the next graph's first
        # segment — harmless, because its degree is 0 and expansion
        # repeats it zero times.
        per_graph = [build_csr(graph) for graph in self._graphs]
        column_sizes = [columns.size for columns, _, _ in per_graph]
        bases = np.concatenate(([0], np.cumsum(column_sizes)))[:-1]
        self._local_columns = np.concatenate(
            [columns for columns, _, _ in per_graph]
        )
        self._super_starts = np.concatenate(
            [starts + base for (_, starts, _), base in zip(per_graph, bases)]
        )
        # Degrees fall out of the (unclamped) CSR starts: consecutive
        # starts delimit each vertex's segment, and a trailing isolated
        # run's repeated start yields the correct zero.
        self._super_degrees = np.concatenate(
            [
                np.diff(np.append(starts, columns.size))
                for columns, starts, _ in per_graph
            ]
        ) if n else np.zeros(0, dtype=np.int64)
        self._mean_degree = (
            float(self._super_degrees.mean()) if self._super_degrees.size else 0.0
        )
        if backend == "dense":
            # Build the float32 stack straight from the CSR segments (one
            # vectorised scatter per graph) instead of paying the Python
            # edge loop of Graph.adjacency_matrix per graph.
            self._adjacency = np.zeros(
                (num_graphs, n, n), dtype=np.float32
            )
            for g, (columns, starts, _) in enumerate(per_graph):
                degrees = np.diff(np.append(starts, columns.size))
                rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
                self._adjacency[g].reshape(-1)[rows * n + columns] = 1.0
            self._flags32: Optional[np.ndarray] = None
            self._counts32: Optional[np.ndarray] = None
        elif backend == "bitboard":
            # One packed kernel per graph; the dense-phase reductions
            # loop over the (few) graph groups, and the frontier phase
            # uses the shared block-diagonal CSR scatter unchanged.
            self._kernels = [BitboardKernel(graph) for graph in self._graphs]
        else:
            self._per_csr = per_graph

    @property
    def graphs(self) -> Sequence[Graph]:
        """The stacked graphs, in slot order."""
        return tuple(self._graphs)

    @property
    def backend(self) -> str:
        """The resolved backend: ``"dense"``, ``"sparse"`` or ``"bitboard"``."""
        return self._backend

    def _expand(self, rows_sel: np.ndarray, cols_sel: np.ndarray,
                slot_base: np.ndarray):
        """Neighbour entries of the selected ``(slot row, vertex)`` pairs.

        Returns ``(rows, columns)`` such that entry ``i`` says "vertex
        ``columns[i]`` of slot ``rows[i]`` has a selected neighbour" —
        the vectorised expansion of the block-diagonal CSR segments, one
        ``repeat``/``cumsum`` pass, no Python loop.
        """
        if rows_sel.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        supervertices = slot_base[rows_sel] + cols_sel
        degrees = self._super_degrees[supervertices]
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.repeat(rows_sel, degrees)
        ends = np.cumsum(degrees)
        flat = (
            np.repeat(self._super_starts[supervertices] - (ends - degrees),
                      degrees)
            + np.arange(total, dtype=np.int64)
        )
        return rows, self._local_columns[flat]

    def _scatter_or(self, rows_sel: np.ndarray, cols_sel: np.ndarray,
                    slot_base: np.ndarray, shape) -> np.ndarray:
        """Boolean neighbour-OR of the selected entries, scattered."""
        result = np.zeros(shape, dtype=bool)
        rows, cols = self._expand(rows_sel, cols_sel, slot_base)
        if rows.size:
            result[rows, cols] = True
        return result

    def _stage_f32(self, flags: np.ndarray, sizes: Sequence[int]):
        """``flags`` as the float32 GEMM operand, grouped per graph.

        Equal-size groups reshape the staging buffer for free; ragged
        groups (``trials % graphs != 0``) pad to the widest group.
        Returns ``(staged (graphs, width, n), equal_sizes)``.
        """
        num_graphs, n = len(self._graphs), self._n
        rows = flags.shape[0]
        width = max(sizes)
        if self._flags32 is None or self._flags32.shape[0] < num_graphs * width:
            self._flags32 = np.empty((num_graphs * width, n), dtype=np.float32)
        if rows == num_graphs * width:
            staged = self._flags32[: num_graphs * width]
            np.copyto(staged, flags)
            return staged.reshape(num_graphs, width, n), True
        staged = self._flags32[: num_graphs * width].reshape(
            num_graphs, width, n
        )
        staged[:] = 0.0
        offset = 0
        for g, size in enumerate(sizes):
            np.copyto(staged[g, :size], flags[offset:offset + size])
            offset += size
        return staged, False

    def _dense_or(
        self,
        flags: np.ndarray,
        sizes: Sequence[int],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fault-free neighbour-OR over all slot rows, both backends."""
        num_graphs, n = len(self._graphs), self._n
        rows = flags.shape[0]
        if n == 0:
            return np.zeros((rows, 0), dtype=bool)
        if self._backend == "bitboard":
            if out is None:
                out = np.empty((rows, n), dtype=bool)
            offset = 0
            for g, size in enumerate(sizes):
                out[offset:offset + size] = self._kernels[g].neighbor_or(
                    flags[offset:offset + size]
                )
                offset += size
            return out
        if self._backend == "dense":
            staged, equal = self._stage_f32(flags, sizes)
            width = max(sizes)
            if (
                self._counts32 is None
                or self._counts32.shape[0] < num_graphs * width
            ):
                self._counts32 = np.empty(
                    (num_graphs * width, n), dtype=np.float32
                )
            counts = self._counts32[: num_graphs * width].reshape(
                num_graphs, width, n
            )
            np.matmul(staged, self._adjacency, out=counts)
            if out is None:
                out = np.empty((rows, n), dtype=bool)
            if equal:
                np.greater(
                    counts.reshape(num_graphs * width, n)[:rows], 0.0, out=out
                )
                return out
            offset = 0
            for g, size in enumerate(sizes):
                np.greater(counts[g, :size], 0.0, out=out[offset:offset + size])
                offset += size
            return out
        result = self._group_counts(flags, None, sizes) > 0
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def _group_counts(self, flags: np.ndarray, alive: Optional[np.ndarray],
                      sizes: Sequence[int]) -> np.ndarray:
        """Per-vertex beeping-neighbour counts, per-graph, optionally
        restricted to alive slot rows (dead rows stay zero)."""
        n = self._n
        rows = flags.shape[0]
        counts = np.zeros((rows, n), dtype=np.int64)
        if n == 0:
            return counts
        offset = 0
        for g, size in enumerate(sizes):
            block = slice(offset, offset + size)
            if alive is not None:
                selected = np.flatnonzero(alive[block]) + offset
                if selected.size == 0:
                    offset += size
                    continue
                sub = flags[selected]
            else:
                selected = None
                sub = flags[block]
            if self._backend == "dense":
                # float32 GEMM counts are exact small integers; stage the
                # flags through the reused buffer, not a fresh astype.
                if (
                    self._flags32 is None
                    or self._flags32.shape[0] < sub.shape[0]
                ):
                    self._flags32 = np.empty(
                        (sub.shape[0], n), dtype=np.float32
                    )
                staged = self._flags32[: sub.shape[0]]
                np.copyto(staged, sub)
                block_counts = (staged @ self._adjacency[g]).astype(np.int64)
            elif self._backend == "bitboard":
                block_counts = self._kernels[g].neighbor_counts(sub)
            else:
                columns, starts, isolated = self._per_csr[g]
                block_counts = csr_row_counts(sub, columns, starts, isolated)
            if selected is None:
                counts[block] = block_counts
            else:
                counts[selected] = block_counts
            offset += size
        return counts

    def run_armada(
        self,
        rule: ProbabilityRule,
        seed_rows: Sequence[Sequence[int]],
        validate: bool = False,
        faults: FaultModel = NO_FAULTS,
    ) -> List[FleetRun]:
        """Run every graph's trial group in one lockstep batch.

        ``seed_rows[g]`` holds graph ``g``'s counter-mode trial seeds (the
        rows may have different lengths).  Returns one :class:`FleetRun`
        per graph, bit-identical to ``FleetSimulator(graphs[g]).run_fleet(
        rule, seed_rows[g], rng_mode="counter", ...)``.
        """
        if len(seed_rows) != len(self._graphs):
            raise ValueError(
                f"need one seed row per graph, got {len(seed_rows)} rows "
                f"for {len(self._graphs)} graphs"
            )
        if not getattr(rule, "trial_parallel", False):
            raise ValueError(
                f"rule {rule.name!r} is not trial-parallel; "
                "use the per-trial loop instead"
            )
        churn_schedule = faults.churn_schedule
        if churn_schedule.is_empty():
            engine = self
        else:
            # Rebuild on the universe graphs (base + joiners, one shared
            # schedule so the stacked vertex counts stay equal) for this
            # run; churn runs are niche, so per-run construction beats
            # complicating the cached block-diagonal structures.
            engine = ArmadaSimulator(
                [
                    churn_schedule.universe_graph(graph)
                    for graph in self._graphs
                ],
                max_rounds=self._max_rounds,
                backend=self._backend,
                frontier_entries=self._frontier_entries,
            )
        return engine._run_armada(rule, seed_rows, validate, faults)

    def _run_armada(
        self,
        rule: ProbabilityRule,
        seed_rows: Sequence[Sequence[int]],
        validate: bool,
        faults: FaultModel,
    ) -> List[FleetRun]:
        """The block-diagonal loop; graphs are already the universes."""
        groups = [seed_array(row) for row in seed_rows]
        sizes = [int(group.size) for group in groups]
        if min(sizes) < 1:
            raise ValueError("every graph needs at least one seed")
        n = self._n
        num_graphs = len(self._graphs)
        total = sum(sizes)
        seeds = np.concatenate(groups)
        slot_base = np.repeat(
            np.arange(num_graphs, dtype=np.int64) * n, sizes
        )
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        noisy = loss > 0.0 or spurious > 0.0
        churn_schedule = faults.churn_schedule
        has_churn = not churn_schedule.is_empty()
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = (
            np.zeros((total, n), dtype=bool)
            if crash_masks or has_churn
            else None
        )
        churn = (
            ChurnState(churn_schedule, n, shape=(total, n))
            if has_churn
            else None
        )
        last_event = churn.last_event_round if has_churn else -1
        active = (
            churn.initial_active()
            if has_churn
            else np.ones((total, n), dtype=bool)
        )
        initial_row = rule.initial(n) if has_churn else None
        recovered = np.ones(total, dtype=bool) if has_churn else None
        membership = np.zeros((total, n), dtype=bool)
        probabilities = np.broadcast_to(
            rule.initial(n), (total, n)
        ).astype(np.float64, copy=True)
        beeps = np.zeros((total, n), dtype=np.int64)
        rounds = np.zeros(total, dtype=np.int64)
        # The persistent uniform buffers only matter for the live-row
        # scatter of noisy runs; fault-free rounds use the fresh block.
        uniforms = np.empty((total, n), dtype=np.float64) if noisy else None
        loss_uniforms = (
            np.empty((total, n), dtype=np.float64) if loss > 0.0 else None
        )
        spurious_uniforms = (
            np.empty((total, n), dtype=np.float64) if spurious > 0.0 else None
        )
        beep = np.empty((total, n), dtype=bool)
        joined = np.empty((total, n), dtype=bool)
        scratch = np.empty((total, n), dtype=bool)
        heard_buf = np.empty((total, n), dtype=bool)
        alive = active.any(axis=1)
        if has_churn:
            # No slot retires before the last event (shared schedule):
            # quiescent slots keep executing through the quiet gaps like
            # the per-trial loop's ``rounds <= last_event`` condition.
            alive[:] = True
        frontier_limit = self._frontier_entries
        if frontier_limit is None:
            frontier_limit = max(256, (total * n) // 3)
        round_index = 0
        capped = False
        # Out-of-band telemetry (hoisted flag; the only probe-side work,
        # the active-cell tally, runs only when probes are on).
        telemetry_on = probes.enabled()
        active_cells = 0
        # ---------------- dense phase ----------------
        while alive.any():
            if round_index >= self._max_rounds:
                if has_churn:
                    # Graceful degradation: flag the slots still mid-
                    # repair instead of raising.
                    recovered = ~alive
                    rounds[alive] = round_index
                    capped = True
                    break
                raise RuntimeError(
                    f"armada simulation exceeded {self._max_rounds} rounds"
                )
            if (
                not noisy
                and not has_churn
                and np.count_nonzero(active) <= frontier_limit
            ):
                break  # hand the tail to the frontier
            if has_churn and churn.apply_events(
                round_index, active, membership, crashed,
                lambda flags: self._dense_or(flags, sizes),
                probabilities, initial_row,
            ):
                churn.record_quiescence(round_index, ~active.any(axis=1))
            crash = crash_masks.get(round_index)
            if crash is not None:
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            if telemetry_on:
                active_cells += int(np.count_nonzero(active))
            if not noisy:
                # Counter draws are pure per-slot functions, so dead rows
                # may read fresh uniforms (their active mask is False);
                # skipping the live-row gather saves two copies per round.
                uniforms = counter_uniforms(seeds, round_index, DRAW_BEEP, n)
            else:
                live = np.flatnonzero(alive)
                live_seeds = seeds[live]
                uniforms[live] = counter_uniforms(
                    live_seeds, round_index, DRAW_BEEP, n
                )
                if loss > 0.0:
                    loss_uniforms[live] = counter_uniforms(
                        live_seeds, round_index, DRAW_LOSS, n
                    )
                if spurious > 0.0:
                    spurious_uniforms[live] = counter_uniforms(
                        live_seeds, round_index, DRAW_SPURIOUS, n
                    )
            # Elementwise steps run through preallocated buffers (out=):
            # at dense-phase sizes the hidden page-touch cost of fresh
            # temporaries rivals the arithmetic itself.
            np.less(uniforms, probabilities, out=beep)
            beep &= active
            if noisy:
                counts = self._group_counts(beep, alive, sizes)
                heard_true = counts > 0
                # Finished slots on still-allocated rows keep stale fault
                # uniforms; mask their heard bits like the fleet does.
                heard = faulty_observation(
                    counts, loss, spurious, loss_uniforms, spurious_uniforms
                ) & alive[:, None]
            else:
                heard_true = self._dense_or(beep, sizes, out=heard_buf)
                heard = heard_true
            probabilities = rule.update(
                probabilities, heard, active, round_index
            )
            # Second exchange stays reliable: joins come from the true OR.
            np.logical_not(heard_true, out=scratch)
            np.logical_and(beep, scratch, out=joined)
            membership |= joined
            joined_rows, joined_cols = np.nonzero(joined)
            scratch[:] = False
            rows, cols = self._expand(joined_rows, joined_cols, slot_base)
            if rows.size:
                scratch[rows, cols] = True
            beeps += beep
            joined |= scratch  # joined-or-neighbour: exactly the retirees
            np.logical_not(joined, out=scratch)
            active &= scratch
            still_alive = active.any(axis=1)
            if has_churn:
                churn.record_quiescence(
                    round_index + 1, ~still_alive, applied_rounds=round_index
                )
                if round_index + 1 <= last_event:
                    still_alive = np.ones(total, dtype=bool)
            rounds[alive & ~still_alive] = round_index + 1
            alive = still_alive
            round_index += 1
        # ---------------- frontier phase ----------------
        dense_rounds = round_index
        if alive.any() and not capped:
            entry_rows, entry_cols = np.nonzero(active)
            entry_p = probabilities[entry_rows, entry_cols]
            if telemetry_on:
                probes.count("engine.armada.frontier_transitions")
                probes.gauge(
                    "engine.armada.frontier_round", float(round_index)
                )
                probes.gauge(
                    "engine.armada.frontier_entries", float(entry_rows.size)
                )
            heard_buffer = np.zeros((total, n), dtype=bool)
            true_entries = np.ones(0, dtype=bool)
            # Padded slot-row index for the staged-GEMM heard fallback:
            # slot row r of graph g maps to row g * width + (r - offset_g)
            # of the (graphs, width, n) staging stack.
            if self._backend == "dense":
                width = max(sizes)
                group_offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
                padded_row = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(group_offsets, sizes)
                    + np.repeat(
                        np.arange(num_graphs, dtype=np.int64) * width, sizes
                    )
                )
                if (
                    self._flags32 is None
                    or self._flags32.shape[0] < num_graphs * width
                ):
                    self._flags32 = np.empty(
                        (num_graphs * width, n), dtype=np.float32
                    )
            # One full-tensor pass is what a dense-phase round would pay;
            # expand while the beeping entries' neighbour lists stay
            # below it, otherwise fall back to the batched GEMM.
            expansion_budget = float(max(total * n, 1))
            # Counter states for a block of future rounds in one call
            # (statelessness makes look-ahead free); refilled as the
            # frontier outlives each block.
            state_block_rounds = 16
            state_block_base = -1
            state_block = None
            while entry_rows.size:
                if round_index >= self._max_rounds:
                    raise RuntimeError(
                        f"armada simulation exceeded {self._max_rounds} rounds"
                    )
                crash = crash_masks.get(round_index)
                if crash is not None:
                    hit = crash[entry_cols]
                    if hit.any():
                        crashed[entry_rows[hit], entry_cols[hit]] = True
                        keep = ~hit
                        entry_rows = entry_rows[keep]
                        entry_cols = entry_cols[keep]
                        entry_p = entry_p[keep]
                if telemetry_on:
                    active_cells += int(entry_rows.size)
                if (
                    state_block is None
                    or round_index >= state_block_base + state_block_rounds
                ):
                    state_block_base = round_index
                    block = np.arange(
                        state_block_base,
                        state_block_base + state_block_rounds,
                        dtype=np.uint64,
                    )
                    state_block = counter_state(
                        seeds, block[:, np.newaxis], DRAW_BEEP
                    )
                state = state_block[round_index - state_block_base]
                entry_uniforms = counter_uniforms_at(
                    state[entry_rows], entry_cols
                )
                entry_beep = entry_uniforms < entry_p
                beep_rows = entry_rows[entry_beep]
                beep_cols = entry_cols[entry_beep]
                beeps[beep_rows, beep_cols] += 1
                if (
                    self._backend == "dense"
                    and beep_rows.size * max(self._mean_degree, 1.0)
                    > expansion_budget
                ):
                    # Dense beeps (typical right after the handoff): one
                    # batched GEMM over the staged beep entries beats
                    # expanding their neighbour lists.
                    staged = self._flags32[: num_graphs * width]
                    staged[:] = 0.0
                    staged[padded_row[beep_rows], beep_cols] = 1.0
                    if (
                        self._counts32 is None
                        or self._counts32.shape[0] < num_graphs * width
                    ):
                        self._counts32 = np.empty(
                            (num_graphs * width, n), dtype=np.float32
                        )
                    counts = self._counts32[: num_graphs * width]
                    np.matmul(
                        staged.reshape(num_graphs, width, n),
                        self._adjacency,
                        out=counts.reshape(num_graphs, width, n),
                    )
                    entry_heard = (
                        counts[padded_row[entry_rows], entry_cols] > 0.0
                    )
                else:
                    # Sparse beeps: scatter the beeping entries' neighbour
                    # lists, gather back at the active entries, then
                    # un-scatter so the buffer stays all-False (cheaper
                    # than a full clear for large n).
                    rows, cols = self._expand(beep_rows, beep_cols, slot_base)
                    if rows.size:
                        heard_buffer[rows, cols] = True
                    entry_heard = heard_buffer[entry_rows, entry_cols]
                    if rows.size:
                        heard_buffer[rows, cols] = False
                if true_entries.size < entry_rows.size:
                    true_entries = np.ones(entry_rows.size, dtype=bool)
                entry_p = rule.update(
                    entry_p,
                    entry_heard,
                    true_entries[: entry_rows.size],
                    round_index,
                )
                entry_joined = entry_beep & ~entry_heard
                joined_rows = entry_rows[entry_joined]
                joined_cols = entry_cols[entry_joined]
                membership[joined_rows, joined_cols] = True
                rows, cols = self._expand(joined_rows, joined_cols, slot_base)
                if rows.size:
                    heard_buffer[rows, cols] = True
                retired = entry_joined | heard_buffer[entry_rows, entry_cols]
                if rows.size:
                    heard_buffer[rows, cols] = False
                keep = ~retired
                entry_rows = entry_rows[keep]
                entry_cols = entry_cols[keep]
                entry_p = entry_p[keep]
                surviving = np.zeros(total, dtype=bool)
                surviving[entry_rows] = True
                rounds[alive & ~surviving] = round_index + 1
                alive = surviving
                round_index += 1
        # ---------------- assemble per-graph runs ----------------
        if telemetry_on:
            probes.count("engine.armada.runs")
            probes.count("engine.armada.graphs", num_graphs)
            probes.count("engine.armada.trials", total)
            probes.count("engine.armada.rounds", round_index)
            probes.count("engine.armada.dense_rounds", dense_rounds)
            probes.count(
                "engine.armada.frontier_rounds", round_index - dense_rounds
            )
            probes.count(f"engine.backend.{self._backend}")
            if has_churn:
                probes.count(
                    "engine.churn.events",
                    total * len(churn_schedule.events),
                )
                resolved = churn.repair[churn.repair >= 0]
                if resolved.size:
                    probes.gauge(
                        "engine.repair.rounds", float(resolved.mean())
                    )
            if round_index and total and n:
                probes.gauge(
                    "engine.armada.active_fraction",
                    active_cells / (round_index * total * n),
                )
        absent = churn.absent_mask() if has_churn else None
        runs: List[FleetRun] = []
        offset = 0
        for g, size in enumerate(sizes):
            block = slice(offset, offset + size)
            run = FleetRun(
                rule_name=rule.name,
                num_vertices=n,
                trials=size,
                rounds=rounds[block].copy(),
                membership=membership[block].copy(),
                beeps_by_node=beeps[block].copy(),
                crashed=(
                    crashed[block].copy() if crash_masks else None
                ),
                absent=(
                    absent[block].copy() if absent is not None else None
                ),
                repair_rounds=(
                    churn.repair[block].copy() if has_churn else None
                ),
                recovered=(
                    recovered[block].copy() if has_churn else None
                ),
            )
            if validate:
                for trial in range(size):
                    if not run.trial_recovered(trial):
                        continue
                    verify_mis(
                        self._graphs[g],
                        run.mis_set(trial),
                        crashed=run.crashed_set(trial),
                        absent=run.absent_set(trial),
                    )
            runs.append(run)
            offset += size
        return runs
