"""Trial-parallel fleet engine: all trials of one batch in lockstep.

The per-trial engines (:class:`~repro.engine.simulator.VectorizedSimulator`,
:class:`~repro.engine.sparse.SparseSimulator`) vectorise over *vertices* but
still pay one Python round-loop per trial, so a 100-trial figure point costs
100 interpreted loops.  This engine vectorises over vertices *and* trials:
the whole batch is a ``(trials, n)`` boolean tensor advanced one round at a
time —

- ``beep = active & (U < P)`` with one fresh uniform row per live trial;
- ``heard``: one batched matmul against the adjacency (dense backend) or
  one ``add.reduceat`` pass over the CSR neighbour lists (sparse backend);
- per-trial early exit through an alive-mask: finished trials drop out of
  the random drawing and the matmul, and their round counts freeze.

Fault injection is vectorised the same way (:mod:`repro.beeping.faults`):
beep loss and spurious beeps are per-node Bernoulli masks on the
``(trials, n)`` tensors — loss collapses each listener's ``k`` independent
edge deliveries into one draw against ``1 - loss**k``, with ``k`` the
beeping-neighbour counts both backends already compute — and a
:class:`~repro.beeping.faults.CrashSchedule` is a per-round active-mask
update shared by every live trial.  Faults perturb only the *first*
exchange (the ``heard`` fed to the probability rule); joins and
retirements come from the true beep tensor, so every trial's output stays
a valid independent set, maximal over the surviving vertices.

Bit-reproducibility contract
----------------------------
Trial ``t`` of a fleet run seeded with
``derive_seed_block(master_seed, graph_index, count=trials)`` consumes the
exact random stream of a per-trial run seeded with
``derive_seed(master_seed, graph_index, t)``: every live trial draws
``Generator.random(n)`` once per round from its own generator — then once
per enabled fault kind (loss uniforms, then spurious uniforms) — and both
backends compute the same ``heard`` booleans as the per-trial engines.
Round counts, MIS membership, beep counts and crash sets therefore agree
*bit for bit* with the per-trial loop, with or without faults — the
conformance suite in ``tests/engine/test_conformance.py`` enforces this.

The lockstep schedule requires the probability rule to be elementwise
(``ProbabilityRule.trial_parallel``); the three paper rules qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import (
    DEFAULT_MAX_ROUNDS,
    EngineRun,
    faulty_observation,
)
from repro.engine.sparse import build_csr
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis

#: Largest vertex count for which the ``auto`` backend picks the dense
#: (float32 GEMM) path; a 4096^2 float32 adjacency is 64 MB.
DENSE_VERTEX_LIMIT = 4096


@dataclass
class FleetRun:
    """Per-trial outcomes of one fleet simulation.

    Row ``t`` of every array is trial ``t``; :meth:`trial_run` re-packages a
    row as the :class:`~repro.engine.simulator.EngineRun` the per-trial
    engines return.
    """

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    membership: np.ndarray
    beeps_by_node: np.ndarray
    beep_history: Optional[np.ndarray] = None
    #: ``(trials, n)`` crash indicators; ``None`` when the fault model
    #: scheduled no crashes (the overwhelmingly common case).
    crashed: Optional[np.ndarray] = None

    @property
    def mean_beeps(self) -> np.ndarray:
        """Per-trial mean beeps per node (``BatchResult.mean_beeps``)."""
        if self.num_vertices == 0:
            return np.zeros(self.trials, dtype=np.float64)
        return self.beeps_by_node.sum(axis=1) / float(self.num_vertices)

    def mis_set(self, trial: int) -> Set[int]:
        """The MIS selected by one trial."""
        return {int(v) for v in np.flatnonzero(self.membership[trial])}

    def crashed_set(self, trial: int) -> Set[int]:
        """The vertices that crashed during one trial."""
        if self.crashed is None:
            return set()
        return {int(v) for v in np.flatnonzero(self.crashed[trial])}

    def trial_run(self, trial: int) -> EngineRun:
        """One trial's outcome in the per-trial engines' result type."""
        return EngineRun(
            rule_name=self.rule_name,
            num_vertices=self.num_vertices,
            rounds=int(self.rounds[trial]),
            mis=self.mis_set(trial),
            beeps_by_node=self.beeps_by_node[trial].copy(),
            crashed=self.crashed_set(trial),
        )


class FleetSimulator:
    """Runs one rule on one graph for a whole fleet of trials at once.

    ``backend`` selects how the one-bit OR observation is computed:

    - ``"dense"``: ``(trials, n) @ (n, n)`` float32 GEMM.  Exact (counts are
      small integers) and BLAS-fast; memory is the n x n adjacency.
    - ``"sparse"``: gather + ``add.reduceat`` over CSR neighbour lists,
      O(trials * (n + m)) per round; the large-sparse-graph path.
    - ``"auto"`` (default): dense up to :data:`DENSE_VERTEX_LIMIT` vertices,
      sparse beyond.

    Both backends produce identical booleans, so backend choice never
    changes results — only speed and memory.
    """

    def __init__(
        self,
        graph: Graph,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if backend not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"backend must be 'auto', 'dense' or 'sparse', got {backend!r}"
            )
        self._graph = graph
        self._max_rounds = max_rounds
        n = graph.num_vertices
        if backend == "auto":
            backend = "dense" if n <= DENSE_VERTEX_LIMIT else "sparse"
        self._backend = backend
        if backend == "dense":
            self._adjacency = graph.adjacency_matrix().astype(np.float32)
        else:
            self._columns, self._starts, self._isolated = build_csr(graph)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def _neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise: whether any neighbour's flag is set, per vertex."""
        if self._backend == "dense":
            k, n = flags.shape
            if n == 0:
                return np.zeros((k, 0), dtype=bool)
            # Compare the float counts directly: the fault-free hot path
            # skips _neighbor_counts's int64 conversion.
            counts = flags.astype(np.float32) @ self._adjacency
            return counts > 0.0
        return self._neighbor_counts(flags) > 0

    def _scattered_neighbor_or(
        self, flags: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Neighbour-OR computed only on live rows, zero elsewhere."""
        if live.size == flags.shape[0]:
            return self._neighbor_or(flags)
        result = np.zeros(flags.shape, dtype=bool)
        result[live] = self._neighbor_or(flags[live])
        return result

    def _neighbor_counts(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise beeping-neighbour counts (int64), per vertex."""
        k, n = flags.shape
        if n == 0:
            return np.zeros((k, 0), dtype=np.int64)
        if self._backend == "dense":
            # float32 GEMM counts are exact small integers (degree < 2^24).
            counts = flags.astype(np.float32) @ self._adjacency
            return counts.astype(np.int64)
        if self._columns.size == 0:
            return np.zeros((k, n), dtype=np.int64)
        # One trailing zero column keeps every (unclamped) start in range,
        # so trailing empty segments never truncate the last real segment
        # (see build_csr).
        gathered = np.zeros((k, self._columns.size + 1), dtype=np.int32)
        gathered[:, :-1] = flags[:, self._columns]
        counts = np.add.reduceat(gathered, self._starts, axis=1)
        # Empty segments (isolated vertices) yield garbage sums; zero them.
        counts[:, self._isolated] = 0
        return counts.astype(np.int64)

    def _scattered_neighbor_counts(
        self, flags: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Neighbour counts computed only on live rows, zero elsewhere."""
        if live.size == flags.shape[0]:
            return self._neighbor_counts(flags)
        result = np.zeros(flags.shape, dtype=np.int64)
        result[live] = self._neighbor_counts(flags[live])
        return result

    def run_fleet(
        self,
        rule: ProbabilityRule,
        seeds: Sequence[int],
        validate: bool = False,
        record_beeps: bool = False,
        faults: FaultModel = NO_FAULTS,
    ) -> FleetRun:
        """Simulate one independent trial per seed, all in lockstep.

        ``record_beeps=True`` additionally returns the full round-by-round
        beep tensor (``(rounds, trials, n)``) for trace tests; leave it off
        for large runs.  ``faults`` applies the same fault model to every
        trial; a fault-free model draws no extra randomness, so the run is
        bit-identical to one without the argument.
        """
        if len(seeds) < 1:
            raise ValueError("need at least one seed")
        if not getattr(rule, "trial_parallel", False):
            raise ValueError(
                f"rule {rule.name!r} is not trial-parallel; "
                "use the per-trial loop instead"
            )
        n = self._graph.num_vertices
        trials = len(seeds)
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        noisy = loss > 0.0 or spurious > 0.0
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = (
            np.zeros((trials, n), dtype=bool) if crash_masks else None
        )
        generators = [np.random.default_rng(int(seed)) for seed in seeds]
        active = np.ones((trials, n), dtype=bool)
        membership = np.zeros((trials, n), dtype=bool)
        probabilities = np.broadcast_to(
            rule.initial(n), (trials, n)
        ).astype(np.float64, copy=True)
        beeps = np.zeros((trials, n), dtype=np.int64)
        rounds = np.zeros(trials, dtype=np.int64)
        uniforms = np.empty((trials, n), dtype=np.float64)
        loss_uniforms = (
            np.empty((trials, n), dtype=np.float64) if loss > 0.0 else None
        )
        spurious_uniforms = (
            np.empty((trials, n), dtype=np.float64) if spurious > 0.0 else None
        )
        history = [] if record_beeps else None
        alive = active.any(axis=1)
        round_index = 0
        while alive.any():
            if round_index >= self._max_rounds:
                raise RuntimeError(
                    f"fleet simulation exceeded {self._max_rounds} rounds"
                )
            crash = crash_masks.get(round_index)
            if crash is not None:
                # Fail-stop at the start of the round.  Finished trials
                # have all-False active rows, so the crash never reaches
                # them — exactly like the per-trial loop, which stops
                # executing rounds at termination.
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            live = np.flatnonzero(alive)
            # One pass over the live trials draws all enabled uniform rows;
            # generators are per-trial, so only the within-trial order
            # (beep, then loss, then spurious) affects the streams.
            for t in live:
                uniforms[t] = generators[t].random(n)
                if loss > 0.0:
                    loss_uniforms[t] = generators[t].random(n)
                if spurious > 0.0:
                    spurious_uniforms[t] = generators[t].random(n)
            # Dead rows keep stale uniforms, but their active row is
            # all-False so beep stays all-False there.
            beep = active & (uniforms < probabilities)
            if noisy:
                counts = self._scattered_neighbor_counts(beep, live)
                heard_true = counts > 0
                # Stale fault uniforms on dead rows could flip their heard
                # bits; mask them off (their probabilities are unused, but
                # keep the tensors clean).
                heard = faulty_observation(
                    counts, loss, spurious, loss_uniforms, spurious_uniforms
                ) & alive[:, None]
            else:
                heard_true = self._scattered_neighbor_or(beep, live)
                heard = heard_true
            probabilities = rule.update(probabilities, heard, active, round_index)
            # Second exchange stays reliable: joins come from the true OR.
            joined = beep & ~heard_true
            membership |= joined
            neighbor_joined = self._scattered_neighbor_or(joined, live)
            beeps += beep
            active &= ~(joined | neighbor_joined)
            if record_beeps:
                history.append(beep.copy())
            still_alive = active.any(axis=1)
            rounds[alive & ~still_alive] = round_index + 1
            alive = still_alive
            round_index += 1
        run = FleetRun(
            rule_name=rule.name,
            num_vertices=n,
            trials=trials,
            rounds=rounds,
            membership=membership,
            beeps_by_node=beeps,
            beep_history=(
                np.array(history, dtype=bool).reshape(len(history), trials, n)
                if record_beeps
                else None
            ),
            crashed=crashed,
        )
        if validate:
            for trial in range(trials):
                verify_mis(
                    self._graph,
                    run.mis_set(trial),
                    crashed=run.crashed_set(trial),
                )
        return run
