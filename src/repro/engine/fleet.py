"""Trial-parallel fleet engine: all trials of one batch in lockstep.

The per-trial engines (:class:`~repro.engine.simulator.VectorizedSimulator`,
:class:`~repro.engine.sparse.SparseSimulator`) vectorise over *vertices* but
still pay one Python round-loop per trial, so a 100-trial figure point costs
100 interpreted loops.  This engine vectorises over vertices *and* trials:
the whole batch is a ``(trials, n)`` boolean tensor advanced one round at a
time —

- ``beep = active & (U < P)`` with one fresh uniform row per live trial;
- ``heard``: one batched matmul against the adjacency (dense backend) or
  one ``add.reduceat`` pass over the CSR neighbour lists (sparse backend);
- per-trial early exit through an alive-mask: finished trials drop out of
  the random drawing and the matmul, and their round counts freeze.

Bit-reproducibility contract
----------------------------
Trial ``t`` of a fleet run seeded with
``derive_seed_block(master_seed, graph_index, count=trials)`` consumes the
exact random stream of a per-trial run seeded with
``derive_seed(master_seed, graph_index, t)``: every live trial draws
``Generator.random(n)`` once per round from its own generator, and both
backends compute the same ``heard`` booleans as the per-trial engines.
Round counts, MIS membership and beep counts therefore agree *bit for bit*
with the per-trial loop — the conformance suite in
``tests/engine/test_conformance.py`` enforces this.

The lockstep schedule requires the probability rule to be elementwise
(``ProbabilityRule.trial_parallel``); the three paper rules qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set

import numpy as np

from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import DEFAULT_MAX_ROUNDS, EngineRun
from repro.engine.sparse import build_csr
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis

#: Largest vertex count for which the ``auto`` backend picks the dense
#: (float32 GEMM) path; a 4096^2 float32 adjacency is 64 MB.
DENSE_VERTEX_LIMIT = 4096


@dataclass
class FleetRun:
    """Per-trial outcomes of one fleet simulation.

    Row ``t`` of every array is trial ``t``; :meth:`trial_run` re-packages a
    row as the :class:`~repro.engine.simulator.EngineRun` the per-trial
    engines return.
    """

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    membership: np.ndarray
    beeps_by_node: np.ndarray
    beep_history: Optional[np.ndarray] = None

    @property
    def mean_beeps(self) -> np.ndarray:
        """Per-trial mean beeps per node (``BatchResult.mean_beeps``)."""
        if self.num_vertices == 0:
            return np.zeros(self.trials, dtype=np.float64)
        return self.beeps_by_node.sum(axis=1) / float(self.num_vertices)

    def mis_set(self, trial: int) -> Set[int]:
        """The MIS selected by one trial."""
        return {int(v) for v in np.flatnonzero(self.membership[trial])}

    def trial_run(self, trial: int) -> EngineRun:
        """One trial's outcome in the per-trial engines' result type."""
        return EngineRun(
            rule_name=self.rule_name,
            num_vertices=self.num_vertices,
            rounds=int(self.rounds[trial]),
            mis=self.mis_set(trial),
            beeps_by_node=self.beeps_by_node[trial].copy(),
        )


class FleetSimulator:
    """Runs one rule on one graph for a whole fleet of trials at once.

    ``backend`` selects how the one-bit OR observation is computed:

    - ``"dense"``: ``(trials, n) @ (n, n)`` float32 GEMM.  Exact (counts are
      small integers) and BLAS-fast; memory is the n x n adjacency.
    - ``"sparse"``: gather + ``add.reduceat`` over CSR neighbour lists,
      O(trials * (n + m)) per round; the large-sparse-graph path.
    - ``"auto"`` (default): dense up to :data:`DENSE_VERTEX_LIMIT` vertices,
      sparse beyond.

    Both backends produce identical booleans, so backend choice never
    changes results — only speed and memory.
    """

    def __init__(
        self,
        graph: Graph,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if backend not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"backend must be 'auto', 'dense' or 'sparse', got {backend!r}"
            )
        self._graph = graph
        self._max_rounds = max_rounds
        n = graph.num_vertices
        if backend == "auto":
            backend = "dense" if n <= DENSE_VERTEX_LIMIT else "sparse"
        self._backend = backend
        if backend == "dense":
            self._adjacency = graph.adjacency_matrix().astype(np.float32)
        else:
            self._columns, self._starts, self._isolated = build_csr(graph)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def _neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise: whether any neighbour's flag is set, per vertex."""
        k, n = flags.shape
        if n == 0:
            return np.zeros((k, 0), dtype=bool)
        if self._backend == "dense":
            counts = flags.astype(np.float32) @ self._adjacency
            return counts > 0.0
        if self._columns.size == 0:
            return np.zeros((k, n), dtype=bool)
        # One trailing zero column keeps every (unclamped) start in range,
        # so trailing empty segments never truncate the last real segment
        # (see build_csr).
        gathered = np.zeros((k, self._columns.size + 1), dtype=np.int32)
        gathered[:, :-1] = flags[:, self._columns]
        sums = np.add.reduceat(gathered, self._starts, axis=1)
        result = sums > 0
        result[:, self._isolated] = False
        return result

    def _scattered_neighbor_or(
        self, flags: np.ndarray, live: np.ndarray
    ) -> np.ndarray:
        """Neighbour-OR computed only on live rows, zero elsewhere."""
        if live.size == flags.shape[0]:
            return self._neighbor_or(flags)
        result = np.zeros(flags.shape, dtype=bool)
        result[live] = self._neighbor_or(flags[live])
        return result

    def run_fleet(
        self,
        rule: ProbabilityRule,
        seeds: Sequence[int],
        validate: bool = False,
        record_beeps: bool = False,
    ) -> FleetRun:
        """Simulate one independent trial per seed, all in lockstep.

        ``record_beeps=True`` additionally returns the full round-by-round
        beep tensor (``(rounds, trials, n)``) for trace tests; leave it off
        for large runs.
        """
        if len(seeds) < 1:
            raise ValueError("need at least one seed")
        if not getattr(rule, "trial_parallel", False):
            raise ValueError(
                f"rule {rule.name!r} is not trial-parallel; "
                "use the per-trial loop instead"
            )
        n = self._graph.num_vertices
        trials = len(seeds)
        generators = [np.random.default_rng(int(seed)) for seed in seeds]
        active = np.ones((trials, n), dtype=bool)
        membership = np.zeros((trials, n), dtype=bool)
        probabilities = np.broadcast_to(
            rule.initial(n), (trials, n)
        ).astype(np.float64, copy=True)
        beeps = np.zeros((trials, n), dtype=np.int64)
        rounds = np.zeros(trials, dtype=np.int64)
        uniforms = np.empty((trials, n), dtype=np.float64)
        history = [] if record_beeps else None
        alive = active.any(axis=1)
        round_index = 0
        while alive.any():
            if round_index >= self._max_rounds:
                raise RuntimeError(
                    f"fleet simulation exceeded {self._max_rounds} rounds"
                )
            live = np.flatnonzero(alive)
            for t in live:
                uniforms[t] = generators[t].random(n)
            # Dead rows keep stale uniforms, but their active row is
            # all-False so beep stays all-False there.
            beep = active & (uniforms < probabilities)
            heard = self._scattered_neighbor_or(beep, live)
            probabilities = rule.update(probabilities, heard, active, round_index)
            joined = beep & ~heard
            membership |= joined
            neighbor_joined = self._scattered_neighbor_or(joined, live)
            beeps += beep
            active &= ~(joined | neighbor_joined)
            if record_beeps:
                history.append(beep.copy())
            still_alive = active.any(axis=1)
            rounds[alive & ~still_alive] = round_index + 1
            alive = still_alive
            round_index += 1
        run = FleetRun(
            rule_name=rule.name,
            num_vertices=n,
            trials=trials,
            rounds=rounds,
            membership=membership,
            beeps_by_node=beeps,
            beep_history=(
                np.array(history, dtype=bool).reshape(len(history), trials, n)
                if record_beeps
                else None
            ),
        )
        if validate:
            for trial in range(trials):
                verify_mis(self._graph, run.mis_set(trial))
        return run
