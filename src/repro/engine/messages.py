"""Vectorised message-passing engine: Luby & Métivier on the fleet fabric.

The per-node implementations in :mod:`repro.algorithms` (``luby.py``,
``metivier.py``, ``local_minimum.py``) run the paper's message-passing
baselines one Python dict/set operation at a time.  This module lifts
them onto the same lockstep tensor fabric the beeping rules use: a whole
batch of trials advances as ``(trials, n)`` arrays (``(slots, n)`` in the
armada form), one neighbour reduction per round serves every trial, and
all randomness comes from the counter-RNG fabric — every draw is a pure
function of ``(seed, round, draw kind, node)``
(:func:`repro.beeping.rng.counter_values` /
:func:`~repro.beeping.rng.counter_uniforms` on the disjoint
``DRAW_VALUE`` / ``DRAW_MARK`` / ``DRAW_IDS`` domains).  There is no
``"stream"`` mode here: message kernels are counter-only by design, so
batching never has generator state to thread through.

The kernel API
--------------
A :class:`MessageRule` describes one round as a *priority contest*: it
returns per-vertex ``uint64`` keys plus a candidate mask, and a vertex
joins the MIS iff it is a candidate whose key is **strictly smaller**
than every candidate neighbour's key (the masked neighbour-minimum
reduction).  All four baselines fit this shape:

- :class:`LubyPermutationRule` — keys are fresh 64-bit priority values;
  candidates are the active vertices (smallest value wins).
- :class:`MetivierRule` — the same contest, but bits are accounted
  per-edge by common-prefix length, mirroring the bit-by-bit revelation
  of Métivier et al.
- :class:`LubyProbabilityRule` — vertices mark themselves with
  probability ``1/(2·deg)``; candidates are the marked vertices and keys
  order them by *descending* ``(active degree, id)``, so the marked-degree
  compare resolves conflicts exactly as the per-node reference does.
- :class:`LocalMinimumRule` — keys are a per-trial random ID permutation
  drawn once (round 0 of the ``DRAW_IDS`` domain) and reused each round.

Backends
--------
The masked neighbour-minimum runs on both existing reduction styles:

- ``"dense"``: a chunked full-adjacency sweep — the GEMM-shaped
  ``O(n^2)`` pass of the dense beeping backend, expressed as a masked
  ``minimum`` reduction over adjacency blocks (numpy has no (min, ·)
  semiring GEMM, so the sweep is blocked to bound the broadcast
  temporary);
- ``"sparse"``: ``np.minimum.reduceat`` over the shared CSR neighbour
  lists (:func:`repro.engine.sparse.build_csr`), ``O(n + m)`` per round.

Both compute the exact minimum of the same ``uint64`` sets, so backend
choice never changes results — the dense/sparse bit-equality contract of
the beeping engines holds here too, as does the fleet/armada one:
slot ``(g, t)`` of a :class:`MessageArmadaSimulator` batch equals trial
``t`` of ``MessageFleetSimulator(graphs[g])`` bit for bit.  The per-node
reference implementations consume randomness differently
(``random.Random``) and agree in law only — same MIS-validity
invariants, matching round-count distributions — which
``tests/engine/test_messages.py`` enforces.

Ties: two adjacent candidates holding the *same* key (probability
``2^-64`` per pair per round for the value-based rules; impossible for
the id-keyed ones) simply both stay active for the next round's fresh
draws, so a tie can delay but never corrupt the output.

Accounting mirrors the per-node reference: each round, every active
vertex sends one value to each active neighbour (``messages``), charged
at :meth:`MessageRule.bits_per_value` bits per message — except Métivier,
whose per-edge charge is one more bit than the endpoints' common value
prefix, both directions (:attr:`MessageRule.prefix_bits`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.beeping.rng import (
    DRAW_IDS,
    DRAW_MARK,
    DRAW_VALUE,
    counter_uniforms,
    counter_values,
    seed_array,
)
from repro.engine.fleet import DENSE_VERTEX_LIMIT
from repro.engine.simulator import DEFAULT_MAX_ROUNDS
from repro.engine.sparse import build_csr, csr_row_counts
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

#: "No candidate neighbour" in the masked-minimum reduction.  A real key
#: can collide with it only at probability 2^-64 per draw (value-based
#: rules); the collision merely postpones that vertex's join by a round.
KEY_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Métivier values are full 64-bit strings, like the reference's
#: ``getrandbits(64)``; equal values cost the whole precision.
VALUE_BITS = 64

#: Element budget of one dense masked-min broadcast block (uint64), ~16 MB.
_DENSE_MIN_CHUNK_ELEMENTS = 1 << 21


def _bits_to_separate_u64(xor: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.algorithms.metivier._bits_to_separate`.

    ``xor`` holds ``a ^ b`` per compared pair (uint64, any shape); the
    result is the number of bits revealed until the values first differ:
    ``VALUE_BITS - bit_length(xor) + 1``, and the full ``VALUE_BITS`` for
    equal values.  Exact: the float64 ``frexp`` exponent overshoots the
    true bit length by at most one (when the conversion rounds up to the
    next power of two), which one shift test corrects.
    """
    exponent = np.frexp(xor.astype(np.float64))[1].astype(np.int64)
    exponent = np.minimum(exponent, VALUE_BITS)
    shift = np.clip(exponent - 1, 0, 63).astype(np.uint64)
    positive = xor > 0
    overshoot = positive & ((xor >> shift) == 0)
    bit_length = exponent - overshoot
    separated = (VALUE_BITS + 1) - bit_length
    separated[~positive] = VALUE_BITS
    return separated


class MessageRule(ABC):
    """One message-passing MIS algorithm as a per-round priority contest.

    Like :class:`~repro.engine.rules.ProbabilityRule`, a rule is written
    against lockstep batches: every method takes and returns ``(rows, n)``
    arrays, one row per concurrent trial (or armada slot).  All rules are
    trial-parallel by construction — they draw from the stateless counter
    fabric, so rows never share state.

    ``state`` is a per-run scratch dict the engine threads through the
    round loop: rules stash per-run constants (the ID permutation) or
    per-round intermediates the accounting needs (Métivier's values).
    """

    #: Message rules always batch; kept for symmetry with ProbabilityRule.
    trial_parallel = True

    #: True for rules whose bit accounting is per-edge common-prefix
    #: length (Métivier) instead of ``messages * bits_per_value``.
    prefix_bits = False

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable identifier matching the algorithm registry."""

    @abstractmethod
    def bits_per_value(self, num_vertices: int) -> int:
        """Bits charged per exchanged message (ignored when
        :attr:`prefix_bits` is set)."""

    @abstractmethod
    def round_keys(
        self,
        seeds: np.ndarray,
        round_index: int,
        counts: np.ndarray,
        active: np.ndarray,
        state: Dict[str, np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The round's ``(keys, candidates)`` pair.

        ``seeds`` are the per-row uint64 trial seeds, ``counts`` the
        active-neighbour counts and ``active`` the activity mask (both
        ``(rows, n)``).  Returns uint64 ``keys`` and a boolean candidate
        mask (a subset of ``active``); the engine joins every candidate
        whose key is strictly below the masked neighbour minimum.
        """


class LubyPermutationRule(MessageRule):
    """Luby's random-priority variant: smallest fresh value wins."""

    @property
    def name(self) -> str:
        return "luby-permutation"

    def bits_per_value(self, num_vertices: int) -> int:
        # The textbook O(log n) accounting, as in algorithms/luby.py.
        return max(1, (max(num_vertices, 2) - 1).bit_length())

    def round_keys(self, seeds, round_index, counts, active, state):
        values = counter_values(
            seeds, round_index, DRAW_VALUE, active.shape[1]
        )
        state["values"] = values
        return values, active


class MetivierRule(LubyPermutationRule):
    """Métivier et al.: the same contest, bit-by-bit value revelation.

    Joins are identical in law to :class:`LubyPermutationRule` (both are
    the local-minimum-of-fresh-values rule); only the accounting differs
    — per active edge, one more bit than the endpoints' common value
    prefix, charged in both directions.
    """

    prefix_bits = True

    @property
    def name(self) -> str:
        return "metivier"

    def bits_per_value(self, num_vertices: int) -> int:
        return VALUE_BITS


class LubyProbabilityRule(MessageRule):
    """Luby's marking variant: ``1/(2·deg)`` marks, degree-compare ties.

    Among adjacent marked vertices the *larger* ``(active degree, id)``
    key survives — exactly the per-node reference's resolution, where
    the smaller key unmarks.  Keys are flipped (``max - composite``) so
    the shared strictly-smallest-key-wins reduction applies unchanged;
    they are unique per vertex, so the contest never ties.
    """

    @property
    def name(self) -> str:
        return "luby-probability"

    def bits_per_value(self, num_vertices: int) -> int:
        return max(1, (max(num_vertices, 2) - 1).bit_length())

    def round_keys(self, seeds, round_index, counts, active, state):
        n = active.shape[1]
        uniforms = counter_uniforms(seeds, round_index, DRAW_MARK, n)
        # Isolated-in-the-active-graph vertices mark with probability 1.
        probability = np.where(
            counts > 0, 0.5 / np.maximum(counts, 1), 1.0
        )
        marked = active & (uniforms < probability)
        ids = np.arange(n, dtype=np.uint64)
        composite = counts.astype(np.uint64) * np.uint64(n + 1) + ids
        keys = np.uint64((n + 1) * (n + 1)) - composite
        return keys, marked


class LocalMinimumRule(MessageRule):
    """Deterministic local-minimum-ID MIS on a per-trial random ID draw.

    The ID permutation is the rank vector of one ``DRAW_IDS`` uniform row
    drawn at counter round 0 — a uniformly random permutation per trial,
    matching the reference's ``rng.shuffle`` in law — and is fixed for
    the whole run, so every round is the deterministic ID contest.
    """

    @property
    def name(self) -> str:
        return "local-minimum-id"

    def bits_per_value(self, num_vertices: int) -> int:
        return max(1, (num_vertices - 1).bit_length()) if num_vertices > 1 else 1

    def round_keys(self, seeds, round_index, counts, active, state):
        ids = state.get("ids")
        if ids is None:
            n = active.shape[1]
            uniforms = counter_uniforms(seeds, 0, DRAW_IDS, n)
            order = np.argsort(uniforms, axis=1, kind="stable")
            ids = np.empty_like(order)
            rows = np.arange(order.shape[0])[:, np.newaxis]
            ids[rows, order] = np.arange(n, dtype=np.int64)
            ids = ids.astype(np.uint64)
            state["ids"] = ids
        return ids, active


def check_message_run(rule: "MessageRule", faults, rng_mode: str) -> None:
    """The shared entry-point guard: counter fabric only, no faults.

    Every driver that can receive a message rule (``run_batch``,
    ``run_batch_loop``, ``run_fleet_trials``) funnels through this one
    check so the restriction — and its error wording — cannot drift
    between entry points.
    """
    if rng_mode != "counter":
        raise ValueError(
            f"message rule {rule.name!r} runs the counter fabric only; "
            "pass rng_mode='counter'"
        )
    if not faults.is_fault_free:
        raise ValueError(
            f"message rule {rule.name!r} does not support fault injection"
        )


#: The message rules the fleet fabric can run, by registry name.
MESSAGE_RULES = {
    "luby-permutation": LubyPermutationRule,
    "luby-probability": LubyProbabilityRule,
    "metivier": MetivierRule,
    "local-minimum-id": LocalMinimumRule,
}


@dataclass
class MessageFleetRun:
    """Per-trial outcomes of one message-passing fleet simulation.

    Row ``t`` of every array is trial ``t``.  ``messages`` and ``bits``
    carry the reference implementations' accounting (module docstring);
    message algorithms do not beep, so there is no beep tensor.
    """

    rule_name: str
    num_vertices: int
    trials: int
    rounds: np.ndarray
    membership: np.ndarray
    messages: np.ndarray
    bits: np.ndarray

    def mis_set(self, trial: int) -> Set[int]:
        """The MIS selected by one trial."""
        return {int(v) for v in np.flatnonzero(self.membership[trial])}


class _MessageKernel:
    """One graph's neighbour reductions, on one backend.

    Everything a round needs from the topology: active-neighbour counts
    (the count reduction the beeping engines already use), the masked
    neighbour-minimum (the priority contest), the boolean neighbour-OR
    (retiring joiners' neighbours) and the per-edge accounting arrays.
    """

    def __init__(self, graph: Graph, backend: str) -> None:
        self._graph = graph
        self._n = graph.num_vertices
        self._backend = backend
        self._columns, self._starts, self._isolated = build_csr(graph)
        if backend == "dense":
            self._adjacency_bool = graph.adjacency_matrix().astype(bool)
            self._adjacency_f32 = self._adjacency_bool.astype(np.float32)
        self._edge_pair: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def counts(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise flagged-neighbour counts (int64), per vertex."""
        k, n = flags.shape
        if n == 0:
            return np.zeros((k, 0), dtype=np.int64)
        if self._backend == "dense":
            # float32 GEMM counts are exact small integers (degree < 2^24).
            counts = flags.astype(np.float32) @ self._adjacency_f32
            return counts.astype(np.int64)
        return csr_row_counts(
            flags, self._columns, self._starts, self._isolated
        )

    def neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """Row-wise: whether any neighbour's flag is set, per vertex."""
        return self.counts(flags) > 0

    def masked_min(self, keys: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per vertex: the minimum key among masked neighbours.

        Unmasked (and absent) neighbours contribute :data:`KEY_SENTINEL`,
        so a vertex with no masked neighbour gets the sentinel back.
        Dense and sparse compute the exact minimum of identical uint64
        sets, hence identical outputs.
        """
        k, n = keys.shape
        result = np.full((k, n), KEY_SENTINEL, dtype=np.uint64)
        if n == 0 or k == 0:
            return result
        masked = np.where(mask, keys, KEY_SENTINEL)
        if self._backend == "dense":
            # Blocked full-adjacency sweep: numpy has no (min, x) GEMM, so
            # the O(n^2) pass broadcasts adjacency blocks against the key
            # rows, bounded to _DENSE_MIN_CHUNK_ELEMENTS per temporary.
            chunk = max(1, _DENSE_MIN_CHUNK_ELEMENTS // max(k * n, 1))
            for lo in range(0, n, chunk):
                hi = min(lo + chunk, n)
                contribution = np.where(
                    self._adjacency_bool[lo:hi][np.newaxis, :, :],
                    masked[:, lo:hi, np.newaxis],
                    KEY_SENTINEL,
                )
                np.minimum(result, contribution.min(axis=1), out=result)
            return result
        if self._columns.size == 0:
            return result
        gathered = np.full(
            (k, self._columns.size + 1), KEY_SENTINEL, dtype=np.uint64
        )
        gathered[:, :-1] = masked[:, self._columns]
        minima = np.minimum.reduceat(gathered, self._starts, axis=1)
        # Empty segments (isolated vertices) reduce to garbage; mask them.
        minima[:, self._isolated] = KEY_SENTINEL
        return minima

    def edge_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once, as ``(u, v)`` arrays with u < v."""
        if self._edge_pair is None:
            degrees = np.diff(np.append(self._starts, self._columns.size))
            rows = np.repeat(
                np.arange(self._n, dtype=np.int64), degrees
            )
            once = rows < self._columns
            self._edge_pair = (rows[once], self._columns[once])
        return self._edge_pair

    def prefix_round_bits(
        self, values: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Métivier's per-trial bit charge for one round.

        For each edge with both endpoints active, both endpoints send one
        more bit than the common prefix of their 64-bit values.
        """
        edge_u, edge_v = self.edge_pairs()
        k = values.shape[0]
        if edge_u.size == 0:
            return np.zeros(k, dtype=np.int64)
        both_active = active[:, edge_u] & active[:, edge_v]
        separated = _bits_to_separate_u64(
            values[:, edge_u] ^ values[:, edge_v]
        )
        return 2 * (separated * both_active).sum(axis=1)


def _run_message_lockstep(
    rule: MessageRule,
    seeds: np.ndarray,
    blocks: Sequence[Tuple[_MessageKernel, slice]],
    num_vertices: int,
    max_rounds: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The shared round loop over ``(rows, n)`` lockstep tensors.

    ``blocks`` assigns contiguous row ranges to per-graph kernels (one
    block for a fleet run, one per graph for an armada batch); the
    reductions are block-diagonal by construction, so every row evolves
    exactly as it would in a lone single-graph batch.  Returns
    ``(rounds, membership, messages, bits)``.
    """
    if not isinstance(rule, MessageRule):
        raise TypeError(
            f"need a MessageRule, got {type(rule).__name__!r}; probability "
            "rules run on FleetSimulator/ArmadaSimulator instead"
        )
    total = int(seeds.size)
    n = num_vertices
    active = np.ones((total, n), dtype=bool)
    membership = np.zeros((total, n), dtype=bool)
    counts = np.zeros((total, n), dtype=np.int64)
    neighbor_min = np.full((total, n), KEY_SENTINEL, dtype=np.uint64)
    retired = np.zeros((total, n), dtype=bool)
    messages = np.zeros(total, dtype=np.int64)
    bits = np.zeros(total, dtype=np.int64)
    rounds = np.zeros(total, dtype=np.int64)
    state: Dict[str, np.ndarray] = {}
    alive = active.any(axis=1)
    round_index = 0
    while alive.any():
        if round_index >= max_rounds:
            raise RuntimeError(
                f"message simulation exceeded {max_rounds} rounds"
            )
        # Per-block reductions touch only the block's live rows; finished
        # rows keep stale values, which the all-False active mask ignores.
        live_blocks = []
        for kernel, block in blocks:
            rows = np.flatnonzero(alive[block])
            if rows.size == 0:
                continue
            rows += block.start
            live_blocks.append((kernel, rows))
            counts[rows] = kernel.counts(active[rows])
        keys, candidates = rule.round_keys(
            seeds, round_index, counts, active, state
        )
        candidates = candidates & active
        for kernel, rows in live_blocks:
            neighbor_min[rows] = kernel.masked_min(
                keys[rows], candidates[rows]
            )
        joined = candidates & (keys < neighbor_min)
        membership |= joined
        # Accounting happens against the round-start active set, exactly
        # like the per-node references (joins retire vertices only after
        # the round's exchange is charged).
        round_messages = (counts * active).sum(axis=1)
        messages += round_messages
        if rule.prefix_bits:
            for kernel, rows in live_blocks:
                bits[rows] += kernel.prefix_round_bits(
                    state["values"][rows], active[rows]
                )
        else:
            bits += round_messages * rule.bits_per_value(n)
        retired[:] = joined
        for kernel, rows in live_blocks:
            retired[rows] |= kernel.neighbor_or(joined[rows])
        active &= ~retired
        still_alive = active.any(axis=1)
        rounds[alive & ~still_alive] = round_index + 1
        alive = still_alive
        round_index += 1
    if probes.enabled():
        probes.count("engine.message.runs")
        probes.count("engine.message.rounds", round_index)
        probes.count("engine.message.trials", total)
        if blocks:
            probes.count(f"engine.backend.{blocks[0][0]._backend}")
    return rounds, membership, messages, bits


def _resolve_backend(backend: str, num_graphs: int, n: int) -> str:
    """The ``auto`` policy shared with the beeping fleet/armada."""
    if backend not in ("auto", "dense", "sparse"):
        raise ValueError(
            f"backend must be 'auto', 'dense' or 'sparse', got {backend!r}"
        )
    if backend != "auto":
        return backend
    return (
        "dense" if num_graphs * n * n <= DENSE_VERTEX_LIMIT ** 2 else "sparse"
    )


class MessageFleetSimulator:
    """All trials of one message-passing rule on one graph, in lockstep.

    The message-passing sibling of
    :class:`~repro.engine.fleet.FleetSimulator`: ``run_fleet`` advances a
    ``(trials, n)`` batch one round at a time, with one neighbour-count,
    one masked-min and one neighbour-OR reduction per round for the whole
    batch.  Counter rng mode only (module docstring); trial ``t`` is a
    pure function of ``seeds[t]``, so any sub-batch — including a
    one-trial "loop" over the same seeds — reproduces the matching rows
    bit for bit.
    """

    def __init__(
        self,
        graph: Graph,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._max_rounds = max_rounds
        self._backend = _resolve_backend(backend, 1, graph.num_vertices)
        self._kernel = _MessageKernel(graph, self._backend)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def run_fleet(
        self,
        rule: MessageRule,
        seeds: Sequence[int],
        validate: bool = False,
    ) -> MessageFleetRun:
        """Simulate one independent trial per seed, all in lockstep."""
        seed_row = seed_array(seeds)
        if seed_row.size < 1:
            raise ValueError("need at least one seed")
        rounds, membership, messages, bits = _run_message_lockstep(
            rule,
            seed_row,
            [(self._kernel, slice(0, int(seed_row.size)))],
            self._graph.num_vertices,
            self._max_rounds,
        )
        run = MessageFleetRun(
            rule_name=rule.name,
            num_vertices=self._graph.num_vertices,
            trials=int(seed_row.size),
            rounds=rounds,
            membership=membership,
            messages=messages,
            bits=bits,
        )
        if validate:
            for trial in range(run.trials):
                verify_mis(self._graph, run.mis_set(trial))
        return run


class MessageArmadaSimulator:
    """One lockstep round-loop for several same-``n`` graphs at once.

    The message-passing sibling of
    :class:`~repro.engine.fleet.ArmadaSimulator`: every ``(graph, trial)``
    pair becomes one slot row of a ``(slots, n)`` batch (rows grouped per
    graph), the round loop runs once for the whole cell, and the
    reductions stay block-diagonal — each graph's kernel serves its own
    row block — so slot ``(g, t)`` is bit-identical to trial ``t`` of
    ``MessageFleetSimulator(graphs[g]).run_fleet(rule, seed_rows[g])``.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        backend: str = "auto",
    ) -> None:
        if not graphs:
            raise ValueError("need at least one graph")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        n = graphs[0].num_vertices
        for graph in graphs:
            if graph.num_vertices != n:
                raise ValueError(
                    "armada graphs must share one vertex count, got "
                    f"{n} and {graph.num_vertices}"
                )
        self._graphs = list(graphs)
        self._n = n
        self._max_rounds = max_rounds
        self._backend = _resolve_backend(backend, len(graphs), n)
        self._kernels = [
            _MessageKernel(graph, self._backend) for graph in self._graphs
        ]

    @property
    def graphs(self) -> Sequence[Graph]:
        """The stacked graphs, in slot order."""
        return tuple(self._graphs)

    @property
    def backend(self) -> str:
        """The resolved backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    def run_armada(
        self,
        rule: MessageRule,
        seed_rows: Sequence[Sequence[int]],
        validate: bool = False,
    ) -> List[MessageFleetRun]:
        """Run every graph's trial group in one lockstep batch.

        ``seed_rows[g]`` holds graph ``g``'s trial seeds (rows may have
        different lengths).  Returns one :class:`MessageFleetRun` per
        graph.
        """
        if len(seed_rows) != len(self._graphs):
            raise ValueError(
                f"need one seed row per graph, got {len(seed_rows)} rows "
                f"for {len(self._graphs)} graphs"
            )
        groups = [seed_array(row) for row in seed_rows]
        sizes = [int(group.size) for group in groups]
        if min(sizes) < 1:
            raise ValueError("every graph needs at least one seed")
        seeds = np.concatenate(groups)
        blocks = []
        offset = 0
        for kernel, size in zip(self._kernels, sizes):
            blocks.append((kernel, slice(offset, offset + size)))
            offset += size
        rounds, membership, messages, bits = _run_message_lockstep(
            rule, seeds, blocks, self._n, self._max_rounds
        )
        runs: List[MessageFleetRun] = []
        for (kernel, block), size, graph in zip(
            blocks, sizes, self._graphs
        ):
            run = MessageFleetRun(
                rule_name=rule.name,
                num_vertices=self._n,
                trials=size,
                rounds=rounds[block].copy(),
                membership=membership[block].copy(),
                messages=messages[block].copy(),
                bits=bits[block].copy(),
            )
            if validate:
                for trial in range(size):
                    verify_mis(graph, run.mis_set(trial))
            runs.append(run)
        return runs
