"""Probability-update rules for the vectorised *beeping* engines.

A rule owns the per-vertex beep probability vector: it provides the initial
probabilities and updates them from the round's observations.  The three
probability rules mirror the three beeping algorithms in
:mod:`repro.algorithms`:

- :class:`FeedbackRule`      ↔ :class:`repro.algorithms.FeedbackMIS`
- :class:`SweepRule`         ↔ :class:`repro.algorithms.AfekSweepMIS`
- :class:`GlobalScheduleRule`↔ :class:`repro.algorithms.AfekGlobalMIS`

All operate on full-length numpy vectors; entries of inactive vertices are
carried along but ignored (the simulator masks them out).

The *message-passing* algorithms (the Luby variants, Métivier et al.,
local-minimum-id) have their own kernel API — the sibling
:class:`~repro.engine.messages.MessageRule`, whose per-round exchange is
a neighbour reduction over priority keys rather than a probability
update; see :mod:`repro.engine.messages`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.algorithms.afek_global import global_schedule
from repro.algorithms.afek_sweep import sweep_probability


class ProbabilityRule(ABC):
    """The probability policy of one vectorised simulation run.

    ``initial`` and ``update`` are written against per-trial vectors of
    length n, but the fleet engine calls them with ``(trials, n)`` matrices
    — one row per concurrent trial.  A rule opts into that by setting
    ``trial_parallel = True``, promising its ``update`` is
    elementwise/broadcast-safe and keeps no per-run mutable state, so each
    matrix row evolves exactly as the corresponding vector would.  The
    default is ``False`` — batch drivers then run the per-trial loop with
    a fresh rule instance per trial, which is always safe — so a stateful
    subclass cannot be routed to the fleet by accident.
    """

    #: Whether one instance may drive many lockstep trials at once (opt-in).
    trial_parallel: bool = False

    @abstractmethod
    def initial(self, num_vertices: int) -> np.ndarray:
        """The probability vector for round 0 (float64, length n)."""

    @abstractmethod
    def update(
        self,
        probabilities: np.ndarray,
        heard: np.ndarray,
        active: np.ndarray,
        round_index: int,
    ) -> np.ndarray:
        """The probability vector for the next round.

        Parameters
        ----------
        probabilities:
            Current probabilities (length n).
        heard:
            Boolean vector: vertex heard at least one (noisy) beep.
        active:
            Boolean vector: vertex was active this round.
        round_index:
            0-based index of the round that just ran.
        """

    @property
    def name(self) -> str:
        """Stable identifier matching the algorithm registry."""
        return type(self).__name__


class FeedbackRule(ProbabilityRule):
    """Definition 1 vectorised: halve on hearing, double (cap ½) otherwise.

    The generalised Section 6 parameters are supported exactly as in
    :class:`repro.core.policy.FeedbackNode`.
    """

    trial_parallel = True

    def __init__(
        self,
        initial_probability: float = 0.5,
        decrease_factor: float = 0.5,
        increase_factor: float = 2.0,
        max_probability: float = 0.5,
    ) -> None:
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_factor <= 1.0:
            raise ValueError("increase_factor must be > 1")
        if not 0.0 < initial_probability <= max_probability <= 1.0:
            raise ValueError(
                "need 0 < initial_probability <= max_probability <= 1"
            )
        self._initial_probability = initial_probability
        self._decrease_factor = decrease_factor
        self._increase_factor = increase_factor
        self._max_probability = max_probability

    @property
    def name(self) -> str:
        return "feedback"

    def initial(self, num_vertices: int) -> np.ndarray:
        return np.full(num_vertices, self._initial_probability, dtype=np.float64)

    def update(
        self,
        probabilities: np.ndarray,
        heard: np.ndarray,
        active: np.ndarray,
        round_index: int,
    ) -> np.ndarray:
        # Scratch buffers are reused while the batch shape is stable (the
        # engines call with one shape per phase), cutting three hot-loop
        # allocations to none; the returned buffer may alias a previous
        # return, which the engines' `p = rule.update(p, ...)` pattern
        # permits.  Pure elementwise arithmetic — no semantic state.
        down, result = self._scratch(probabilities.shape)
        np.multiply(probabilities, self._decrease_factor, out=down)
        np.multiply(probabilities, self._increase_factor, out=result)
        np.minimum(result, self._max_probability, out=result)
        np.copyto(result, down, where=heard)
        return result

    def _scratch(self, shape):
        cached = getattr(self, "_scratch_buffers", None)
        if cached is None or cached[0] != shape:
            cached = (
                shape,
                np.empty(shape, dtype=np.float64),
                np.empty(shape, dtype=np.float64),
            )
            self._scratch_buffers = cached
        return cached[1], cached[2]


class SweepRule(ProbabilityRule):
    """The DISC 2011 global sweep: shared p from the phase schedule."""

    trial_parallel = True

    @property
    def name(self) -> str:
        return "afek-sweep"

    def initial(self, num_vertices: int) -> np.ndarray:
        return np.full(num_vertices, sweep_probability(0), dtype=np.float64)

    def update(
        self,
        probabilities: np.ndarray,
        heard: np.ndarray,
        active: np.ndarray,
        round_index: int,
    ) -> np.ndarray:
        shared = sweep_probability(round_index + 1)
        # Same scratch discipline as FeedbackRule.update: reuse the
        # result buffer while the batch shape is stable.
        cached = getattr(self, "_scratch_buffer", None)
        if cached is None or cached.shape != probabilities.shape:
            cached = np.empty_like(probabilities)
            self._scratch_buffer = cached
        cached[:] = shared
        return cached


class GlobalScheduleRule(ProbabilityRule):
    """The Science 2011 schedule: p from n and the maximum degree."""

    trial_parallel = True

    def __init__(
        self,
        num_vertices: int,
        max_degree: int,
        steps_coefficient: float = 2.0,
    ) -> None:
        self._num_vertices = num_vertices
        self._max_degree = max_degree
        self._steps_coefficient = steps_coefficient

    @property
    def name(self) -> str:
        return "afek-global"

    def _shared(self, round_index: int) -> float:
        return global_schedule(
            round_index,
            self._num_vertices,
            self._max_degree,
            self._steps_coefficient,
        )

    def initial(self, num_vertices: int) -> np.ndarray:
        return np.full(num_vertices, self._shared(0), dtype=np.float64)

    def update(
        self,
        probabilities: np.ndarray,
        heard: np.ndarray,
        active: np.ndarray,
        round_index: int,
    ) -> np.ndarray:
        return np.full_like(probabilities, self._shared(round_index + 1))
