"""The vectorised round loop.

Same two-exchange semantics as :class:`repro.beeping.BeepingSimulation`,
expressed as boolean linear algebra:

- ``beep = active & (U < p)`` with ``U`` a fresh uniform vector;
- ``heard = A @ beep > 0`` (one sparse-ish matrix product per round);
- ``joined = beep & ~heard``; neighbours of joiners retire.

Fault injection (:mod:`repro.beeping.faults`) is vectorised too: beep loss
and spurious beeps become per-node Bernoulli draws perturbing the *heard*
vector fed back to the probability rule (the join/retire exchange stays
reliable, computed from the true beep vector), and a
:class:`~repro.beeping.faults.CrashSchedule` becomes per-round updates of
the active mask.

Randomness comes in two modes (``rng_mode``, see
:data:`repro.beeping.rng.RNG_MODES`), and the cross-engine
bit-reproducibility contract holds *within each mode*:

- ``"stream"`` (the default): one sequential ``numpy`` generator per
  seed.  The per-round draw order — beep uniforms, then loss uniforms,
  then spurious uniforms, each a full ``rng.random(n)`` and only when the
  corresponding probability is non-zero — is the shared contract that
  keeps this engine, the sparse engine and the fleet engine bit-for-bit
  identical under one seed (``docs/robustness.md``).
- ``"counter"``: every uniform is a pure function of ``(seed, round,
  draw kind, node)`` via :func:`repro.beeping.rng.counter_uniforms` — no
  stream state at all, so draw *order* is irrelevant by construction and
  the same four-way bit-equality holds trivially.

The per-node reference engine consumes randomness differently and agrees
in law only; use it when a robustness experiment needs traces or per-node
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LOSS,
    DRAW_SPURIOUS,
    RNG_MODES,
    counter_uniforms,
)
from repro.engine.rules import ProbabilityRule
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

DEFAULT_MAX_ROUNDS = 100_000


def check_rng_mode(rng_mode: str) -> None:
    """Raise unless ``rng_mode`` names a supported discipline."""
    if rng_mode not in RNG_MODES:
        raise ValueError(
            f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
        )


def faulty_observation(
    counts: np.ndarray,
    loss: float,
    spurious: float,
    loss_uniforms: Optional[np.ndarray],
    spurious_uniforms: Optional[np.ndarray],
) -> np.ndarray:
    """The noisy ``heard`` booleans from beeping-neighbour counts.

    Elementwise over any shape: the per-trial engines pass length-n
    vectors, the fleet engine ``(trials, n)`` matrices, and the bitboard
    engine (:mod:`repro.engine.bitboard`) its popcount-derived counts on
    the compacted live rows.  A listener with ``k`` beeping neighbours
    hears iff its loss uniform falls below ``1 - loss**k`` (at least one
    of ``k`` independent deliveries survives), then spurious uniforms
    add phantom beeps.  Every engine funnels through this one function
    so the collapsed-probability arithmetic — and therefore the
    bit-reproducibility contract — cannot drift between them.
    """
    counts = counts.astype(np.int64, copy=False)
    heard = counts > 0
    if loss > 0.0:
        heard = loss_uniforms < 1.0 - np.power(loss, counts)
    if spurious > 0.0:
        heard = heard | (spurious_uniforms < spurious)
    return heard


@dataclass
class EngineRun:
    """The outcome of one vectorised simulation.

    ``crashed`` is empty unless the run's fault model scheduled crashes;
    crashed vertices are never in ``mis`` and are exempt from maximality.
    """

    rule_name: str
    num_vertices: int
    rounds: int
    mis: Set[int]
    beeps_by_node: np.ndarray
    crashed: Set[int] = field(default_factory=set)

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node (the Figure 5 quantity)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self.beeps_by_node.sum()) / self.num_vertices


class VectorizedSimulator:
    """Runs one :class:`ProbabilityRule` on one graph, many times if needed.

    The adjacency matrix is built once per simulator, so reuse the instance
    across trials on the same graph.
    """

    def __init__(self, graph: Graph, max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._max_rounds = max_rounds
        # uint8 adjacency: matmul with uint8/bool vectors gives neighbour
        # beep counts without object overhead; n=1000 -> 1 MB.
        self._adjacency = graph.adjacency_matrix().astype(np.uint8)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    def run(
        self,
        rule: ProbabilityRule,
        seed: int,
        validate: bool = False,
        faults: FaultModel = NO_FAULTS,
        rng_mode: str = "stream",
    ) -> EngineRun:
        """Execute one full simulation with the given rule and seed.

        A fault-free ``faults`` model draws no extra randomness, so the
        run is bit-identical to one without the argument.  ``rng_mode``
        selects the uniform-stream discipline (see module docstring); the
        two modes draw different uniforms, so they give different — both
        valid and reproducible — trajectories.
        """
        check_rng_mode(rng_mode)
        n = self._graph.num_vertices
        counter = rng_mode == "counter"
        rng = None if counter else np.random.default_rng(seed)
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = np.zeros(n, dtype=bool)
        active = np.ones(n, dtype=bool)
        in_mis = np.zeros(n, dtype=bool)
        probabilities = rule.initial(n)
        beeps = np.zeros(n, dtype=np.int64)
        rounds = 0
        while active.any():
            if rounds >= self._max_rounds:
                raise RuntimeError(
                    f"vectorised simulation exceeded {self._max_rounds} rounds"
                )
            crash = crash_masks.get(rounds)
            if crash is not None:
                # Fail-stop at the start of the round: only still-active
                # vertices crash (members and retirees already left).
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            if counter:
                uniforms = counter_uniforms(seed, rounds, DRAW_BEEP, n)
            else:
                uniforms = rng.random(n)
            beep = active & (uniforms < probabilities)
            # Count of beeping neighbours, then the one-bit OR observation.
            # int32 vectors: a uint8 product would overflow beyond 255
            # beeping neighbours.
            neighbor_beeps = self._adjacency @ beep.astype(np.int32)
            heard_true = neighbor_beeps > 0
            if loss > 0.0 or spurious > 0.0:
                if counter:
                    loss_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_LOSS, n)
                        if loss > 0.0
                        else None
                    )
                    spurious_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_SPURIOUS, n)
                        if spurious > 0.0
                        else None
                    )
                else:
                    loss_uniforms = rng.random(n) if loss > 0.0 else None
                    spurious_uniforms = (
                        rng.random(n) if spurious > 0.0 else None
                    )
                heard = faulty_observation(
                    neighbor_beeps, loss, spurious,
                    loss_uniforms, spurious_uniforms,
                )
            else:
                heard = heard_true
            probabilities = rule.update(probabilities, heard, active, rounds)
            # Second exchange stays reliable: joins come from the true OR.
            joined = beep & ~heard_true
            in_mis |= joined
            # Retire active neighbours of joiners.
            neighbor_joined = (self._adjacency @ joined.astype(np.int32)) > 0
            beeps += beep
            active &= ~(joined | neighbor_joined)
            rounds += 1
        mis = {int(v) for v in np.flatnonzero(in_mis)}
        crashed_set = {int(v) for v in np.flatnonzero(crashed)}
        if probes.enabled():
            probes.count("engine.dense.runs")
            probes.count("engine.dense.rounds", rounds)
        if validate:
            verify_mis(self._graph, mis, crashed=crashed_set)
        return EngineRun(
            rule_name=rule.name,
            num_vertices=n,
            rounds=rounds,
            mis=mis,
            beeps_by_node=beeps,
            crashed=crashed_set,
        )
