"""The vectorised round loop.

Same two-exchange semantics as :class:`repro.beeping.BeepingSimulation`,
expressed as boolean linear algebra:

- ``beep = active & (U < p)`` with ``U`` a fresh uniform vector;
- ``heard = A @ beep > 0`` (one sparse-ish matrix product per round);
- ``joined = beep & ~heard``; neighbours of joiners retire.

Fault injection (:mod:`repro.beeping.faults`) is vectorised too: beep loss
and spurious beeps become per-node Bernoulli draws perturbing the *heard*
vector fed back to the probability rule (the join/retire exchange stays
reliable, computed from the true beep vector), and a
:class:`~repro.beeping.faults.CrashSchedule` becomes per-round updates of
the active mask.

Randomness comes in two modes (``rng_mode``, see
:data:`repro.beeping.rng.RNG_MODES`), and the cross-engine
bit-reproducibility contract holds *within each mode*:

- ``"stream"`` (the default): one sequential ``numpy`` generator per
  seed.  The per-round draw order — beep uniforms, then loss uniforms,
  then spurious uniforms, each a full ``rng.random(n)`` and only when the
  corresponding probability is non-zero — is the shared contract that
  keeps this engine, the sparse engine and the fleet engine bit-for-bit
  identical under one seed (``docs/robustness.md``).
- ``"counter"``: every uniform is a pure function of ``(seed, round,
  draw kind, node)`` via :func:`repro.beeping.rng.counter_uniforms` — no
  stream state at all, so draw *order* is irrelevant by construction and
  the same four-way bit-equality holds trivially.

The per-node reference engine consumes randomness differently and agrees
in law only; use it when a robustness experiment needs traces or per-node
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LOSS,
    DRAW_SPURIOUS,
    RNG_MODES,
    counter_uniforms,
)
from repro.engine.rules import ProbabilityRule
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

DEFAULT_MAX_ROUNDS = 100_000


def check_rng_mode(rng_mode: str) -> None:
    """Raise unless ``rng_mode`` names a supported discipline."""
    if rng_mode not in RNG_MODES:
        raise ValueError(
            f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
        )


def faulty_observation(
    counts: np.ndarray,
    loss: float,
    spurious: float,
    loss_uniforms: Optional[np.ndarray],
    spurious_uniforms: Optional[np.ndarray],
) -> np.ndarray:
    """The noisy ``heard`` booleans from beeping-neighbour counts.

    Elementwise over any shape: the per-trial engines pass length-n
    vectors, the fleet engine ``(trials, n)`` matrices, and the bitboard
    engine (:mod:`repro.engine.bitboard`) its popcount-derived counts on
    the compacted live rows.  A listener with ``k`` beeping neighbours
    hears iff its loss uniform falls below ``1 - loss**k`` (at least one
    of ``k`` independent deliveries survives), then spurious uniforms
    add phantom beeps.  Every engine funnels through this one function
    so the collapsed-probability arithmetic — and therefore the
    bit-reproducibility contract — cannot drift between them.
    """
    counts = counts.astype(np.int64, copy=False)
    heard = counts > 0
    if loss > 0.0:
        heard = loss_uniforms < 1.0 - np.power(loss, counts)
    if spurious > 0.0:
        heard = heard | (spurious_uniforms < spurious)
    return heard


@dataclass
class EngineRun:
    """The outcome of one vectorised simulation.

    ``crashed`` is empty unless the run's fault model scheduled crashes;
    crashed vertices are never in ``mis`` and are exempt from maximality.

    Under churn, ``num_vertices`` counts the *universe* graph (base plus
    joiners), ``absent`` holds the universe vertices outside the final
    alive subgraph (departed, asleep at the end, or never joined),
    ``repair_rounds`` has one entry per distinct event round — executed
    rounds from that churn batch until the MIS invariant over alive nodes
    was restored (``-1`` if the round cap hit first) — and ``recovered``
    is ``False`` exactly when the cap interrupted an unfinished repair.
    """

    rule_name: str
    num_vertices: int
    rounds: int
    mis: Set[int]
    beeps_by_node: np.ndarray
    crashed: Set[int] = field(default_factory=set)
    absent: Set[int] = field(default_factory=set)
    repair_rounds: tuple = ()
    recovered: bool = True

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node (the Figure 5 quantity)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self.beeps_by_node.sum()) / self.num_vertices


class ChurnState:
    """Shared churn bookkeeping for the vectorised engines.

    Holds the per-round event masks plus the ``present``/``asleep``
    population masks, applies each round's batch in the canonical order
    (leaves → sleeps → wakes → joins → one deterministic resolution
    pass), and tracks per-event repair times.  State arrays are shaped
    like the engine's ``active`` mask — ``(n,)`` for the per-trial
    engines, ``(trials, n)`` for the fleet — with the per-round event
    masks broadcasting over the trailing vertex axis.

    The resolution pass consumes **no randomness**: entrants listen
    first (``covered`` is the neighbour-OR of the updated membership),
    covered entrants retire on the spot, and every eligible uncovered
    survivor re-enters the competition with fresh rule state.  That
    keeps the one-draw-order contract intact — churn runs stay
    bit-identical across dense, sparse, fleet, armada and bitboard in
    both rng modes.
    """

    def __init__(self, schedule, num_vertices: int, shape=None) -> None:
        self.schedule = schedule
        self.num_vertices = num_vertices
        self.masks = schedule.round_masks(num_vertices)
        self.event_rounds = schedule.event_rounds()
        self.last_event_round = schedule.last_event_round
        full_shape = (num_vertices,) if shape is None else shape
        self.present = np.ones(full_shape, dtype=bool)
        for event in schedule.join_events():
            self.present[..., event.vertex] = False
        self.asleep = np.zeros(full_shape, dtype=bool)
        lead = full_shape[:-1]
        self.repair = np.full(lead + (len(self.event_rounds),), -1,
                              dtype=np.int64)

    def initial_active(self) -> np.ndarray:
        """The round-0 active mask (present, awake base vertices)."""
        return self.present.copy()

    def apply_events(
        self,
        round_index: int,
        active: np.ndarray,
        in_mis: np.ndarray,
        crashed: np.ndarray,
        neighbor_or,
        probabilities: np.ndarray,
        initial_row: np.ndarray,
    ) -> bool:
        """Apply one round's churn batch in place; True if it existed.

        ``neighbor_or`` maps a membership mask to its neighbour-OR (the
        engine's own reduction, so each backend keeps its kernel);
        ``initial_row`` is the rule's fresh length-n probability vector,
        copied onto revived entries of ``probabilities``.
        """
        events = self.masks.get(round_index)
        if events is None:
            return False
        leave, sleep = events["leave"], events["sleep"]
        wake, join = events["wake"], events["join"]
        gone = leave | sleep
        self.present &= ~leave
        self.asleep |= sleep
        self.asleep &= ~leave
        self.asleep &= ~wake
        self.present |= join
        in_mis &= ~gone
        active &= ~gone
        covered = neighbor_or(in_mis)
        revive = (
            self.present
            & ~self.asleep
            & ~active
            & ~in_mis
            & ~crashed
            & ~covered
        )
        active |= revive
        np.copyto(probabilities, initial_row, where=revive)
        return True

    def record_quiescence(
        self, executed_rounds: int, quiet, applied_rounds: int = -1
    ) -> None:
        """Resolve pending repairs at a checkpoint with no active nodes.

        ``executed_rounds`` counts rounds fully executed so far (equal to
        the round index right after a batch application, one more at the
        end of a round); ``quiet`` is a boolean (per-trial engines) or a
        per-trial boolean vector (fleet) marking rows whose active set is
        empty.  A pending event's repair time is the executed-rounds
        count at its first quiet checkpoint minus its event round.

        ``applied_rounds`` is the highest round index whose churn batch
        has already been applied at this checkpoint (defaults to
        ``executed_rounds``).  The end-of-round checkpoint after round
        ``r`` has ``executed_rounds = r + 1`` but ``applied_rounds = r``:
        an event scheduled for round ``r + 1`` is still pending — its
        batch has not landed — and must not be resolved with repair 0.
        """
        if applied_rounds < 0:
            applied_rounds = executed_rounds
        for b, event_round in enumerate(self.event_rounds):
            if event_round > applied_rounds:
                break
            if self.repair.ndim == 1:
                if quiet and self.repair[b] == -1:
                    self.repair[b] = executed_rounds - event_round
            else:
                pending = (self.repair[:, b] == -1) & quiet
                self.repair[pending, b] = executed_rounds - event_round

    def absent_mask(self) -> np.ndarray:
        """Universe vertices outside the final alive subgraph."""
        return ~self.present | self.asleep


def absent_set(state: "ChurnState") -> Set[int]:
    """The per-trial engines' ``EngineRun.absent`` set."""
    return {int(v) for v in np.flatnonzero(state.absent_mask())}


class VectorizedSimulator:
    """Runs one :class:`ProbabilityRule` on one graph, many times if needed.

    The adjacency matrix is built once per simulator, so reuse the instance
    across trials on the same graph.
    """

    def __init__(self, graph: Graph, max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._max_rounds = max_rounds
        # uint8 adjacency: matmul with uint8/bool vectors gives neighbour
        # beep counts without object overhead; n=1000 -> 1 MB.
        self._adjacency = graph.adjacency_matrix().astype(np.uint8)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    def run(
        self,
        rule: ProbabilityRule,
        seed: int,
        validate: bool = False,
        faults: FaultModel = NO_FAULTS,
        rng_mode: str = "stream",
    ) -> EngineRun:
        """Execute one full simulation with the given rule and seed.

        A fault-free ``faults`` model draws no extra randomness, so the
        run is bit-identical to one without the argument.  ``rng_mode``
        selects the uniform-stream discipline (see module docstring); the
        two modes draw different uniforms, so they give different — both
        valid and reproducible — trajectories.

        A non-empty churn schedule expands the run to the universe graph
        (base plus joiners) and keeps the loop alive through quiet gaps
        until the last event round, so late entrants can re-open the
        competition; hitting the round cap mid-repair then degrades
        gracefully (``recovered=False``) instead of raising.
        """
        check_rng_mode(rng_mode)
        churn_schedule = faults.churn_schedule
        has_churn = not churn_schedule.is_empty()
        graph = self._graph
        adjacency = self._adjacency
        if has_churn:
            # Churn runs are rare enough that rebuilding the adjacency on
            # the universe graph per run beats complicating __init__.
            graph = churn_schedule.universe_graph(graph)
            adjacency = graph.adjacency_matrix().astype(np.uint8)
        n = graph.num_vertices
        counter = rng_mode == "counter"
        rng = None if counter else np.random.default_rng(seed)
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = np.zeros(n, dtype=bool)
        in_mis = np.zeros(n, dtype=bool)
        probabilities = rule.initial(n)
        beeps = np.zeros(n, dtype=np.int64)
        churn = ChurnState(churn_schedule, n) if has_churn else None
        last_event = churn.last_event_round if has_churn else -1
        active = churn.initial_active() if has_churn else np.ones(n, dtype=bool)
        initial_row = rule.initial(n) if has_churn else None

        def neighbor_or(flags: np.ndarray) -> np.ndarray:
            return (adjacency @ flags.astype(np.int32)) > 0

        recovered = True
        rounds = 0
        while active.any() or rounds <= last_event:
            if rounds >= self._max_rounds:
                if has_churn:
                    # Graceful degradation: report the unfinished repair
                    # instead of raising — the run is still a valid
                    # (possibly non-maximal) independent set.
                    recovered = False
                    break
                raise RuntimeError(
                    f"vectorised simulation exceeded {self._max_rounds} rounds"
                )
            if has_churn and churn.apply_events(
                rounds, active, in_mis, crashed, neighbor_or,
                probabilities, initial_row,
            ):
                if not active.any():
                    churn.record_quiescence(rounds, True)
            crash = crash_masks.get(rounds)
            if crash is not None:
                # Fail-stop at the start of the round: only still-active
                # vertices crash (members and retirees already left).
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            if counter:
                uniforms = counter_uniforms(seed, rounds, DRAW_BEEP, n)
            else:
                uniforms = rng.random(n)
            beep = active & (uniforms < probabilities)
            # Count of beeping neighbours, then the one-bit OR observation.
            # int32 vectors: a uint8 product would overflow beyond 255
            # beeping neighbours.
            neighbor_beeps = adjacency @ beep.astype(np.int32)
            heard_true = neighbor_beeps > 0
            if loss > 0.0 or spurious > 0.0:
                if counter:
                    loss_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_LOSS, n)
                        if loss > 0.0
                        else None
                    )
                    spurious_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_SPURIOUS, n)
                        if spurious > 0.0
                        else None
                    )
                else:
                    loss_uniforms = rng.random(n) if loss > 0.0 else None
                    spurious_uniforms = (
                        rng.random(n) if spurious > 0.0 else None
                    )
                heard = faulty_observation(
                    neighbor_beeps, loss, spurious,
                    loss_uniforms, spurious_uniforms,
                )
            else:
                heard = heard_true
            probabilities = rule.update(probabilities, heard, active, rounds)
            # Second exchange stays reliable: joins come from the true OR.
            joined = beep & ~heard_true
            in_mis |= joined
            # Retire active neighbours of joiners.
            neighbor_joined = neighbor_or(joined)
            beeps += beep
            active &= ~(joined | neighbor_joined)
            rounds += 1
            if has_churn and not active.any():
                churn.record_quiescence(rounds, True, applied_rounds=rounds - 1)
        mis = {int(v) for v in np.flatnonzero(in_mis)}
        crashed_set = {int(v) for v in np.flatnonzero(crashed)}
        absent = absent_set(churn) if has_churn else set()
        repair_rounds = (
            tuple(int(r) for r in churn.repair) if has_churn else ()
        )
        if probes.enabled():
            probes.count("engine.dense.runs")
            probes.count("engine.dense.rounds", rounds)
            if has_churn:
                probes.count(
                    "engine.churn.events", len(churn_schedule.events)
                )
                resolved = [r for r in repair_rounds if r >= 0]
                if resolved:
                    probes.gauge(
                        "engine.repair.rounds",
                        sum(resolved) / len(resolved),
                    )
        if validate and recovered:
            verify_mis(graph, mis, crashed=crashed_set, absent=absent)
        return EngineRun(
            rule_name=rule.name,
            num_vertices=n,
            rounds=rounds,
            mis=mis,
            beeps_by_node=beeps,
            crashed=crashed_set,
            absent=absent,
            repair_rounds=repair_rounds,
            recovered=recovered,
        )
