"""The vectorised round loop.

Same two-exchange semantics as :class:`repro.beeping.BeepingSimulation`,
expressed as boolean linear algebra:

- ``beep = active & (U < p)`` with ``U`` a fresh uniform vector;
- ``heard = A @ beep > 0`` (one sparse-ish matrix product per round);
- ``joined = beep & ~heard``; neighbours of joiners retire.

No fault injection here — robustness experiments use the reference engine,
which has the instrumentation to make their results interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.engine.rules import ProbabilityRule
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis

DEFAULT_MAX_ROUNDS = 100_000


@dataclass
class EngineRun:
    """The outcome of one vectorised simulation."""

    rule_name: str
    num_vertices: int
    rounds: int
    mis: Set[int]
    beeps_by_node: np.ndarray

    @property
    def mean_beeps_per_node(self) -> float:
        """Mean beeps per node (the Figure 5 quantity)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self.beeps_by_node.sum()) / self.num_vertices


class VectorizedSimulator:
    """Runs one :class:`ProbabilityRule` on one graph, many times if needed.

    The adjacency matrix is built once per simulator, so reuse the instance
    across trials on the same graph.
    """

    def __init__(self, graph: Graph, max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._max_rounds = max_rounds
        # uint8 adjacency: matmul with uint8/bool vectors gives neighbour
        # beep counts without object overhead; n=1000 -> 1 MB.
        self._adjacency = graph.adjacency_matrix().astype(np.uint8)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    def run(
        self,
        rule: ProbabilityRule,
        seed: int,
        validate: bool = False,
    ) -> EngineRun:
        """Execute one full simulation with the given rule and seed."""
        n = self._graph.num_vertices
        rng = np.random.default_rng(seed)
        active = np.ones(n, dtype=bool)
        in_mis = np.zeros(n, dtype=bool)
        probabilities = rule.initial(n)
        beeps = np.zeros(n, dtype=np.int64)
        rounds = 0
        while active.any():
            if rounds >= self._max_rounds:
                raise RuntimeError(
                    f"vectorised simulation exceeded {self._max_rounds} rounds"
                )
            uniforms = rng.random(n)
            beep = active & (uniforms < probabilities)
            # Count of beeping neighbours, then the one-bit OR observation.
            # int32 vectors: a uint8 product would overflow beyond 255
            # beeping neighbours.
            neighbor_beeps = self._adjacency @ beep.astype(np.int32)
            heard = neighbor_beeps > 0
            probabilities = rule.update(probabilities, heard, active, rounds)
            joined = beep & ~heard
            in_mis |= joined
            # Retire active neighbours of joiners.
            neighbor_joined = (self._adjacency @ joined.astype(np.int32)) > 0
            beeps += beep
            active &= ~(joined | neighbor_joined)
            rounds += 1
        mis = {int(v) for v in np.flatnonzero(in_mis)}
        if validate:
            verify_mis(self._graph, mis)
        return EngineRun(
            rule_name=rule.name,
            num_vertices=n,
            rounds=rounds,
            mis=mis,
            beeps_by_node=beeps,
        )
