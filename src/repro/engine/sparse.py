"""Sparse (CSR) engine for large, sparse graphs.

The dense engine stores an n×n adjacency matrix — perfect for the paper's
``G(n, 1/2)`` workloads, quadratic waste for sparse topologies (grids,
geometric/sensor networks, scale-free graphs).  This engine keeps the
adjacency in compressed-sparse-row form and computes the one-bit OR
observation with ``numpy.add.reduceat`` over the neighbour lists, so a
round costs O(n + m) with small constants.  It runs the same rules as the
dense engine and is cross-validated against it in the tests.

With mean degree ~8 this comfortably simulates n = 50,000 node networks —
letting the scaling benchmark extend Theorem 2's O(log n) curve well past
the paper's n = 1000.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import (
    DRAW_BEEP,
    DRAW_LOSS,
    DRAW_SPURIOUS,
    counter_uniforms,
)
from repro.engine.rules import ProbabilityRule
from repro.engine.simulator import (
    ChurnState,
    EngineRun,
    absent_set,
    check_rng_mode,
    faulty_observation,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import verify_mis
from repro.telemetry import probes

DEFAULT_MAX_ROUNDS = 100_000


def build_csr(graph: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR neighbour lists of ``graph``: ``(columns, starts, isolated)``.

    ``columns`` concatenates each vertex's neighbour list; ``starts`` holds
    the *unclamped* per-vertex segment starts (``starts[v] ==
    columns.size`` for a trailing run of isolated vertices).  Consumers
    must therefore pad the gathered flag array with one trailing zero
    before ``np.add.reduceat`` so every start is a valid index — clamping
    the starts instead would silently truncate the last non-empty
    vertex's segment and drop beeps from its highest-index neighbours.
    Empty segments (isolated vertices) still produce garbage sums and are
    masked with ``isolated``.  Shared by :class:`SparseSimulator` and the
    fleet engine's sparse backend so the two stay structurally identical.
    """
    from itertools import chain

    n = graph.num_vertices
    neighbor_lists = [graph.neighbors(v) for v in graph.vertices()]
    degrees = np.fromiter(map(len, neighbor_lists), dtype=np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    # One C-level pass over the chained neighbour tuples; the per-vertex
    # slice-assignment loop this replaces paid a tuple->array conversion
    # per vertex.
    columns = np.fromiter(
        chain.from_iterable(neighbor_lists),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return columns, offsets[:-1].copy(), degrees == 0


def csr_row_counts(
    flags: np.ndarray,
    columns: np.ndarray,
    starts: np.ndarray,
    isolated: np.ndarray,
) -> np.ndarray:
    """Row-wise flagged-neighbour counts over one CSR, for 2-D flags.

    The one implementation of the pad/clamp discipline ``build_csr``
    documents, shared by every batched CSR consumer (fleet, armada and
    message kernels) so the reduceat subtleties — the trailing pad
    column that keeps unclamped starts in range, the garbage sums of
    empty segments — can never drift between engines.  ``flags`` is
    ``(rows, n)`` boolean; returns ``(rows, n)`` int64.
    """
    k, n = flags.shape
    if columns.size == 0:
        return np.zeros((k, n), dtype=np.int64)
    # One trailing zero column keeps every (unclamped) start in range,
    # so trailing empty segments never truncate the last real segment.
    gathered = np.zeros((k, columns.size + 1), dtype=np.int32)
    gathered[:, :-1] = flags[:, columns]
    counts = np.add.reduceat(gathered, starts, axis=1)
    # Empty segments (isolated vertices) yield garbage sums; zero them.
    counts[:, isolated] = 0
    return counts.astype(np.int64)


class SparseSimulator:
    """CSR-based simulator, API-compatible with
    :class:`~repro.engine.simulator.VectorizedSimulator`."""

    def __init__(self, graph: Graph, max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._graph = graph
        self._max_rounds = max_rounds
        self._columns, self._starts, self._isolated = build_csr(graph)

    @property
    def graph(self) -> Graph:
        """The simulated graph."""
        return self._graph

    def _neighbor_counts(self, flags: np.ndarray) -> np.ndarray:
        """For each vertex, how many neighbours have their flag set."""
        n = self._graph.num_vertices
        if n == 0 or self._columns.size == 0:
            return np.zeros(n, dtype=np.int64)
        # One trailing zero keeps every (unclamped) start in range, so
        # trailing empty segments never truncate the last real segment.
        gathered = np.zeros(self._columns.size + 1, dtype=np.int64)
        gathered[:-1] = flags[self._columns]
        # reduceat over CSR segments; empty segments (isolated vertices)
        # yield garbage, masked out below.
        counts = np.add.reduceat(gathered, self._starts)
        counts[self._isolated] = 0
        return counts

    def _neighbor_or(self, flags: np.ndarray) -> np.ndarray:
        """For each vertex, whether any neighbour's flag is set."""
        return self._neighbor_counts(flags) > 0

    def run(
        self,
        rule: ProbabilityRule,
        seed: int,
        validate: bool = False,
        faults: FaultModel = NO_FAULTS,
        rng_mode: str = "stream",
    ) -> EngineRun:
        """Execute one full simulation with the given rule and seed.

        Bit-identical to :meth:`VectorizedSimulator.run
        <repro.engine.simulator.VectorizedSimulator.run>` under the same
        seed, fault model and ``rng_mode`` (in ``"stream"`` mode the two
        share the per-round draw order; in ``"counter"`` mode every
        uniform is a pure function of its counter, so order is moot).
        """
        check_rng_mode(rng_mode)
        churn_schedule = faults.churn_schedule
        has_churn = not churn_schedule.is_empty()
        graph = self._graph
        columns, starts, isolated = self._columns, self._starts, self._isolated
        if has_churn:
            # Rebuild the CSR on the universe graph for this run — churn
            # runs are niche, so per-run construction beats complicating
            # the cached structures.
            graph = churn_schedule.universe_graph(graph)
            columns, starts, isolated = build_csr(graph)
        n = graph.num_vertices

        def neighbor_counts(flags: np.ndarray) -> np.ndarray:
            if n == 0 or columns.size == 0:
                return np.zeros(n, dtype=np.int64)
            gathered = np.zeros(columns.size + 1, dtype=np.int64)
            gathered[:-1] = flags[columns]
            counts = np.add.reduceat(gathered, starts)
            counts[isolated] = 0
            return counts

        def neighbor_or(flags: np.ndarray) -> np.ndarray:
            return neighbor_counts(flags) > 0

        counter = rng_mode == "counter"
        rng = None if counter else np.random.default_rng(seed)
        loss = faults.beep_loss_probability
        spurious = faults.spurious_beep_probability
        crash_masks: Dict[int, np.ndarray] = faults.crash_schedule.round_masks(n)
        crashed = np.zeros(n, dtype=bool)
        in_mis = np.zeros(n, dtype=bool)
        probabilities = rule.initial(n)
        beeps = np.zeros(n, dtype=np.int64)
        churn = ChurnState(churn_schedule, n) if has_churn else None
        last_event = churn.last_event_round if has_churn else -1
        active = churn.initial_active() if has_churn else np.ones(n, dtype=bool)
        initial_row = rule.initial(n) if has_churn else None
        recovered = True
        rounds = 0
        while active.any() or rounds <= last_event:
            if rounds >= self._max_rounds:
                if has_churn:
                    recovered = False
                    break
                raise RuntimeError(
                    f"sparse simulation exceeded {self._max_rounds} rounds"
                )
            if has_churn and churn.apply_events(
                rounds, active, in_mis, crashed, neighbor_or,
                probabilities, initial_row,
            ):
                if not active.any():
                    churn.record_quiescence(rounds, True)
            crash = crash_masks.get(rounds)
            if crash is not None:
                newly_crashed = active & crash
                crashed |= newly_crashed
                active &= ~newly_crashed
            if counter:
                uniforms = counter_uniforms(seed, rounds, DRAW_BEEP, n)
            else:
                uniforms = rng.random(n)
            beep = active & (uniforms < probabilities)
            counts = neighbor_counts(beep)
            heard_true = counts > 0
            if loss > 0.0 or spurious > 0.0:
                if counter:
                    loss_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_LOSS, n)
                        if loss > 0.0
                        else None
                    )
                    spurious_uniforms = (
                        counter_uniforms(seed, rounds, DRAW_SPURIOUS, n)
                        if spurious > 0.0
                        else None
                    )
                else:
                    loss_uniforms = rng.random(n) if loss > 0.0 else None
                    spurious_uniforms = (
                        rng.random(n) if spurious > 0.0 else None
                    )
                heard = faulty_observation(
                    counts, loss, spurious, loss_uniforms, spurious_uniforms
                )
            else:
                heard = heard_true
            probabilities = rule.update(probabilities, heard, active, rounds)
            # Second exchange stays reliable: joins come from the true OR.
            joined = beep & ~heard_true
            in_mis |= joined
            neighbor_joined = neighbor_or(joined)
            beeps += beep
            active &= ~(joined | neighbor_joined)
            rounds += 1
            if has_churn and not active.any():
                churn.record_quiescence(rounds, True, applied_rounds=rounds - 1)
        mis: Set[int] = {int(v) for v in np.flatnonzero(in_mis)}
        crashed_set = {int(v) for v in np.flatnonzero(crashed)}
        absent = absent_set(churn) if has_churn else set()
        repair_rounds = (
            tuple(int(r) for r in churn.repair) if has_churn else ()
        )
        if probes.enabled():
            probes.count("engine.sparse.runs")
            probes.count("engine.sparse.rounds", rounds)
            if has_churn:
                probes.count(
                    "engine.churn.events", len(churn_schedule.events)
                )
        if validate and recovered:
            verify_mis(graph, mis, crashed=crashed_set, absent=absent)
        return EngineRun(
            rule_name=rule.name,
            num_vertices=n,
            rounds=rounds,
            mis=mis,
            beeps_by_node=beeps,
            crashed=crashed_set,
            absent=absent,
            repair_rounds=repair_rounds,
            recovered=recovered,
        )
