"""The experiment harness: trial runners and per-figure drivers.

- :mod:`~repro.experiments.records` — result dataclasses with JSON/CSV
  export.
- :mod:`~repro.experiments.runner` — seeded multi-trial execution of any
  registered algorithm on any graph factory.
- :mod:`~repro.experiments.figures` — the Figure 3 and Figure 5 drivers.
- :mod:`~repro.experiments.lower_bound` — the Theorem 1 experiment on the
  disjoint-clique family.
- :mod:`~repro.experiments.ablations` — the Section 6 robustness sweeps.
- :mod:`~repro.experiments.tables` — ASCII table rendering for reports.
"""

from repro.experiments.records import (
    ExperimentResult,
    SeriesPoint,
    results_to_csv,
    results_to_json,
)
from repro.experiments.runner import TrialOutcome, run_trials
from repro.experiments.figures import (
    figure1_example,
    figure3_series,
    figure5_series,
)
from repro.experiments.bio_ablation import inhibition_strength_ablation
from repro.experiments.distributions import RoundDistribution, round_distributions
from repro.experiments.report import build_report
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.sizes import mis_size_experiment
from repro.experiments.workloads import available_workloads, make_workload
from repro.experiments.ablations import (
    factor_ablation,
    fault_ablation,
    initial_probability_ablation,
)
from repro.experiments.tables import format_table

__all__ = [
    "ExperimentResult",
    "RoundDistribution",
    "SeriesPoint",
    "TrialOutcome",
    "available_workloads",
    "build_report",
    "round_distributions",
    "inhibition_strength_ablation",
    "make_workload",
    "factor_ablation",
    "fault_ablation",
    "figure1_example",
    "figure3_series",
    "figure5_series",
    "format_table",
    "initial_probability_ablation",
    "mis_size_experiment",
    "results_to_csv",
    "results_to_json",
    "run_trials",
    "theorem1_experiment",
]
