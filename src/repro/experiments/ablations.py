"""Robustness ablations (the Section 6 claims as experiments).

Three sweeps, each varying one thing the paper says should not matter much:

- :func:`factor_ablation` — the up/down feedback factors (paper default:
  exactly halve / double);
- :func:`initial_probability_ablation` — the common initial probability
  (paper default ``1/2``; must stay bounded away from 0);
- :func:`fault_ablation` — beep loss and spurious beeps on the feedback
  observation channel (beyond the paper: the "robust in practice" claim
  under an explicitly noisy radio).

Factor and initial-probability sweeps run on the vectorised engine.  The
fault sweep here keeps the per-node reference engine (fresh graph per
trial, per-edge loss draws); the cached, fleet-vectorised robustness grid
lives in :mod:`repro.experiments.robustness` and is what the
``repro robustness`` CLI command drives.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.algorithms.feedback import FeedbackMIS
from repro.beeping.faults import FaultModel
from repro.beeping.rng import derive_seed
from repro.engine.batch import run_batch
from repro.engine.rules import FeedbackRule
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.experiments.runner import run_trials
from repro.graphs.random_graphs import gnp_random_graph
from repro.beeping.rng import spawn_rng


def factor_ablation(
    factor_pairs: Sequence[Tuple[float, float]] = (
        (0.5, 2.0),
        (0.4, 2.5),
        (0.6, 1.67),
        (0.3, 3.0),
        (0.7, 1.3),
    ),
    n: int = 300,
    edge_probability: float = 0.5,
    trials: int = 30,
    master_seed: int = 1601,
) -> ExperimentResult:
    """Mean rounds of the feedback algorithm for varied (down, up) factors.

    The first pair is the paper's exact algorithm; the others perturb it.
    The series are named ``down=<d>,up=<u>`` with x = the pair index.
    """
    graph = gnp_random_graph(
        n, edge_probability, spawn_rng(master_seed, 0xAB1)
    )
    points: List[SeriesPoint] = []
    for index, (down, up) in enumerate(factor_pairs):
        batch = run_batch(
            graph,
            lambda d=down, u=up: FeedbackRule(
                decrease_factor=d, increase_factor=u
            ),
            trials,
            derive_seed(master_seed, index),
            validate=True,
        )
        points.append(
            SeriesPoint(
                series=f"down={down},up={up}",
                x=float(index),
                mean=batch.mean_rounds,
                std=batch.std_rounds,
                trials=trials,
                extra={"down": down, "up": up},
            )
        )
    return ExperimentResult(
        experiment="factor-ablation",
        points=points,
        master_seed=master_seed,
        parameters={
            "n": n,
            "edge_probability": edge_probability,
            "trials": trials,
        },
    )


def initial_probability_ablation(
    initial_probabilities: Sequence[float] = (0.5, 0.25, 0.1, 0.05, 0.01),
    n: int = 300,
    edge_probability: float = 0.5,
    trials: int = 30,
    master_seed: int = 1602,
) -> ExperimentResult:
    """Mean rounds for varied common initial probabilities.

    The paper allows initial values below ½ "as long as sufficiently many
    of them are bounded away from zero"; very small initial probabilities
    cost extra rounds while the feedback drives them back up.
    """
    graph = gnp_random_graph(
        n, edge_probability, spawn_rng(master_seed, 0xAB2)
    )
    points: List[SeriesPoint] = []
    for index, p0 in enumerate(initial_probabilities):
        batch = run_batch(
            graph,
            lambda p=p0: FeedbackRule(initial_probability=p),
            trials,
            derive_seed(master_seed, index),
            validate=True,
        )
        points.append(
            SeriesPoint(
                series=f"p0={p0}",
                x=float(p0),
                mean=batch.mean_rounds,
                std=batch.std_rounds,
                trials=trials,
            )
        )
    return ExperimentResult(
        experiment="initial-probability-ablation",
        points=points,
        master_seed=master_seed,
        parameters={
            "n": n,
            "edge_probability": edge_probability,
            "trials": trials,
        },
    )


def fault_ablation(
    loss_probabilities: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    spurious_probabilities: Sequence[float] = (0.0, 0.05, 0.1),
    n: int = 100,
    edge_probability: float = 0.5,
    trials: int = 15,
    master_seed: int = 1603,
) -> ExperimentResult:
    """Mean rounds of the feedback algorithm under a noisy feedback channel.

    Every (loss, spurious) combination is one series point; the output MIS
    is validated in every trial (noise may slow the algorithm but can never
    corrupt the result — the second exchange is reliable by design).
    """
    points: List[SeriesPoint] = []
    index = 0
    for loss in loss_probabilities:
        for spurious in spurious_probabilities:
            faults = FaultModel(
                beep_loss_probability=loss,
                spurious_beep_probability=spurious,
            )
            outcomes = run_trials(
                FeedbackMIS,
                lambda rng, size=n: gnp_random_graph(
                    size, edge_probability, rng
                ),
                trials,
                derive_seed(master_seed, index),
                faults=faults,
            )
            rounds = [o.rounds for o in outcomes]
            mean = sum(rounds) / len(rounds)
            if len(rounds) > 1:
                variance = sum((r - mean) ** 2 for r in rounds) / (
                    len(rounds) - 1
                )
                std = variance ** 0.5
            else:
                std = 0.0
            points.append(
                SeriesPoint(
                    series=f"loss={loss},spurious={spurious}",
                    x=float(index),
                    mean=mean,
                    std=std,
                    trials=trials,
                    extra={"loss": loss, "spurious": spurious},
                )
            )
            index += 1
    return ExperimentResult(
        experiment="fault-ablation",
        points=points,
        master_seed=master_seed,
        parameters={
            "n": n,
            "edge_probability": edge_probability,
            "trials": trials,
        },
    )
