"""Biology-side ablation: how strong must lateral inhibition be?

The paper's Figure 4 story relies on the Notch–Delta positive feedback
being strong enough to amplify small differences.  In the Collier model
the inhibition strength is the parameter ``b`` (how hard a cell's Notch
suppresses its own Delta): for large ``b`` the homogeneous state is
unstable and a fine-grained SOP pattern forms; for small ``b`` the sheet
settles into a featureless intermediate state and the MIS correspondence
evaporates.  This experiment sweeps ``b`` and scores the emergent pattern.
"""

from __future__ import annotations

from random import Random
from typing import List, Sequence

from repro.bio.notch_delta import CollierParameters, NotchDeltaModel
from repro.bio.sop import analyze_sop_pattern, select_sops_by_delta
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.structured import hex_lattice_graph


def inhibition_strength_ablation(
    strengths: Sequence[float] = (1.0, 5.0, 20.0, 100.0, 500.0),
    rows: int = 7,
    cols: int = 7,
    trials: int = 3,
    t_end: float = 100.0,
    master_seed: int = 1910,
) -> ExperimentResult:
    """Pattern quality vs the Collier inhibition strength ``b``.

    Each point records the mean Delta *separation* (gap between the lowest
    SOP and highest non-SOP Delta level; bimodality score) and, in
    ``extra``, the mean SOP count and the fraction of trials whose pattern
    is an exact MIS of the contact graph.
    """
    graph = hex_lattice_graph(rows, cols)
    points: List[SeriesPoint] = []
    for index, strength in enumerate(strengths):
        parameters = CollierParameters(b=strength)
        model = NotchDeltaModel(graph, parameters)
        separations: List[float] = []
        sop_counts: List[int] = []
        mis_hits = 0
        for trial in range(trials):
            result = model.run(
                Random(master_seed * 1000 + index * 100 + trial),
                t_end=t_end,
            )
            sops = select_sops_by_delta(result.final_delta)
            pattern = analyze_sop_pattern(graph, sops, result.final_delta)
            separations.append(pattern.delta_separation)
            sop_counts.append(pattern.num_sops)
            if pattern.is_mis:
                mis_hits += 1
        mean_separation = sum(separations) / trials
        if trials > 1:
            variance = sum(
                (s - mean_separation) ** 2 for s in separations
            ) / (trials - 1)
            std = variance ** 0.5
        else:
            std = 0.0
        points.append(
            SeriesPoint(
                series="delta-separation",
                x=float(strength),
                mean=mean_separation,
                std=std,
                trials=trials,
                extra={
                    "mean_sops": sum(sop_counts) / trials,
                    "mis_fraction": mis_hits / trials,
                },
            )
        )
    return ExperimentResult(
        experiment="bio-inhibition-ablation",
        points=points,
        master_seed=master_seed,
        parameters={
            "rows": rows,
            "cols": cols,
            "trials": trials,
            "t_end": t_end,
        },
    )
