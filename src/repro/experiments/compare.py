"""The paper's central comparison, as one cached sweepable workload.

The paper positions its beeping MIS rules against "the elegant randomized
algorithm … generally known as Luby's algorithm" and the
optimal-bit-complexity variant of Métivier et al.; its headline trade-off
is *rounds versus communication*: a beep is one bit per incident channel
per round, a message-passing value O(log n) bits.  This driver turns that
comparison into a reproducible grid: every (algorithm, workload, size)
point is one :class:`~repro.sweep.spec.CellSpec` executed through the
sharded, content-addressed sweep orchestrator, so

- beeping rules, message-passing kernels and the MIS application kernels
  (``mis-coloring``, ``mis-matching``, ``mis-dominating``,
  ``mis-ruling-3`` — see :mod:`repro.engine.applications`; their
  ``mis-size`` axis reports the application's output size) all run
  vectorised — the trial-parallel fleet/armada engines, the
  message-passing lockstep engines (:mod:`repro.engine.messages`), and
  the application lockstep engines respectively; only algorithms outside
  :data:`~repro.sweep.spec.FLEET_RULES` (e.g. ``greedy``) fall back to
  the per-node reference engine;
- all algorithms of one size share one master seed, so (in reference
  mode) they see identical graphs, and reruns against a warm cache
  execute zero simulations.

``repro compare`` is the CLI front-end; it prints the rounds /
bit-complexity table plus both plots.  See ``docs/algorithms.md`` for
the per-algorithm accounting conventions the table relies on.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.beeping.rng import derive_seed
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.experiments.tables import format_table
from repro.sweep.aggregate import outcome_value, summarize
from repro.sweep.orchestrator import SweepReport, run_sweep
from repro.sweep.spec import (
    APPLICATION_FLEET_RULES,
    CHURN_REFERENCE_ALGORITHMS,
    FLEET_RULES,
    MESSAGE_FLEET_RULES,
    CellSpec,
    SweepSpec,
)
from repro.sweep.store import PathLike

#: The paper-facing default panel: the three beeping rules' fleet
#: representatives vs the four message-passing baselines.
DEFAULT_ALGORITHMS = (
    "feedback",
    "afek-sweep",
    "luby-permutation",
    "luby-probability",
    "metivier",
    "local-minimum-id",
)

_FAMILIES = ("gnp", "grid")


@dataclass
class ComparisonResult:
    """The comparison grid summarised along both paper axes.

    ``rounds`` and ``bits_per_node`` are ordinary
    :class:`ExperimentResult` records (one series per algorithm ×
    workload, x = graph size), so the existing table/plot/CSV consumers
    apply; every ``rounds`` point additionally carries the cell's mean
    ``messages``, ``bits`` and ``bits_per_message`` in ``extra``.
    """

    rounds: ExperimentResult
    bits_per_node: ExperimentResult
    report: SweepReport

    def table(self) -> str:
        """The paper-style rounds / bit-complexity comparison table.

        Under churn two extra columns appear — mean self-repair rounds
        and the recovered fraction — turning the table into the
        beeping-vs-Luby repair comparison; without churn the layout is
        byte-identical to the fault-free one.
        """
        churned = any("repair" in point.extra for point in self.rounds.points)
        headers = [
            "algorithm", "n", "rounds", "std",
            "msgs/node", "bits/node", "bits/msg",
        ]
        if churned:
            headers += ["repair", "recovered"]
        rows = []
        for point in self.rounds.points:
            n = max(point.x, 1.0)
            messages = point.extra["messages"]
            bits = point.extra["bits"]
            row = [
                point.series,
                f"{point.x:g}",
                f"{point.mean:.2f}",
                f"{point.std:.2f}",
                f"{messages / n:.1f}",
                f"{bits / n:.1f}",
                f"{point.extra['bits_per_message']:.2f}",
            ]
            if churned:
                row += [
                    f"{point.extra.get('repair', 0.0):.2f}",
                    f"{point.extra.get('recovered', 1.0):.2f}",
                ]
            rows.append(row)
        return format_table(headers, rows)


def comparison_csv(result: ComparisonResult) -> str:
    """Flat CSV of the grid: one row per (series, x, quantity)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "x", "quantity", "mean", "std", "trials"])
    for quantity, experiment in (
        ("rounds", result.rounds),
        ("bits_per_node", result.bits_per_node),
    ):
        for point in experiment.points:
            writer.writerow(
                [point.series, point.x, quantity, point.mean, point.std,
                 point.trials]
            )
    return buffer.getvalue()


def comparison_experiment(
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    families: Sequence[str] = ("gnp",),
    sizes: Sequence[int] = (50, 100, 200),
    edge_probability: float = 0.5,
    trials: int = 32,
    graphs: int = 1,
    master_seed: int = 2013,
    shard_trials: int = 32,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    max_rounds: int = 100_000,
    engine: str = "auto",
    churn: Sequence[Tuple[Any, ...]] = (),
) -> ComparisonResult:
    """Sweep algorithms × workloads × sizes and summarise both axes.

    ``families`` names the workloads (``"gnp"`` draws ``G(n, p)`` at each
    size; ``"grid"`` reads each size as a side length).  ``engine`` is
    ``"auto"`` (fleet for every :data:`FLEET_RULES` algorithm, reference
    otherwise), or ``"fleet"``/``"reference"`` to force one engine for
    the whole grid.  All algorithms of one (family, size) cell group
    share one derived master seed, making the comparison paired where
    the engine allows it.  Results flow through the sharded orchestrator:
    pass ``cache_dir`` to make regeneration free and extension
    incremental.

    ``churn`` applies one :func:`~repro.beeping.faults.ChurnSchedule`
    (``to_tuples``-shaped events) to every cell, turning the grid into
    the beeping-vs-Luby self-repair comparison: every ``rounds`` point
    gains ``repair`` / ``recovered`` extras and the table two matching
    columns.  Only churn-honouring algorithms are allowed then — beep
    rules on the fleet fabric, plus the reference implementations in
    :data:`~repro.sweep.spec.CHURN_REFERENCE_ALGORITHMS` (the message
    kernels reject faults, so ``auto`` routes e.g. ``luby-permutation``
    to the reference engine under churn).
    """
    if not algorithms:
        raise ValueError("need at least one algorithm")
    if not sizes:
        raise ValueError("need at least one size")
    if engine not in ("auto", "fleet", "reference"):
        raise ValueError(
            f"engine must be 'auto', 'fleet' or 'reference', got {engine!r}"
        )
    churn = tuple(tuple(event) for event in churn)
    if churn:
        for algorithm in algorithms:
            beep_fleet = (
                algorithm in FLEET_RULES
                and algorithm not in MESSAGE_FLEET_RULES
                and algorithm not in APPLICATION_FLEET_RULES
            )
            if not beep_fleet and algorithm not in CHURN_REFERENCE_ALGORITHMS:
                raise ValueError(
                    f"algorithm {algorithm!r} ignores churn schedules; "
                    "churn comparisons support beep fleet rules and "
                    f"{sorted(CHURN_REFERENCE_ALGORITHMS)}"
                )
    for family in families:
        if family not in _FAMILIES:
            raise ValueError(
                f"family must be one of {_FAMILIES}, got {family!r}"
            )
    multi_family = len(families) > 1
    cells: List[Tuple[str, CellSpec]] = []
    for family_index, family in enumerate(families):
        for size_index, size in enumerate(sizes):
            seed = derive_seed(master_seed, family_index, size_index)
            if family == "gnp":
                workload = {
                    "family": "gnp",
                    "n": size,
                    "edge_probability": edge_probability,
                }
            else:
                workload = {"family": "grid", "rows": size, "cols": size}
            for algorithm in algorithms:
                cell_engine = engine
                if engine == "auto":
                    fleet_capable = algorithm in FLEET_RULES
                    if churn and (
                        algorithm in MESSAGE_FLEET_RULES
                        or algorithm in APPLICATION_FLEET_RULES
                    ):
                        # Message/application kernels reject faults; their
                        # churn comparison runs on the reference engine.
                        fleet_capable = False
                    cell_engine = "fleet" if fleet_capable else "reference"
                label = (
                    f"{algorithm}/{family}" if multi_family else algorithm
                )
                cells.append(
                    (
                        label,
                        CellSpec(
                            algorithm=algorithm,
                            engine=cell_engine,
                            trials=trials,
                            graphs=graphs,
                            master_seed=seed,
                            max_rounds=max_rounds,
                            churn=churn,
                            **workload,
                        ),
                    )
                )
    spec = SweepSpec(tuple(cell for _, cell in cells),
                     shard_trials=shard_trials)
    sweep = run_sweep(spec, store=cache_dir, jobs=jobs)
    rounds_points: List[SeriesPoint] = []
    bits_points: List[SeriesPoint] = []
    for label, cell in cells:
        rows = sweep.rows(cell)
        n = max(cell.num_vertices, 1)
        mean_rounds, std_rounds = summarize(
            [outcome_value(row, "rounds") for row in rows]
        )
        mean_messages, _ = summarize(
            [outcome_value(row, "messages") for row in rows]
        )
        mean_bits, _ = summarize(
            [outcome_value(row, "bits") for row in rows]
        )
        mean_bpn, std_bpn = summarize(
            [outcome_value(row, "bits") / n for row in rows]
        )
        extra = {
            "messages": mean_messages,
            "bits": mean_bits,
            "bits_per_message": (
                mean_bits / mean_messages if mean_messages else 0.0
            ),
        }
        if churn:
            repairs = [outcome_value(row, "repair") for row in rows]
            recovered = [outcome_value(row, "recovered") for row in rows]
            extra["repair"] = sum(repairs) / len(repairs) if repairs else 0.0
            extra["recovered"] = (
                sum(recovered) / len(recovered) if recovered else 1.0
            )
        rounds_points.append(
            SeriesPoint(
                series=label,
                x=float(cell.num_vertices),
                mean=mean_rounds,
                std=std_rounds,
                trials=len(rows),
                extra=extra,
            )
        )
        bits_points.append(
            SeriesPoint(
                series=label,
                x=float(cell.num_vertices),
                mean=mean_bpn,
                std=std_bpn,
                trials=len(rows),
            )
        )
    parameters = {
        "algorithms": list(algorithms),
        "families": list(families),
        "sizes": list(sizes),
        "edge_probability": edge_probability,
        "trials": trials,
        "graphs": graphs,
        "engine": engine,
        "churn": [list(event) for event in churn],
    }
    return ComparisonResult(
        rounds=ExperimentResult(
            experiment="compare-rounds",
            points=rounds_points,
            master_seed=master_seed,
            parameters=parameters,
        ),
        bits_per_node=ExperimentResult(
            experiment="compare-bits",
            points=bits_points,
            master_seed=master_seed,
            parameters=parameters,
        ),
        report=sweep.report,
    )
