"""Round-count distributions (beyond the means of Figure 3).

The paper reports means with std error bars; this study records the full
per-trial distribution of round counts per algorithm — quantiles, tails
and histograms — which is what one needs to compare *latency percentiles*
of the algorithms (the operative metric for a real radio network, where
the slowest cluster gates the deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Sequence

from repro.algorithms.registry import make_algorithm
from repro.beeping.rng import spawn_rng
from repro.graphs.random_graphs import gnp_random_graph
from repro.viz.histogram import ascii_histogram


@dataclass
class RoundDistribution:
    """Per-trial round counts of one algorithm on one workload."""

    algorithm: str
    rounds: List[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.rounds) / len(self.rounds)

    def quantile(self, q: float) -> float:
        """Empirical quantile with linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        ordered = sorted(self.rounds)
        if len(ordered) == 1:
            return float(ordered[0])
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        """The 95th percentile — the tail a deployment plans for."""
        return self.quantile(0.95)

    def histogram(self, bins: int = 10, width: int = 40) -> str:
        """ASCII histogram of the distribution."""
        return ascii_histogram(
            self.rounds, bins=bins, width=width, label=self.algorithm
        )


def round_distributions(
    algorithm_names: Sequence[str] = ("feedback", "afek-sweep"),
    n: int = 100,
    edge_probability: float = 0.5,
    trials: int = 100,
    master_seed: int = 2100,
) -> Dict[str, RoundDistribution]:
    """Collect round-count distributions over fresh graphs per trial."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    distributions = {
        name: RoundDistribution(algorithm=name) for name in algorithm_names
    }
    for trial in range(trials):
        graph = gnp_random_graph(
            n, edge_probability, spawn_rng(master_seed, 0xD157, trial)
        )
        for index, name in enumerate(algorithm_names):
            run = make_algorithm(name).run(
                graph, spawn_rng(master_seed, index, trial)
            )
            distributions[name].rounds.append(run.rounds)
    return distributions
