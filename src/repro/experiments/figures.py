"""Drivers for the paper's experimental figures.

- :func:`figure1_example` — the Figure 1A artefact: an MIS on a 20-node
  random graph.
- :func:`figure3_series` — Figure 3: mean rounds vs n on ``G(n, 1/2)`` for
  the global-sweep and local-feedback algorithms, plus the paper's
  reference curves ``log₂² n`` and ``2.5·log₂ n``.
- :func:`figure5_series` — Figure 5: mean beeps per node vs n, both
  algorithms.
- :func:`grid_beeps_series` — the Section 5 text claim: mean beeps per
  node ≈ 1.1 on rectangular grid graphs, independent of size.

All drivers run on the vectorised engines — by default the trial-parallel
fleet engine, which evaluates every trial of a (size, rule) point in one
lockstep batch (Figure 3 reaches n = 1000 with 100 trials per point, far
beyond what the per-node reference engine does in reasonable time) — and
derive every seed from one master seed, so results are identical under
``engine="fleet"`` and ``engine="loop"``.
"""

from __future__ import annotations

from random import Random
from typing import Callable, List, Sequence, Set, Tuple

from repro.analysis.theory import (
    figure3_feedback_reference,
    figure3_sweep_reference,
)
from repro.beeping.rng import derive_seed, spawn_rng
from repro.engine.batch import run_batch
from repro.engine.rules import FeedbackRule, ProbabilityRule, SweepRule
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import grid_graph
from repro.graphs.validation import verify_mis

DEFAULT_FIGURE3_SIZES = (50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
DEFAULT_FIGURE5_SIZES = (10, 25, 50, 75, 100, 125, 150, 175, 200)

_RULES: Tuple[Callable[[], ProbabilityRule], ...] = (FeedbackRule, SweepRule)


def figure1_example(seed: int = 20, edge_probability: float = 0.15) -> Tuple[Graph, Set[int]]:
    """An MIS selected from a 20-node random graph (the Figure 1A artefact).

    Runs the paper's feedback algorithm itself to pick the set, then
    verifies it.  Returns ``(graph, mis)``.
    """
    from repro.algorithms.feedback import FeedbackMIS

    graph = gnp_random_graph(20, edge_probability, spawn_rng(seed, 0))
    run = FeedbackMIS().run(graph, spawn_rng(seed, 1))
    verify_mis(graph, run.mis)
    return graph, run.mis


def _beeping_series(
    experiment: str,
    graphs_for_size: Callable[[int, int], List[Graph]],
    sizes: Sequence[int],
    trials: int,
    master_seed: int,
    quantity: str,
    validate: bool,
    engine: str = "auto",
) -> ExperimentResult:
    """Shared sweep: both algorithms over sizes, extracting one quantity."""
    if quantity not in ("rounds", "beeps"):
        raise ValueError(f"quantity must be 'rounds' or 'beeps', got {quantity}")
    points: List[SeriesPoint] = []
    for size_index, n in enumerate(sizes):
        graphs = graphs_for_size(n, size_index)
        for rule_index, rule_factory in enumerate(_RULES):
            all_values: List[float] = []
            rule_name = rule_factory().name
            per_graph = max(1, trials // len(graphs))
            for graph_index, graph in enumerate(graphs):
                batch = run_batch(
                    graph,
                    rule_factory,
                    per_graph,
                    derive_seed(master_seed, size_index, rule_index),
                    graph_index=graph_index,
                    validate=validate,
                    engine=engine,
                )
                if quantity == "rounds":
                    all_values.extend(float(r) for r in batch.rounds)
                else:
                    all_values.extend(float(b) for b in batch.mean_beeps)
            mean = sum(all_values) / len(all_values)
            if len(all_values) > 1:
                variance = sum((v - mean) ** 2 for v in all_values) / (
                    len(all_values) - 1
                )
                std = variance ** 0.5
            else:
                std = 0.0
            points.append(
                SeriesPoint(
                    series=rule_name,
                    x=float(n),
                    mean=mean,
                    std=std,
                    trials=len(all_values),
                )
            )
    return ExperimentResult(
        experiment=experiment,
        points=points,
        master_seed=master_seed,
        parameters={"sizes": list(sizes), "trials": trials},
    )


def figure3_series(
    sizes: Sequence[int] = DEFAULT_FIGURE3_SIZES,
    trials: int = 100,
    edge_probability: float = 0.5,
    master_seed: int = 1303,
    graphs_per_size: int = 5,
    validate: bool = False,
    engine: str = "auto",
) -> ExperimentResult:
    """Figure 3: mean rounds vs n on ``G(n, edge_probability)``.

    ``trials`` simulations per (size, algorithm) are spread over
    ``graphs_per_size`` independently drawn graphs.  The result additionally
    carries the two reference curves as zero-std series named
    ``"log2_squared"`` and ``"2.5_log2"``.
    """

    def graphs_for_size(n: int, size_index: int) -> List[Graph]:
        return [
            gnp_random_graph(
                n,
                edge_probability,
                spawn_rng(master_seed, 0xF163, size_index, g),
            )
            for g in range(graphs_per_size)
        ]

    result = _beeping_series(
        "figure3",
        graphs_for_size,
        sizes,
        trials,
        master_seed,
        "rounds",
        validate,
        engine=engine,
    )
    for n in sizes:
        result.points.append(
            SeriesPoint("log2_squared", float(n), figure3_sweep_reference(n), 0.0, 0)
        )
        result.points.append(
            SeriesPoint("2.5_log2", float(n), figure3_feedback_reference(n), 0.0, 0)
        )
    result.parameters["edge_probability"] = edge_probability
    return result


def figure5_series(
    sizes: Sequence[int] = DEFAULT_FIGURE5_SIZES,
    trials: int = 200,
    edge_probability: float = 0.5,
    master_seed: int = 1305,
    graphs_per_size: int = 5,
    validate: bool = False,
    engine: str = "auto",
) -> ExperimentResult:
    """Figure 5: mean beeps per node vs n on ``G(n, edge_probability)``."""

    def graphs_for_size(n: int, size_index: int) -> List[Graph]:
        return [
            gnp_random_graph(
                n,
                edge_probability,
                spawn_rng(master_seed, 0xF165, size_index, g),
            )
            for g in range(graphs_per_size)
        ]

    result = _beeping_series(
        "figure5",
        graphs_for_size,
        sizes,
        trials,
        master_seed,
        "beeps",
        validate,
        engine=engine,
    )
    result.parameters["edge_probability"] = edge_probability
    return result


def grid_beeps_series(
    side_lengths: Sequence[int] = (5, 8, 10, 12, 15),
    trials: int = 100,
    master_seed: int = 1306,
    validate: bool = False,
    engine: str = "auto",
) -> ExperimentResult:
    """Mean beeps per node of the feedback algorithm on square grids.

    The Section 5 text reports ≈ 1.1 regardless of size; the bench asserts
    the measured value stays flat and close to that.
    """

    def graphs_for_size(n: int, size_index: int) -> List[Graph]:
        side = side_lengths[size_index]
        return [grid_graph(side, side)]

    sizes = [side * side for side in side_lengths]
    result = _beeping_series(
        "grid-beeps",
        graphs_for_size,
        sizes,
        trials,
        master_seed,
        "beeps",
        validate,
        engine=engine,
    )
    result.parameters["side_lengths"] = list(side_lengths)
    return result
