"""Drivers for the paper's experimental figures.

- :func:`figure1_example` — the Figure 1A artefact: an MIS on a 20-node
  random graph.
- :func:`figure3_series` — Figure 3: mean rounds vs n on ``G(n, 1/2)`` for
  the global-sweep and local-feedback algorithms, plus the paper's
  reference curves ``log₂² n`` and ``2.5·log₂ n``.
- :func:`figure5_series` — Figure 5: mean beeps per node vs n, both
  algorithms.
- :func:`grid_beeps_series` — the Section 5 text claim: mean beeps per
  node ≈ 1.1 on rectangular grid graphs, independent of size.

All series drivers go through the sweep orchestrator
(:mod:`repro.sweep`): each (size, rule) point is one fleet-engine
:class:`~repro.sweep.spec.CellSpec`, sharded across worker processes when
``jobs > 1`` and served from the content-addressed result store when
``cache_dir`` is set — regenerating a figure against a warm cache executes
zero shards.  Every seed derives from one master seed and results are
independent of ``jobs``, ``cache_dir`` and shard width.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.theory import (
    figure3_feedback_reference,
    figure3_sweep_reference,
)
from repro.beeping.rng import derive_seed, spawn_rng
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import verify_mis

PathLike = Union[str, Path]

DEFAULT_FIGURE3_SIZES = (50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
DEFAULT_FIGURE5_SIZES = (10, 25, 50, 75, 100, 125, 150, 175, 200)

_RULE_NAMES = ("feedback", "afek-sweep")


def figure1_example(seed: int = 20, edge_probability: float = 0.15) -> Tuple[Graph, Set[int]]:
    """An MIS selected from a 20-node random graph (the Figure 1A artefact).

    Runs the paper's feedback algorithm itself to pick the set, then
    verifies it.  Returns ``(graph, mis)``.
    """
    from repro.algorithms.feedback import FeedbackMIS

    graph = gnp_random_graph(20, edge_probability, spawn_rng(seed, 0))
    run = FeedbackMIS().run(graph, spawn_rng(seed, 1))
    verify_mis(graph, run.mis)
    return graph, run.mis


def _beeping_series(
    experiment: str,
    family_for_size: Callable[[int], Dict[str, int]],
    sizes: Sequence[int],
    trials: int,
    master_seed: int,
    quantity: str,
    validate: bool,
    graphs_per_size: int,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Shared sweep: both algorithms over sizes, extracting one quantity.

    Every cell of one size shares the master seed
    ``derive_seed(master_seed, size_index)``: both rules then draw
    *identical* graphs (the graph path ``(g, 0)`` depends only on the
    cell master seed), keeping the feedback-vs-sweep comparison paired —
    a hard outlier graph hits both series, not one.  ``trials`` are
    spread over ``graphs_per_size`` lockstep fleet groups per cell.
    """
    # Imported here, not at module scope: repro.sweep's modules consume
    # repro.experiments.records/runner, so a top-level import would cycle.
    from repro.sweep.aggregate import cell_point
    from repro.sweep.orchestrator import run_sweep
    from repro.sweep.spec import CellSpec, SweepSpec

    if quantity not in ("rounds", "beeps"):
        raise ValueError(f"quantity must be 'rounds' or 'beeps', got {quantity}")
    cells: List[CellSpec] = []
    for size_index in range(len(sizes)):
        family = family_for_size(size_index)
        for rule_name in _RULE_NAMES:
            cells.append(
                CellSpec(
                    algorithm=rule_name,
                    engine="fleet",
                    trials=trials,
                    graphs=graphs_per_size,
                    master_seed=derive_seed(master_seed, size_index),
                    validate=validate,
                    **family,
                )
            )
    spec = SweepSpec(
        tuple(cells),
        shard_trials=shard_trials if shard_trials is not None else 32,
    )
    sweep = run_sweep(spec, store=cache_dir, jobs=jobs)
    points = [
        cell_point(cell, sweep.rows(cell), quantity) for cell in cells
    ]
    return ExperimentResult(
        experiment=experiment,
        points=points,
        master_seed=master_seed,
        parameters={"sizes": list(sizes), "trials": trials},
    )


def figure3_series(
    sizes: Sequence[int] = DEFAULT_FIGURE3_SIZES,
    trials: int = 100,
    edge_probability: float = 0.5,
    master_seed: int = 1303,
    graphs_per_size: int = 5,
    validate: bool = False,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Figure 3: mean rounds vs n on ``G(n, edge_probability)``.

    ``trials`` simulations per (size, algorithm) are spread over
    ``graphs_per_size`` independently drawn graphs.  The result additionally
    carries the two reference curves as zero-std series named
    ``"log2_squared"`` and ``"2.5_log2"``.  ``jobs`` shards the sweep over
    worker processes; ``cache_dir`` enables the on-disk result store.
    """

    def family_for_size(size_index: int) -> Dict[str, int]:
        return {
            "family": "gnp",
            "n": sizes[size_index],
            "edge_probability": edge_probability,
        }

    result = _beeping_series(
        "figure3",
        family_for_size,
        sizes,
        trials,
        master_seed,
        "rounds",
        validate,
        graphs_per_size,
        jobs=jobs,
        cache_dir=cache_dir,
        shard_trials=shard_trials,
    )
    for n in sizes:
        result.points.append(
            SeriesPoint("log2_squared", float(n), figure3_sweep_reference(n), 0.0, 0)
        )
        result.points.append(
            SeriesPoint("2.5_log2", float(n), figure3_feedback_reference(n), 0.0, 0)
        )
    result.parameters["edge_probability"] = edge_probability
    return result


def figure5_series(
    sizes: Sequence[int] = DEFAULT_FIGURE5_SIZES,
    trials: int = 200,
    edge_probability: float = 0.5,
    master_seed: int = 1305,
    graphs_per_size: int = 5,
    validate: bool = False,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Figure 5: mean beeps per node vs n on ``G(n, edge_probability)``."""

    def family_for_size(size_index: int) -> Dict[str, int]:
        return {
            "family": "gnp",
            "n": sizes[size_index],
            "edge_probability": edge_probability,
        }

    result = _beeping_series(
        "figure5",
        family_for_size,
        sizes,
        trials,
        master_seed,
        "beeps",
        validate,
        graphs_per_size,
        jobs=jobs,
        cache_dir=cache_dir,
        shard_trials=shard_trials,
    )
    result.parameters["edge_probability"] = edge_probability
    return result


def grid_beeps_series(
    side_lengths: Sequence[int] = (5, 8, 10, 12, 15),
    trials: int = 100,
    master_seed: int = 1306,
    validate: bool = False,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Mean beeps per node of the feedback algorithm on square grids.

    The Section 5 text reports ≈ 1.1 regardless of size; the bench asserts
    the measured value stays flat and close to that.
    """

    def family_for_size(size_index: int) -> Dict[str, int]:
        side = side_lengths[size_index]
        return {"family": "grid", "rows": side, "cols": side}

    sizes = [side * side for side in side_lengths]
    result = _beeping_series(
        "grid-beeps",
        family_for_size,
        sizes,
        trials,
        master_seed,
        "beeps",
        validate,
        graphs_per_size=1,
        jobs=jobs,
        cache_dir=cache_dir,
        shard_trials=shard_trials,
    )
    result.parameters["side_lengths"] = list(side_lengths)
    return result
