"""Self-contained HTML rendering of the paper pipeline's artefacts.

One :func:`render_paper_report` call turns the pipeline's regenerated
experiments into a single HTML document with **no external assets**:
CSS is inlined, every figure is an inline SVG
(:func:`~repro.viz.svg_plots.svg_line_plot`), and every dynamic string
passes through ``html.escape``.  The renderer is a pure function of its
inputs — dictionaries are emitted in sorted order, numbers with fixed
``%g`` formatting, and **no timestamp, path, duration or cache counter
appears unless passed in** — so regenerating the same results yields
byte-identical HTML.  The run stamp is opt-in via the explicit ``now=``
parameter; the pipeline omits it by default precisely so that warm
reruns can be compared with ``cmp``.

Sections: provenance (versions, seeds, spec hashes), drift-vs-golden
verdicts, one block per experiment (description, SVG plot, value
table), and the committed ``BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.experiments.records import ExperimentResult
from repro.viz.svg_plots import svg_line_plot

#: Inline stylesheet — the report's only styling, no external fetches.
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2em auto; max-width: 62em; color: #222;
       line-height: 1.45; padding: 0 1em; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; color: #1a4f7a; }
table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.92em; }
th, td { border: 1px solid #d0d0d0; padding: 0.3em 0.7em;
         text-align: right; }
th { background: #f0f4f8; }
td:first-child, th:first-child { text-align: left; }
code { background: #f5f5f5; padding: 0.1em 0.3em; font-size: 0.92em; }
.badge { display: inline-block; padding: 0.1em 0.6em; border-radius: 3px;
         font-weight: bold; font-size: 0.85em; }
.badge.pass { background: #d4edda; color: #1e7b34; }
.badge.drift { background: #f8d7da; color: #9c1c28; }
.badge.missing { background: #fff3cd; color: #8a6d1a; }
.badge.skip { background: #e2e3e5; color: #555; }
.meta { color: #666; font-size: 0.88em; }
.stamp { color: #888; font-size: 0.85em; }
svg.plot { max-width: 100%; height: auto; }
""".strip()


@dataclass(frozen=True)
class ReportFigure:
    """One experiment's block in the report."""

    name: str
    title: str
    description: str
    result: Optional[ExperimentResult]
    y_label: str = "value"
    x_label: str = "n"
    csv_filename: str = ""
    spec_hash: str = ""
    trials: int = 0
    seed: int = 0
    extra_columns: Tuple[str, ...] = ()


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _num(value: float) -> str:
    return f"{value:g}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain table; every cell is already-escaped text."""
    parts = ["<table>", "<thead><tr>"]
    parts.extend(f"<th>{cell}</th>" for cell in headers)
    parts.append("</tr></thead><tbody>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{cell}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def result_table(
    result: ExperimentResult, extra_columns: Sequence[str] = ()
) -> str:
    """An experiment's points as an HTML table (extras as columns)."""
    headers = [
        _esc(h) for h in ("series", "x", "mean", "std", "trials",
                          *extra_columns)
    ]
    rows = []
    for point in result.points:
        row = [
            _esc(point.series),
            _esc(_num(point.x)),
            _esc(_num(point.mean)),
            _esc(_num(point.std)),
            _esc(point.trials),
        ]
        for name in extra_columns:
            value = point.extra.get(name)
            row.append("" if value is None else _esc(_num(value)))
        rows.append(row)
    return _table(headers, rows)


def _badge(status: str) -> str:
    return (
        f'<span class="badge {_esc(status.lower())}">{_esc(status)}</span>'
    )


def _provenance_section(provenance: Mapping[str, Any]) -> str:
    rows = [
        [_esc(key), f"<code>{_esc(value)}</code>"]
        for key, value in sorted(provenance.items())
    ]
    return (
        '<section id="provenance"><h2>Provenance</h2>'
        + _table(["field", "value"], rows)
        + "</section>"
    )


def _drift_section(drift_rows: Sequence[Tuple[str, str, str]]) -> str:
    if not drift_rows:
        return ""
    rows = [
        [_esc(artefact), _badge(status), _esc(detail)]
        for artefact, status, detail in drift_rows
    ]
    return (
        '<section id="drift"><h2>Drift vs committed goldens</h2>'
        + _table(["artefact", "verdict", "detail"], rows)
        + "</section>"
    )


def _bench_section(bench_rows: Sequence[Any]) -> str:
    if not bench_rows:
        return ""

    def fmt(value: Optional[float], suffix: str = "") -> str:
        return "-" if value is None else f"{value:.2f}{suffix}"

    rows = [
        [
            _esc(row.name),
            _esc(fmt(row.speedup, "x")),
            _esc(fmt(row.floor, "x")),
            _esc(fmt(row.headroom)),
        ]
        for row in bench_rows
    ]
    return (
        '<section id="bench"><h2>Benchmark trajectory '
        "(committed BENCH_*.json)</h2>"
        + _table(["bench", "speedup", "floor", "headroom"], rows)
        + "</section>"
    )


def _figure_section(figure: ReportFigure) -> str:
    parts = [
        f'<section class="experiment" id="exp-{_esc(figure.name)}">',
        f"<h2>{_esc(figure.title)}</h2>",
        f"<p>{_esc(figure.description)}</p>",
    ]
    meta_bits = []
    if figure.csv_filename:
        meta_bits.append(f"csv: <code>{_esc(figure.csv_filename)}</code>")
    if figure.spec_hash:
        meta_bits.append(f"spec: <code>{_esc(figure.spec_hash[:12])}</code>")
    meta_bits.append(f"seed: <code>{_esc(figure.seed)}</code>")
    meta_bits.append(f"trials: <code>{_esc(figure.trials)}</code>")
    parts.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')
    if figure.result is not None and figure.result.points:
        parts.append(
            svg_line_plot(
                figure.result,
                y_label=figure.y_label,
                x_label=figure.x_label,
            )
        )
        parts.append(result_table(figure.result, figure.extra_columns))
    else:
        parts.append('<p class="meta">no data points</p>')
    parts.append("</section>")
    return "".join(parts)


def render_paper_report(
    figures: Sequence[ReportFigure],
    provenance: Mapping[str, Any],
    drift_rows: Sequence[Tuple[str, str, str]] = (),
    bench_rows: Sequence[Any] = (),
    title: str = "Reproduction report: 'Feedback from nature' (PODC 2013)",
    now: Optional[str] = None,
) -> str:
    """The full self-contained HTML document.

    ``drift_rows`` are ``(artefact, status, detail)`` triples;
    ``bench_rows`` anything with ``name``/``speedup``/``floor``/
    ``headroom`` attributes (the stats module's ``BenchDrift``).  ``now``
    is the *only* way a timestamp enters the document — leave it unset
    (the default) for byte-identical regeneration.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if now is not None:
        parts.append(f'<p class="stamp">generated: {_esc(now)}</p>')
    parts.append(_provenance_section(provenance))
    parts.append(_drift_section(drift_rows))
    for figure in figures:
        parts.append(_figure_section(figure))
    parts.append(_bench_section(bench_rows))
    parts.append("</body></html>")
    return "\n".join(part for part in parts if part)
