"""The Theorem 1 experiment: globally scheduled algorithms on the
disjoint-clique family.

Theorem 1 proves that *any* preset global probability sequence needs
``Ω(log² n)`` rounds on the family of ``copies`` copies of ``K_d`` for
``d = 1..side``.  The experiment runs the sweep algorithm (the natural
preset sequence) and the feedback algorithm on the same family and reports
rounds vs ``n``: the sweep series grows like ``log² n`` while the feedback
series — whose *local* probabilities can sit near ``1/d`` in each clique
simultaneously — grows like ``log n``.  This is the empirical face of the
paper's separation result.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.beeping.rng import derive_seed
from repro.engine.batch import run_batch
from repro.engine.rules import FeedbackRule, SweepRule
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.cliques import theorem1_family


def theorem1_experiment(
    sides: Sequence[int] = (4, 6, 8, 10, 12),
    trials: int = 30,
    copies: int = 0,
    master_seed: int = 1101,
    validate: bool = False,
) -> ExperimentResult:
    """Rounds of sweep vs feedback on the Theorem 1 clique family.

    ``sides[i]`` plays the role of ``n^(1/3)``; the graph for side ``s``
    has ``copies·s(s+1)/2`` vertices (``copies`` defaults to ``s``).
    """
    points: List[SeriesPoint] = []
    for side_index, side in enumerate(sides):
        graph = theorem1_family(side, copies)
        n = graph.num_vertices
        for rule_index, rule_factory in enumerate((SweepRule, FeedbackRule)):
            batch = run_batch(
                graph,
                rule_factory,
                trials,
                derive_seed(master_seed, side_index, rule_index),
                validate=validate,
            )
            points.append(
                SeriesPoint(
                    series=batch.rule_name,
                    x=float(n),
                    mean=batch.mean_rounds,
                    std=batch.std_rounds,
                    trials=trials,
                    extra={"side": float(side)},
                )
            )
    return ExperimentResult(
        experiment="theorem1",
        points=points,
        master_seed=master_seed,
        parameters={
            "sides": list(sides),
            "copies": copies,
            "trials": trials,
        },
    )
