"""The Theorem 1 experiment: globally scheduled algorithms on the
disjoint-clique family.

Theorem 1 proves that *any* preset global probability sequence needs
``Ω(log² n)`` rounds on the family of ``copies`` copies of ``K_d`` for
``d = 1..side``.  The experiment runs the sweep algorithm (the natural
preset sequence) and the feedback algorithm on the same family and reports
rounds vs ``n``: the sweep series grows like ``log² n`` while the feedback
series — whose *local* probabilities can sit near ``1/d`` in each clique
simultaneously — grows like ``log n``.  This is the empirical face of the
paper's separation result.

Execution goes through the sweep orchestrator (:mod:`repro.sweep`): each
(side, rule) point is one fleet-engine ``family="theorem1"`` cell, so the
experiment shares the trial-parallel fleet speedup and — with
``cache_dir`` set — the content-addressed result store with every other
figure driver.  Each cell derives its own master seed, and results are
independent of ``jobs``, ``cache_dir`` and shard width.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.beeping.rng import derive_seed
from repro.experiments.records import ExperimentResult, SeriesPoint

PathLike = Union[str, Path]

_RULE_NAMES = ("afek-sweep", "feedback")


def theorem1_experiment(
    sides: Sequence[int] = (4, 6, 8, 10, 12),
    trials: int = 30,
    copies: int = 0,
    master_seed: int = 1101,
    validate: bool = False,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Rounds of sweep vs feedback on the Theorem 1 clique family.

    ``sides[i]`` plays the role of ``n^(1/3)``; the graph for side ``s``
    has ``copies·s(s+1)/2`` vertices (``copies`` defaults to ``s``).
    ``jobs`` shards the sweep over worker processes; ``cache_dir``
    enables the on-disk result store.
    """
    # Imported here, not at module scope: repro.sweep's modules consume
    # repro.experiments.records/runner, so a top-level import would cycle.
    from repro.sweep.aggregate import cell_point
    from repro.sweep.orchestrator import run_sweep
    from repro.sweep.spec import CellSpec, SweepSpec

    cells: List[CellSpec] = []
    for side_index, side in enumerate(sides):
        for rule_index, rule_name in enumerate(_RULE_NAMES):
            cells.append(
                CellSpec(
                    algorithm=rule_name,
                    engine="fleet",
                    family="theorem1",
                    side=side,
                    copies=copies,
                    trials=trials,
                    master_seed=derive_seed(master_seed, side_index, rule_index),
                    validate=validate,
                )
            )
    spec = SweepSpec(
        tuple(cells),
        shard_trials=shard_trials if shard_trials is not None else 32,
    )
    sweep = run_sweep(spec, store=cache_dir, jobs=jobs)
    points: List[SeriesPoint] = [
        cell_point(
            cell,
            sweep.rows(cell),
            "rounds",
            extra={"side": float(cell.side)},
        )
        for cell in cells
    ]
    return ExperimentResult(
        experiment="theorem1",
        points=points,
        master_seed=master_seed,
        parameters={
            "sides": list(sides),
            "copies": copies,
            "trials": trials,
        },
    )
