"""The one-command paper pipeline: ``repro paper``.

A declarative registry (:data:`REGISTRY`) names every experiment the
paper reproduction rests on — Figures 3/5, the grid-beeps claim, the
Theorem 1 lower bound, the MIS-size study, the robustness grid, the
cross-algorithm comparison and the bio inhibition ablation — with fixed
seeds and reduced-but-representative scales.  :func:`run_paper` drives
each one through the cached sweep orchestrator, emits one CSV per
experiment, renders a single self-contained HTML report
(:mod:`~repro.experiments.html_report`), diffs every CSV against the
committed goldens under ``tests/experiments/golden_paper/``, and appends
one :class:`~repro.sweep.rundb.RunRecord` per experiment to the
persistent run database (:mod:`~repro.sweep.rundb`).

Determinism contract
--------------------
Regenerating with the same trials against the same code produces
byte-identical CSVs and HTML: the report carries no timings, cache
counters, paths or timestamps (a run stamp only appears when ``now=`` is
passed explicitly).  Volatile facts — elapsed seconds, shard cache
hit-rates, drift verdicts at run time — go to the run database instead,
where ``repro stats --rundb`` queries them.

Execution-fingerprint keys
--------------------------
Each orchestrated experiment's ``spec_hash`` is computed from the shard
content hashes its sweep actually looked up, observed out of band via a
telemetry sink (the orchestrator emits one ``sweep.shard`` span per
distinct shard, cached or not).  The bio ablation runs no sweep; its key
hashes the registry parameters instead, and — uniquely — its artefact is
cached whole under ``<cache_dir>/paper/`` so warm pipeline reruns stay
ODE-free.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.bio_ablation import inhibition_strength_ablation
from repro.experiments.compare import comparison_csv, comparison_experiment
from repro.experiments.figures import (
    figure3_series,
    figure5_series,
    grid_beeps_series,
)
from repro.experiments.html_report import ReportFigure, render_paper_report
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.records import (
    ExperimentResult,
    results_from_json,
    results_to_csv,
    results_to_json,
)
from repro.experiments.robustness import robustness_grid
from repro.experiments.sizes import mis_size_experiment
from repro.sweep.rundb import RunDB, RunRecord, fingerprint_hash
from repro.sweep.spec import SPEC_FORMAT_VERSION
from repro.sweep.store import STORE_FORMAT_VERSION, atomic_write_text
from repro.telemetry import probes
from repro.telemetry.ledger import run_versions
from repro.telemetry.stats import bench_drift

PathLike = Union[str, Path]

#: Bump when the pipeline's artefact layout or registry scales change in
#: a way that invalidates cached whole artefacts (the bio cache) or
#: committed goldens.
PAPER_FORMAT_VERSION = 1

#: Default location of the committed golden CSVs, relative to the
#: repository root (where the tier-1 suite and CI run from).
DEFAULT_GOLDEN_DIR = Path("tests") / "experiments" / "golden_paper"

#: Sentinel: discover :data:`DEFAULT_GOLDEN_DIR` if it exists.
GOLDEN_AUTO = "auto"

#: ``experiments/`` modules that legitimately have no registry entry.
#: The registry-completeness test fails when a module is neither
#: registered nor listed here with a reason — adding an experiment means
#: either registering it or consciously exempting it.
EXEMPT_MODULES: Dict[str, str] = {
    "ablations": (
        "report-only parameter ablations; the registry's robustness "
        "entry covers the paper's fault-grid claim"
    ),
    "distributions": (
        "interactive round-latency percentile study; no fixed paper "
        "artefact"
    ),
    "html_report": "renderer consumed by the pipeline, not an experiment",
    "paper": "the pipeline itself",
    "records": "serialisation schema",
    "report": (
        "text report wrapper; its sections re-run registry experiments "
        "(figures, lower_bound) plus an ablation at report scales"
    ),
    "runner": "trial execution engine",
    "tables": "ASCII rendering helper",
    "workloads": "graph family registry",
}


@dataclass(frozen=True)
class PaperSettings:
    """The execution knobs one pipeline run applies to every experiment."""

    trials: int = 3
    jobs: int = 1
    cache_dir: Optional[PathLike] = None


Runner = Callable[[PaperSettings], Tuple[ExperimentResult, str]]


@dataclass(frozen=True)
class PaperExperiment:
    """One registry entry: an experiment the pipeline regenerates.

    ``module`` names the ``repro.experiments`` submodule the entry
    drives (the completeness test introspects it); ``orchestrated``
    records whether execution flows through the sweep orchestrator
    (``False`` only for the bio ODE ablation, which gets whole-artefact
    caching instead); ``fingerprint`` carries the scale parameters that
    determine the artefact bytes for non-orchestrated entries.
    """

    name: str
    module: str
    title: str
    description: str
    seed: int
    runner: Runner
    y_label: str = "rounds"
    x_label: str = "n"
    orchestrated: bool = True
    extra_columns: Tuple[str, ...] = ()
    fingerprint: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentArtefact:
    """One regenerated experiment: its bytes plus run provenance."""

    name: str
    title: str
    description: str
    csv: str
    result: ExperimentResult
    spec_hash: str
    trials: int
    seed: int
    y_label: str
    x_label: str
    extra_columns: Tuple[str, ...] = ()
    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    elapsed_seconds: float = 0.0
    artefact_cached: bool = False

    @property
    def csv_sha256(self) -> str:
        """sha256 of the emitted CSV bytes."""
        return hashlib.sha256(self.csv.encode("utf-8")).hexdigest()

    @property
    def csv_filename(self) -> str:
        """The artefact's filename under ``<out>/csv/``."""
        return f"{self.name}.csv"


@dataclass(frozen=True)
class DriftVerdict:
    """One artefact's comparison against its committed golden."""

    artefact: str
    status: str  # PASS | DRIFT | MISSING | SKIP
    detail: str


@dataclass
class PaperPipeline:
    """Everything one :func:`run_paper` invocation produced."""

    artefacts: List[ExperimentArtefact]
    drift: List[DriftVerdict]
    out_dir: Path
    report_path: Path
    csv_dir: Path
    rundb_root: Path
    trials: int

    @property
    def check_passed(self) -> bool:
        """``repro paper --check``: every artefact verified byte-equal.

        ``SKIP`` (trials mismatch) and ``MISSING`` (no golden) fail the
        check — an unverifiable artefact is not a verified one.
        """
        return bool(self.drift) and all(
            verdict.status == "PASS" for verdict in self.drift
        )


# ---------------------------------------------------------------------------
# Registry runners: fixed seeds, reduced-but-representative scales.
# ---------------------------------------------------------------------------


def _run_figure3(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = figure3_series(
        sizes=(50, 100, 200),
        trials=s.trials,
        master_seed=1303,
        graphs_per_size=2,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result)


def _run_figure5(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = figure5_series(
        sizes=(10, 50, 100),
        trials=s.trials,
        master_seed=1305,
        graphs_per_size=2,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result)


def _run_grid(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = grid_beeps_series(
        side_lengths=(5, 8),
        trials=s.trials,
        master_seed=1306,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result)


def _run_theorem1(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = theorem1_experiment(
        sides=(3, 5, 7),
        trials=s.trials,
        master_seed=1101,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result)


def _run_sizes(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = mis_size_experiment(
        n=30,
        edge_probability=0.3,
        trials=s.trials,
        master_seed=1701,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result, extra_columns=("optimum_ratio",))


def _run_robustness(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result, _report = robustness_grid(
        n=40,
        loss_probabilities=(0.0, 0.1),
        spurious_probabilities=(0.0, 0.1),
        trials=s.trials,
        master_seed=1603,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    return result, results_to_csv(result)


def _run_compare(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    comparison = comparison_experiment(
        sizes=(30, 60),
        trials=s.trials,
        master_seed=2013,
        jobs=s.jobs,
        cache_dir=s.cache_dir,
    )
    # The plot shows the rounds axis; the CSV carries both quantities.
    return comparison.rounds, comparison_csv(comparison)


_BIO_SCALE: Dict[str, Any] = {
    "strengths": (1.0, 100.0),
    "rows": 5,
    "cols": 5,
    "t_end": 60.0,
}


def _run_bio(s: PaperSettings) -> Tuple[ExperimentResult, str]:
    result = inhibition_strength_ablation(
        strengths=_BIO_SCALE["strengths"],
        rows=_BIO_SCALE["rows"],
        cols=_BIO_SCALE["cols"],
        t_end=_BIO_SCALE["t_end"],
        trials=s.trials,
        master_seed=1910,
    )
    return result, results_to_csv(
        result, extra_columns=("mean_sops", "mis_fraction")
    )


REGISTRY: Tuple[PaperExperiment, ...] = (
    PaperExperiment(
        name="figure3",
        module="figures",
        title="Figure 3 — rounds vs n on G(n, 1/2)",
        description=(
            "Mean rounds to an MIS for the feedback and global-sweep "
            "algorithms, with the paper's log2^2 n and 2.5 log2 n "
            "reference curves."
        ),
        seed=1303,
        runner=_run_figure3,
    ),
    PaperExperiment(
        name="figure5",
        module="figures",
        title="Figure 5 — beeps per node vs n",
        description=(
            "Mean beeps per node: the feedback algorithm stays flat while "
            "the sweep's communication grows with n."
        ),
        seed=1305,
        runner=_run_figure5,
        y_label="beeps/node",
    ),
    PaperExperiment(
        name="grid",
        module="figures",
        title="Section 5 — beeps per node on grids",
        description=(
            "The text's claim that the feedback algorithm beeps about 1.1 "
            "times per node on rectangular grids, independent of size."
        ),
        seed=1306,
        runner=_run_grid,
        y_label="beeps/node",
        x_label="n (side^2)",
    ),
    PaperExperiment(
        name="theorem1",
        module="lower_bound",
        title="Theorem 1 — the disjoint-clique separation",
        description=(
            "Rounds on the lower-bound family: any preset global schedule "
            "(the sweep) needs Omega(log^2 n) while local feedback grows "
            "like log n."
        ),
        seed=1101,
        runner=_run_theorem1,
    ),
    PaperExperiment(
        name="sizes",
        module="sizes",
        title="MIS sizes vs the exact optimum",
        description=(
            "Mean selected-set size per algorithm on G(30, 0.3), with the "
            "fraction of the branch-and-bound optimum achieved."
        ),
        seed=1701,
        runner=_run_sizes,
        y_label="|MIS|",
        extra_columns=("optimum_ratio",),
    ),
    PaperExperiment(
        name="robustness",
        module="robustness",
        title="Section 6 — fault-grid robustness",
        description=(
            "Rounds under beep loss x spurious beeps on G(40, 1/2): the "
            "feedback algorithm degrades gracefully with channel noise."
        ),
        seed=1603,
        runner=_run_robustness,
        x_label="spurious probability",
    ),
    PaperExperiment(
        name="compare",
        module="compare",
        title="Beeping vs message passing",
        description=(
            "The paper's positioning against Luby-style algorithms: "
            "rounds on the plot, rounds plus bit complexity in the CSV."
        ),
        seed=2013,
        runner=_run_compare,
    ),
    PaperExperiment(
        name="bio",
        module="bio_ablation",
        title="Biology — inhibition-strength ablation",
        description=(
            "Collier Notch-Delta lattice: Delta separation of the emergent "
            "SOP pattern vs the lateral-inhibition strength b."
        ),
        seed=1910,
        runner=_run_bio,
        y_label="delta separation",
        x_label="inhibition strength b",
        orchestrated=False,
        extra_columns=("mean_sops", "mis_fraction"),
        fingerprint=dict(_BIO_SCALE),
    ),
)


def experiment_names() -> List[str]:
    """Registry experiment names, in pipeline order."""
    return [entry.name for entry in REGISTRY]


def select_experiments(
    only: Optional[Sequence[str]] = None,
) -> List[PaperExperiment]:
    """The registry subset to run (``None`` means everything)."""
    if only is None:
        return list(REGISTRY)
    known = {entry.name: entry for entry in REGISTRY}
    unknown = [name for name in only if name not in known]
    if unknown:
        raise ValueError(
            f"unknown experiment(s) {unknown}; "
            f"registered: {experiment_names()}"
        )
    wanted = set(only)
    return [entry for entry in REGISTRY if entry.name in wanted]


# ---------------------------------------------------------------------------
# Out-of-band shard observation (spec hashes + cache stats per experiment).
# ---------------------------------------------------------------------------


class _ShardProbe:
    """A telemetry sink collecting one experiment's shard stream."""

    def __init__(self) -> None:
        self.content_hashes: List[str] = []
        self.cached = 0
        self.executed = 0

    def __call__(self, event: Dict[str, Any]) -> None:
        if event.get("event") != "span" or event.get("name") != "sweep.shard":
            return
        attrs = event.get("attrs", {})
        digest = attrs.get("content_hash")
        if digest:
            self.content_hashes.append(str(digest))
        if attrs.get("cached"):
            self.cached += 1
        else:
            self.executed += 1

    def spec_hash(self) -> str:
        """The execution-fingerprint key over the observed shards."""
        return fingerprint_hash(
            {
                "format": SPEC_FORMAT_VERSION,
                "shards": sorted(set(self.content_hashes)),
            }
        )


@contextmanager
def _observe() -> Iterator[_ShardProbe]:
    """Attach a shard probe without disturbing installed telemetry.

    With a collector already installed (a ``--telemetry`` run ledger),
    the probe joins as an extra sink so ledger capture continues
    unchanged; otherwise a scoped collector is installed just to carry
    the probe events.
    """
    probe = _ShardProbe()
    active = probes.collector()
    if active is not None:
        active.add_sink(probe)
        try:
            yield probe
        finally:
            active.remove_sink(probe)
    else:
        with probes.capture() as collector:
            collector.add_sink(probe)
            yield probe


# ---------------------------------------------------------------------------
# Whole-artefact cache for non-orchestrated experiments (the bio ablation).
# ---------------------------------------------------------------------------


def _artefact_fingerprint(entry: PaperExperiment, trials: int) -> str:
    payload = {
        "paper_format": PAPER_FORMAT_VERSION,
        "experiment": entry.name,
        "seed": entry.seed,
        "trials": trials,
        "parameters": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in sorted(entry.fingerprint.items())
        },
    }
    return fingerprint_hash(payload)


def _artefact_cache_path(cache_dir: PathLike, digest: str) -> Path:
    return Path(cache_dir) / "paper" / digest[:2] / f"{digest}.json"


def _artefact_cache_get(
    cache_dir: Optional[PathLike], digest: str
) -> Optional[Tuple[ExperimentResult, str]]:
    """Stored (result, csv) for the fingerprint, or ``None`` on damage."""
    if cache_dir is None:
        return None
    try:
        payload = json.loads(
            _artefact_cache_path(cache_dir, digest).read_text(
                encoding="utf-8"
            )
        )
        if payload.get("format") != PAPER_FORMAT_VERSION:
            return None
        if payload.get("fingerprint") != digest:
            return None
        result = results_from_json(json.dumps(payload["result"]))
        csv_text = str(payload["csv"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    return result, csv_text


def _artefact_cache_put(
    cache_dir: Optional[PathLike],
    digest: str,
    result: ExperimentResult,
    csv_text: str,
) -> None:
    if cache_dir is None:
        return
    payload = {
        "format": PAPER_FORMAT_VERSION,
        "fingerprint": digest,
        "result": json.loads(results_to_json(result)),
        "csv": csv_text,
    }
    atomic_write_text(
        _artefact_cache_path(cache_dir, digest),
        json.dumps(payload, indent=2, sort_keys=True),
    )


# ---------------------------------------------------------------------------
# Drift vs committed goldens.
# ---------------------------------------------------------------------------


MANIFEST_NAME = "MANIFEST.json"


def _first_diff_line(current: str, golden: str) -> int:
    """1-based index of the first differing line (for drift details)."""
    current_lines = current.splitlines()
    golden_lines = golden.splitlines()
    for index, (a, b) in enumerate(zip(current_lines, golden_lines)):
        if a != b:
            return index + 1
    return min(len(current_lines), len(golden_lines)) + 1


def compare_golden(
    artefacts: Sequence[ExperimentArtefact],
    golden_dir: Optional[PathLike],
    trials: int,
) -> List[DriftVerdict]:
    """PASS/DRIFT/MISSING/SKIP per artefact against the golden dir."""
    if golden_dir is None:
        return [
            DriftVerdict(a.name, "MISSING", "no golden directory configured")
            for a in artefacts
        ]
    root = Path(golden_dir)
    try:
        manifest = json.loads(
            (root / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        golden_trials = int(manifest["trials"])
        files = dict(manifest.get("experiments", {}))
    except (OSError, ValueError, KeyError, TypeError):
        return [
            DriftVerdict(
                a.name, "MISSING", f"unreadable golden manifest under {root}"
            )
            for a in artefacts
        ]
    if golden_trials != trials:
        return [
            DriftVerdict(
                a.name,
                "SKIP",
                f"goldens pinned at trials={golden_trials}; "
                f"run used trials={trials}",
            )
            for a in artefacts
        ]
    verdicts: List[DriftVerdict] = []
    for artefact in artefacts:
        filename = files.get(artefact.name)
        if filename is None:
            verdicts.append(
                DriftVerdict(
                    artefact.name, "MISSING", "no golden committed"
                )
            )
            continue
        try:
            golden = (root / filename).read_text(encoding="utf-8")
        except OSError:
            verdicts.append(
                DriftVerdict(
                    artefact.name, "MISSING", f"golden file {filename} absent"
                )
            )
            continue
        if golden == artefact.csv:
            verdicts.append(
                DriftVerdict(artefact.name, "PASS", "byte-identical")
            )
        else:
            verdicts.append(
                DriftVerdict(
                    artefact.name,
                    "DRIFT",
                    "differs from golden at line "
                    f"{_first_diff_line(artefact.csv, golden)}",
                )
            )
    return verdicts


def write_golden(
    pipeline: PaperPipeline, golden_dir: PathLike
) -> List[Path]:
    """Pin the pipeline's CSVs as the new goldens (plus manifest)."""
    root = Path(golden_dir)
    written: List[Path] = []
    manifest: Dict[str, Any] = {
        "format": PAPER_FORMAT_VERSION,
        "trials": pipeline.trials,
        "experiments": {},
    }
    for artefact in pipeline.artefacts:
        path = root / artefact.csv_filename
        atomic_write_text(path, artefact.csv)
        manifest["experiments"][artefact.name] = artefact.csv_filename
        written.append(path)
    manifest_path = root / MANIFEST_NAME
    atomic_write_text(
        manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    written.append(manifest_path)
    return written


# ---------------------------------------------------------------------------
# The pipeline.
# ---------------------------------------------------------------------------


def _resolve_golden_dir(
    golden_dir: Optional[PathLike],
) -> Optional[Path]:
    if golden_dir is None:
        return None
    if golden_dir == GOLDEN_AUTO:
        return DEFAULT_GOLDEN_DIR if DEFAULT_GOLDEN_DIR.is_dir() else None
    return Path(golden_dir)


def _run_one(
    entry: PaperExperiment, settings: PaperSettings
) -> ExperimentArtefact:
    """Regenerate one experiment, observing its shard stream."""
    start = time.perf_counter()
    if entry.orchestrated:
        with _observe() as shard_probe:
            result, csv_text = entry.runner(settings)
        spec_hash = shard_probe.spec_hash()
        shards = dict(
            shards_total=shard_probe.cached + shard_probe.executed,
            shards_executed=shard_probe.executed,
            shards_cached=shard_probe.cached,
        )
        artefact_cached = False
    else:
        spec_hash = _artefact_fingerprint(entry, settings.trials)
        cached = _artefact_cache_get(settings.cache_dir, spec_hash)
        if cached is not None:
            result, csv_text = cached
            artefact_cached = True
        else:
            result, csv_text = entry.runner(settings)
            _artefact_cache_put(
                settings.cache_dir, spec_hash, result, csv_text
            )
            artefact_cached = False
        shards = dict(shards_total=0, shards_executed=0, shards_cached=0)
    return ExperimentArtefact(
        name=entry.name,
        title=entry.title,
        description=entry.description,
        csv=csv_text,
        result=result,
        spec_hash=spec_hash,
        trials=settings.trials,
        seed=entry.seed,
        y_label=entry.y_label,
        x_label=entry.x_label,
        extra_columns=entry.extra_columns,
        elapsed_seconds=time.perf_counter() - start,
        artefact_cached=artefact_cached,
        **shards,
    )


def _report_figures(
    artefacts: Sequence[ExperimentArtefact],
) -> List[ReportFigure]:
    return [
        ReportFigure(
            name=a.name,
            title=a.title,
            description=a.description,
            result=a.result,
            y_label=a.y_label,
            x_label=a.x_label,
            csv_filename=f"csv/{a.csv_filename}",
            spec_hash=a.spec_hash,
            trials=a.trials,
            seed=a.seed,
            extra_columns=a.extra_columns,
        )
        for a in artefacts
    ]


def _provenance(
    artefacts: Sequence[ExperimentArtefact], trials: int
) -> Dict[str, Any]:
    provenance: Dict[str, Any] = dict(run_versions())
    provenance["format.spec"] = SPEC_FORMAT_VERSION
    provenance["format.store"] = STORE_FORMAT_VERSION
    provenance["format.paper"] = PAPER_FORMAT_VERSION
    provenance["trials"] = trials
    for artefact in artefacts:
        provenance[f"seed.{artefact.name}"] = artefact.seed
        provenance[f"spec.{artefact.name}"] = artefact.spec_hash[:12]
    return provenance


def run_paper(
    trials: int = 3,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    out_dir: PathLike = "paper-artefacts",
    only: Optional[Sequence[str]] = None,
    golden_dir: Optional[PathLike] = GOLDEN_AUTO,
    bench_dir: Optional[PathLike] = ".",
    rundb_dir: Optional[PathLike] = None,
    now: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PaperPipeline:
    """Regenerate the paper's experiment surface; see the module docs.

    Writes ``<out_dir>/csv/<name>.csv`` per experiment plus
    ``<out_dir>/report.html``, appends one run record per experiment to
    the run database (``rundb_dir``, default ``<out_dir>/rundb``), and
    returns the full :class:`PaperPipeline`.  ``golden_dir`` defaults to
    auto-discovering the committed goldens; pass ``None`` to skip drift
    checking.  ``now`` injects the report timestamp — leaving it unset
    keeps reruns byte-identical.  ``progress`` (when given) receives one
    summary line per experiment.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    entries = select_experiments(only)
    settings = PaperSettings(trials=trials, jobs=jobs, cache_dir=cache_dir)
    out_root = Path(out_dir)
    csv_dir = out_root / "csv"
    rundb_root = Path(rundb_dir) if rundb_dir is not None else out_root / "rundb"

    artefacts: List[ExperimentArtefact] = []
    for entry in entries:
        artefact = _run_one(entry, settings)
        atomic_write_text(csv_dir / artefact.csv_filename, artefact.csv)
        artefacts.append(artefact)
        if progress is not None:
            cache_note = (
                "artefact-cache"
                if artefact.artefact_cached
                else f"shards total={artefact.shards_total} "
                f"executed={artefact.shards_executed} "
                f"cached={artefact.shards_cached}"
            )
            progress(
                f"{artefact.name}: {cache_note} "
                f"{artefact.elapsed_seconds:.3f}s"
            )

    drift = compare_golden(artefacts, _resolve_golden_dir(golden_dir), trials)
    verdict_by_name = {v.artefact: v for v in drift}

    rundb = RunDB(rundb_root)
    pipeline_id = f"{int(time.time() * 1e6):014x}"
    for artefact in artefacts:
        verdict = verdict_by_name[artefact.name]
        rundb.append(
            RunRecord(
                run_id=pipeline_id,
                experiment=artefact.name,
                spec_hash=artefact.spec_hash,
                trials=trials,
                shards_total=artefact.shards_total,
                shards_executed=artefact.shards_executed,
                shards_cached=artefact.shards_cached,
                elapsed_seconds=artefact.elapsed_seconds,
                drift=verdict.status,
                csv_sha256=artefact.csv_sha256,
                created=time.time(),
                extra=(
                    {"artefact_cached": True}
                    if artefact.artefact_cached
                    else {}
                ),
            )
        )

    html = render_paper_report(
        _report_figures(artefacts),
        provenance=_provenance(artefacts, trials),
        drift_rows=[(v.artefact, v.status, v.detail) for v in drift],
        bench_rows=bench_drift(bench_dir) if bench_dir is not None else (),
        now=now,
    )
    report_path = out_root / "report.html"
    atomic_write_text(report_path, html)

    return PaperPipeline(
        artefacts=artefacts,
        drift=drift,
        out_dir=out_root,
        report_path=report_path,
        csv_dir=csv_dir,
        rundb_root=rundb_root,
        trials=trials,
    )
