"""Result records and their JSON/CSV serialisation.

Every experiment driver returns a list of :class:`SeriesPoint` wrapped in an
:class:`ExperimentResult`; EXPERIMENTS.md is generated from these records,
and the benchmarks print them, so paper-vs-measured comparisons always go
through one well-defined schema.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class SeriesPoint:
    """One point of one experimental series.

    ``x`` is the independent variable (usually the number of nodes ``n``),
    ``mean``/``std`` summarise the dependent variable over ``trials``
    independent runs, and ``series`` names the curve (e.g. ``"feedback"``).
    """

    series: str
    x: float
    mean: float
    std: float
    trials: int
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """A named collection of series points plus provenance metadata."""

    experiment: str
    points: List[SeriesPoint]
    master_seed: int
    parameters: Dict[str, Any] = field(default_factory=dict)

    def series_names(self) -> List[str]:
        """Distinct series names, in first-appearance order."""
        names: List[str] = []
        for point in self.points:
            if point.series not in names:
                names.append(point.series)
        return names

    def series(self, name: str) -> List[SeriesPoint]:
        """All points of one series, sorted by x."""
        return sorted(
            (p for p in self.points if p.series == name),
            key=lambda p: p.x,
        )

    def xs(self, name: str) -> List[float]:
        """The x values of one series, sorted."""
        return [p.x for p in self.series(name)]

    def means(self, name: str) -> List[float]:
        """The means of one series, in x order."""
        return [p.mean for p in self.series(name)]


def results_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise a result (round-trippable; schema mirrors the dataclasses)."""
    payload = {
        "experiment": result.experiment,
        "master_seed": result.master_seed,
        "parameters": result.parameters,
        "points": [asdict(point) for point in result.points],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def results_from_json(text: str) -> ExperimentResult:
    """Inverse of :func:`results_to_json`."""
    payload = json.loads(text)
    points = [
        SeriesPoint(
            series=p["series"],
            x=p["x"],
            mean=p["mean"],
            std=p["std"],
            trials=p["trials"],
            extra=p.get("extra", {}),
        )
        for p in payload["points"]
    ]
    return ExperimentResult(
        experiment=payload["experiment"],
        points=points,
        master_seed=payload["master_seed"],
        parameters=payload.get("parameters", {}),
    )


def results_to_csv(
    result: ExperimentResult,
    extra_columns: Sequence[str] = (),
) -> str:
    """Flat CSV with one row per point (series,x,mean,std,trials).

    ``extra_columns`` appends named ``point.extra`` entries as additional
    columns (blank where a point lacks the key), so drivers that carry
    per-point extras — optimum ratios, ablation scores — export them
    without a bespoke writer.  The default output is unchanged.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "x", "mean", "std", "trials", *extra_columns])
    for point in result.points:
        row: List[Any] = [
            point.series, point.x, point.mean, point.std, point.trials
        ]
        for name in extra_columns:
            value = point.extra.get(name)
            row.append("" if value is None else value)
        writer.writerow(row)
    return buffer.getvalue()
