"""One-shot reproduction report.

``build_report`` runs a reduced version of every experiment in the paper
and renders a single text report — the programmatic counterpart of
EXPERIMENTS.md, used by ``repro-mis report`` and handy for checking a
changed algorithm against all claims at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.experiments.ablations import factor_ablation
from repro.experiments.figures import figure3_series, figure5_series, grid_beeps_series
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.tables import format_experiment
from repro.viz.ascii_plots import plot_experiment


@dataclass(frozen=True)
class ReportSection:
    """One experiment's rendered block plus its pass/fail verdict."""

    title: str
    body: str
    passed: bool


def _verdict(flag: bool) -> str:
    return "PASS" if flag else "FAIL"


def _figure3_section(trials: int, master_seed: int) -> ReportSection:
    sizes = (50, 100, 200, 400)
    result = figure3_series(sizes=sizes, trials=trials, master_seed=master_seed)
    feedback = result.means("feedback")
    sweep = result.means("afek-sweep")
    ns = result.xs("feedback")
    feedback_fit = fit_log2(ns, feedback)
    sweep_fit = fit_log2_squared(ns, sweep)
    passed = (
        all(f < s for f, s in zip(feedback, sweep))
        and 1.0 < feedback_fit.slope < 5.0
    )
    body = (
        format_experiment(result)
        + f"\nfeedback fit: {feedback_fit.format()}"
        + f"\nsweep fit:    {sweep_fit.format()}"
        + "\n"
        + plot_experiment(result, y_label="rounds")
    )
    return ReportSection("Figure 3: rounds vs n", body, passed)


def _figure5_section(trials: int, master_seed: int) -> ReportSection:
    result = figure5_series(
        sizes=(10, 50, 100, 200), trials=trials, master_seed=master_seed
    )
    feedback = result.means("feedback")
    sweep = result.means("afek-sweep")
    passed = max(feedback) < 2.5 and sweep[-1] > sweep[0]
    return ReportSection(
        "Figure 5: beeps per node vs n",
        format_experiment(result),
        passed,
    )


def _grid_section(trials: int, master_seed: int) -> ReportSection:
    result = grid_beeps_series(
        side_lengths=(5, 10), trials=trials, master_seed=master_seed
    )
    means = [p.mean for p in result.series("feedback")]
    passed = all(0.6 < m < 2.0 for m in means)
    return ReportSection(
        "Section 5: beeps per node on grids (paper: ~1.1)",
        format_experiment(result),
        passed,
    )


def _theorem1_section(trials: int, master_seed: int) -> ReportSection:
    result = theorem1_experiment(
        sides=(4, 8, 12), trials=trials, master_seed=master_seed
    )
    sweep = result.means("afek-sweep")
    feedback = result.means("feedback")
    passed = all(f < s for f, s in zip(feedback, sweep))
    return ReportSection(
        "Theorem 1: the disjoint-clique separation",
        format_experiment(result),
        passed,
    )


def _robustness_section(trials: int, master_seed: int) -> ReportSection:
    result = factor_ablation(
        factor_pairs=((0.5, 2.0), (0.3, 3.0), (0.7, 1.3)),
        n=150,
        trials=trials,
        master_seed=master_seed,
    )
    baseline = result.points[0].mean
    passed = all(p.mean < 3.0 * baseline for p in result.points)
    return ReportSection(
        "Section 6: factor robustness",
        format_experiment(result),
        passed,
    )


def build_sections(
    trials: int = 10, master_seed: int = 2303
) -> List[ReportSection]:
    """Run every reduced experiment and return the rendered sections."""
    if trials < 2:
        raise ValueError("trials must be >= 2")
    return [
        _figure3_section(trials, master_seed),
        _figure5_section(trials, master_seed),
        _grid_section(trials, master_seed),
        _theorem1_section(trials, master_seed),
        _robustness_section(trials, master_seed),
    ]


def build_report(trials: int = 10, master_seed: int = 2303) -> str:
    """The full text report, with a verdict summary at the top."""
    sections = build_sections(trials, master_seed)
    bar = "=" * 74
    lines = [
        bar,
        "Reproduction report: 'Feedback from nature' (PODC 2013)",
        f"(reduced scale: {trials} trials per point; see EXPERIMENTS.md "
        "for the full-scale record)",
        bar,
        "",
        "verdicts:",
    ]
    for section in sections:
        lines.append(f"  [{_verdict(section.passed)}] {section.title}")
    lines.append("")
    for section in sections:
        lines.append(bar)
        lines.append(section.title)
        lines.append(bar)
        lines.append(section.body)
        lines.append("")
    return "\n".join(lines)
