"""One-shot reproduction report.

``build_report`` runs a reduced version of every experiment in the paper
and renders a single text report — the programmatic counterpart of
EXPERIMENTS.md, used by ``repro-mis report`` and handy for checking a
changed algorithm against all claims at once.

Every orchestrated section threads ``jobs``/``cache_dir`` through to the
sweep orchestrator, so ``repro report --cache-dir .cache`` reuses (and
extends) the same shard store as ``repro paper`` and ``repro sweep``.
The factor-ablation section is the one exception: it explores engine
*parameter* perturbations outside the CellSpec schema and stays a direct
batch run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

PathLike = Union[str, Path]

from repro.analysis.regression import fit_log2, fit_log2_squared
from repro.experiments.ablations import factor_ablation
from repro.experiments.figures import figure3_series, figure5_series, grid_beeps_series
from repro.experiments.lower_bound import theorem1_experiment
from repro.experiments.tables import format_experiment
from repro.viz.ascii_plots import plot_experiment


@dataclass(frozen=True)
class ReportSection:
    """One experiment's rendered block plus its pass/fail verdict."""

    title: str
    body: str
    passed: bool


def _verdict(flag: bool) -> str:
    return "PASS" if flag else "FAIL"


def _figure3_section(
    trials: int,
    master_seed: int,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> ReportSection:
    sizes = (50, 100, 200, 400)
    result = figure3_series(
        sizes=sizes,
        trials=trials,
        master_seed=master_seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    feedback = result.means("feedback")
    sweep = result.means("afek-sweep")
    ns = result.xs("feedback")
    feedback_fit = fit_log2(ns, feedback)
    sweep_fit = fit_log2_squared(ns, sweep)
    passed = (
        all(f < s for f, s in zip(feedback, sweep))
        and 1.0 < feedback_fit.slope < 5.0
    )
    body = (
        format_experiment(result)
        + f"\nfeedback fit: {feedback_fit.format()}"
        + f"\nsweep fit:    {sweep_fit.format()}"
        + "\n"
        + plot_experiment(result, y_label="rounds")
    )
    return ReportSection("Figure 3: rounds vs n", body, passed)


def _figure5_section(
    trials: int,
    master_seed: int,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> ReportSection:
    result = figure5_series(
        sizes=(10, 50, 100, 200),
        trials=trials,
        master_seed=master_seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    feedback = result.means("feedback")
    sweep = result.means("afek-sweep")
    passed = max(feedback) < 2.5 and sweep[-1] > sweep[0]
    return ReportSection(
        "Figure 5: beeps per node vs n",
        format_experiment(result),
        passed,
    )


def _grid_section(
    trials: int,
    master_seed: int,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> ReportSection:
    result = grid_beeps_series(
        side_lengths=(5, 10),
        trials=trials,
        master_seed=master_seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    means = [p.mean for p in result.series("feedback")]
    passed = all(0.6 < m < 2.0 for m in means)
    return ReportSection(
        "Section 5: beeps per node on grids (paper: ~1.1)",
        format_experiment(result),
        passed,
    )


def _theorem1_section(
    trials: int,
    master_seed: int,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> ReportSection:
    result = theorem1_experiment(
        sides=(4, 8, 12),
        trials=trials,
        master_seed=master_seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    sweep = result.means("afek-sweep")
    feedback = result.means("feedback")
    passed = all(f < s for f, s in zip(feedback, sweep))
    return ReportSection(
        "Theorem 1: the disjoint-clique separation",
        format_experiment(result),
        passed,
    )


def _robustness_section(trials: int, master_seed: int) -> ReportSection:
    result = factor_ablation(
        factor_pairs=((0.5, 2.0), (0.3, 3.0), (0.7, 1.3)),
        n=150,
        trials=trials,
        master_seed=master_seed,
    )
    baseline = result.points[0].mean
    passed = all(p.mean < 3.0 * baseline for p in result.points)
    return ReportSection(
        "Section 6: factor robustness",
        format_experiment(result),
        passed,
    )


def build_sections(
    trials: int = 10,
    master_seed: int = 2303,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> List[ReportSection]:
    """Run every reduced experiment and return the rendered sections."""
    if trials < 2:
        raise ValueError("trials must be >= 2")
    return [
        _figure3_section(trials, master_seed, jobs, cache_dir),
        _figure5_section(trials, master_seed, jobs, cache_dir),
        _grid_section(trials, master_seed, jobs, cache_dir),
        _theorem1_section(trials, master_seed, jobs, cache_dir),
        _robustness_section(trials, master_seed),
    ]


def build_report(
    trials: int = 10,
    master_seed: int = 2303,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> str:
    """The full text report, with a verdict summary at the top."""
    sections = build_sections(trials, master_seed, jobs, cache_dir)
    bar = "=" * 74
    lines = [
        bar,
        "Reproduction report: 'Feedback from nature' (PODC 2013)",
        f"(reduced scale: {trials} trials per point; see EXPERIMENTS.md "
        "for the full-scale record)",
        bar,
        "",
        "verdicts:",
    ]
    for section in sections:
        lines.append(f"  [{_verdict(section.passed)}] {section.title}")
    lines.append("")
    for section in sections:
        lines.append(bar)
        lines.append(section.title)
        lines.append(bar)
        lines.append(section.body)
        lines.append("")
    return "\n".join(lines)
