"""Robustness sweeps: the Section 6 fault grid, cached and fleet-fast.

The paper claims the feedback algorithm is "highly robust"; this driver
turns that claim into a reproducible grid.  Every (beep loss, spurious
beep) combination is one :class:`~repro.sweep.spec.CellSpec` executed
through the sharded sweep orchestrator, so a robustness grid

- runs on the trial-parallel fleet engine by default (vectorised fault
  masks — see ``docs/robustness.md``), orders of magnitude faster than
  the per-node reference channel;
- lands in the content-addressed result store: fault parameters are part
  of every shard's cache key, so regenerating a grid against a warm cache
  executes zero simulations and extending it only runs the new cells.

All cells share one master seed, so fault levels are compared on
identical graphs and identical clean randomness (paired comparison); only
the injected faults differ.  ``repro robustness`` is the CLI front-end.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.experiments.records import ExperimentResult
from repro.sweep.aggregate import cell_point, outcome_value
from repro.sweep.orchestrator import SweepReport, run_sweep
from repro.sweep.spec import CellSpec, SweepSpec
from repro.sweep.store import PathLike


def robustness_grid(
    algorithm: str = "feedback",
    engine: str = "fleet",
    n: int = 100,
    edge_probability: float = 0.5,
    loss_probabilities: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    spurious_probabilities: Sequence[float] = (0.0, 0.05, 0.1),
    crashes: Sequence[Tuple[int, int]] = (),
    churn: Sequence[Tuple[Any, ...]] = (),
    trials: int = 32,
    graphs: int = 1,
    master_seed: int = 1603,
    quantity: str = "rounds",
    shard_trials: int = 32,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    max_rounds: int = 100_000,
) -> Tuple[ExperimentResult, SweepReport]:
    """Sweep a fault grid and summarise it as one experiment record.

    One series per beep-loss level, with the spurious-beep probability on
    the x-axis — the natural "rounds degrade gracefully with noise"
    figure.  ``crashes`` (``(round, vertex)`` pairs) and ``churn``
    (:func:`~repro.beeping.faults.ChurnSchedule.to_tuples`-shaped events)
    apply to *every* cell, so the grid can also be run entirely under a
    crash or churn schedule; with churn the per-cell points additionally
    carry ``repair`` (mean self-repair rounds over resolved events) and
    ``recovered`` (fraction of trials that reconverged) in their extras.
    Returns the summarised :class:`ExperimentResult` plus the orchestrator
    report (total/executed/cached shard counts).
    """
    if not loss_probabilities or not spurious_probabilities:
        raise ValueError("need at least one loss and one spurious level")
    cells = []
    for loss in loss_probabilities:
        for spurious in spurious_probabilities:
            cells.append(
                CellSpec(
                    algorithm=algorithm,
                    engine=engine,
                    family="gnp",
                    n=n,
                    edge_probability=edge_probability,
                    trials=trials,
                    graphs=graphs,
                    master_seed=master_seed,
                    beep_loss=loss,
                    spurious_beep=spurious,
                    crashes=tuple(crashes),
                    churn=tuple(churn),
                    max_rounds=max_rounds,
                )
            )
    spec = SweepSpec(tuple(cells), shard_trials=shard_trials)
    sweep = run_sweep(spec, store=cache_dir, jobs=jobs)
    points = []
    for cell in cells:
        rows = sweep.rows(cell)
        extra = {"loss": cell.beep_loss, "spurious": cell.spurious_beep}
        if cell.churn:
            repairs = [outcome_value(row, "repair") for row in rows]
            recovered = [outcome_value(row, "recovered") for row in rows]
            extra["repair"] = sum(repairs) / len(repairs) if repairs else 0.0
            extra["recovered"] = (
                sum(recovered) / len(recovered) if recovered else 1.0
            )
        points.append(
            cell_point(
                cell,
                rows,
                quantity,
                series=f"loss={cell.beep_loss}",
                x=cell.spurious_beep,
                extra=extra,
            )
        )
    result = ExperimentResult(
        experiment="robustness",
        points=points,
        master_seed=master_seed,
        parameters={
            "algorithm": algorithm,
            "engine": engine,
            "n": n,
            "edge_probability": edge_probability,
            "loss_probabilities": list(loss_probabilities),
            "spurious_probabilities": list(spurious_probabilities),
            "crashes": [list(pair) for pair in crashes],
            "churn": [list(event) for event in churn],
            "trials": trials,
            "graphs": graphs,
            "quantity": quantity,
        },
    )
    return result, sweep.report
