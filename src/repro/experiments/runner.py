"""Generic seeded trial execution for the reference engine.

The figure drivers use the vectorised engine for scale; this runner drives
the *reference* engine, which is what the robustness ablations and any
experiment needing traces, faults or non-uniform node policies use.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import RngStream
from repro.graphs.graph import Graph

GraphFactory = Callable[[Random], Graph]
AlgorithmFactory = Callable[[], MISAlgorithm]


@dataclass(frozen=True)
class TrialOutcome:
    """The metrics of one trial (the full MISRun is dropped to save memory)."""

    trial: int
    rounds: int
    mis_size: int
    mean_beeps_per_node: float
    messages: int
    bits: int


def run_trials(
    algorithm_factory: AlgorithmFactory,
    graph_factory: GraphFactory,
    trials: int,
    master_seed: int,
    faults: FaultModel = NO_FAULTS,
    validate: bool = True,
    max_rounds: int = 100_000,
) -> List[TrialOutcome]:
    """Run ``trials`` independent (graph, algorithm) trials.

    Each trial draws a fresh graph and a fresh algorithm instance with
    independently derived seeds, so trials are exchangeable and the whole
    batch is reproducible from ``master_seed``.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    stream = RngStream(master_seed)
    outcomes: List[TrialOutcome] = []
    for trial in range(trials):
        graph = graph_factory(stream.child(trial, 0))
        algorithm = algorithm_factory()
        run = algorithm.run(
            graph,
            stream.child(trial, 1),
            faults=faults,
            max_rounds=max_rounds,
        )
        if validate:
            run.verify()
        outcomes.append(
            TrialOutcome(
                trial=trial,
                rounds=run.rounds,
                mis_size=run.mis_size,
                mean_beeps_per_node=run.mean_beeps_per_node,
                messages=run.messages,
                bits=run.bits,
            )
        )
    return outcomes
