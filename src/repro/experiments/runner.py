"""Generic seeded trial execution.

Two runners share the :class:`TrialOutcome` record:

- :func:`run_trials` drives the per-node *reference* engine — what any
  experiment needing traces or non-uniform node policies uses.
- :func:`run_fleet_trials` drives the trial-parallel fleet engine: trials
  are grouped per graph, and in the default ``"counter"`` rng mode every
  same-size group runs inside **one** block-diagonal
  :class:`~repro.engine.fleet.ArmadaSimulator` batch (in ``"stream"``
  mode, one lockstep :class:`~repro.engine.fleet.FleetSimulator` batch
  per graph).

Both accept a :class:`~repro.beeping.faults.FaultModel` — robustness
sweeps run on the fleet engine too (vectorised beep loss, spurious beeps
and crash schedules; see ``docs/robustness.md``); the reference runner is
the slower, instrumented alternative and agrees with it in law.

Both accept a ``trial_range=(lo, hi)`` window: only global trials
``lo .. hi-1`` are executed, with exactly the seeds they would consume in
the full run.  Concatenating the outcomes of a partition of ``[0, trials)``
therefore reproduces the unsharded run bit for bit — this is the contract
the sweep orchestrator (:mod:`repro.sweep`) shards on.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import MISAlgorithm, MISRun
from repro.beeping.faults import FaultModel, NO_FAULTS
from repro.beeping.rng import RngStream
from repro.graphs.graph import Graph

GraphFactory = Callable[[Random], Graph]
AlgorithmFactory = Callable[[], MISAlgorithm]


@dataclass(frozen=True)
class TrialOutcome:
    """The metrics of one trial (the full MISRun is dropped to save memory).

    ``repair_rounds`` and ``recovered`` are churn self-repair metrics
    (``docs/robustness.md``); the defaults make fault-free and
    crash-only rows — including every row cached before the churn axis
    existed — identical to their pre-churn form.
    """

    trial: int
    rounds: int
    mis_size: int
    mean_beeps_per_node: float
    messages: int
    bits: int
    repair_rounds: Tuple[int, ...] = ()
    recovered: bool = True


def _resolve_trial_range(
    trials: int, trial_range: Optional[Tuple[int, int]]
) -> Tuple[int, int]:
    """Validate and default a ``(lo, hi)`` window over ``[0, trials)``."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if trial_range is None:
        return 0, trials
    lo, hi = trial_range
    if not 0 <= lo < hi <= trials:
        raise ValueError(
            f"trial_range must satisfy 0 <= lo < hi <= {trials}, "
            f"got ({lo}, {hi})"
        )
    return lo, hi


def run_trials(
    algorithm_factory: AlgorithmFactory,
    graph_factory: GraphFactory,
    trials: int,
    master_seed: int,
    faults: FaultModel = NO_FAULTS,
    validate: bool = True,
    max_rounds: int = 100_000,
    trial_range: Optional[Tuple[int, int]] = None,
) -> List[TrialOutcome]:
    """Run ``trials`` independent (graph, algorithm) trials.

    Each trial draws a fresh graph and a fresh algorithm instance with
    independently derived seeds, so trials are exchangeable and the whole
    batch is reproducible from ``master_seed``.  ``trial_range`` restricts
    execution to global trials ``lo .. hi-1`` without changing any seed.
    """
    lo, hi = _resolve_trial_range(trials, trial_range)
    stream = RngStream(master_seed)
    outcomes: List[TrialOutcome] = []
    for trial in range(lo, hi):
        graph = graph_factory(stream.child(trial, 0))
        algorithm = algorithm_factory()
        run = algorithm.run(
            graph,
            stream.child(trial, 1),
            faults=faults,
            max_rounds=max_rounds,
        )
        if validate:
            run.verify()
        outcomes.append(
            TrialOutcome(
                trial=trial,
                rounds=run.rounds,
                mis_size=run.mis_size,
                mean_beeps_per_node=run.mean_beeps_per_node,
                messages=run.messages,
                bits=run.bits,
                repair_rounds=tuple(run.repair_rounds),
                recovered=run.recovered,
            )
        )
    return outcomes


def _emit_message_outcomes(
    outcomes: List[TrialOutcome],
    run: "object",
    group_lo: int,
) -> None:
    """Append one group's rows from a MessageFleetRun.

    Message algorithms do not beep; ``messages``/``bits`` carry the
    per-node references' value-exchange accounting.
    """
    for t in range(run.trials):
        outcomes.append(
            TrialOutcome(
                trial=group_lo + t,
                rounds=int(run.rounds[t]),
                mis_size=int(run.membership[t].sum()),
                mean_beeps_per_node=0.0,
                messages=int(run.messages[t]),
                bits=int(run.bits[t]),
            )
        )


def _emit_fleet_outcomes(
    outcomes: List[TrialOutcome],
    run: "object",
    graph: Graph,
    group_lo: int,
) -> None:
    """Append one group's :class:`TrialOutcome` rows from a FleetRun.

    Beep accounting mirrors the reference engine's: a beep is one 1-bit
    message per incident channel.  ``graph`` must match the run's width
    — the universe graph for churn runs.
    """
    degrees = np.array(graph.degrees(), dtype=np.int64)
    for t in range(run.trials):
        channel_bits = int((run.beeps_by_node[t] * degrees).sum())
        outcomes.append(
            TrialOutcome(
                trial=group_lo + t,
                rounds=int(run.rounds[t]),
                mis_size=int(run.membership[t].sum()),
                mean_beeps_per_node=float(run.mean_beeps[t]),
                messages=channel_bits,
                bits=channel_bits,
                repair_rounds=(
                    tuple(int(r) for r in run.repair_rounds[t])
                    if run.repair_rounds is not None
                    else ()
                ),
                recovered=run.trial_recovered(t),
            )
        )


def _emit_application_outcomes(
    outcomes: List[TrialOutcome],
    run: "object",
    rule: "object",
    host: Graph,
    group_lo: int,
) -> None:
    """Append one group's rows from an ApplicationFleetRun.

    ``mis_size`` carries the application's output size (colour count for
    peeling, matched edges / chosen vertices otherwise); beep and channel
    accounting lives on the *host* graph the MIS layers beeped on.
    """
    degrees = np.array(host.degrees(), dtype=np.int64)
    for t in range(run.trials):
        channel_bits = int((run.beeps_by_node[t] * degrees).sum())
        outcomes.append(
            TrialOutcome(
                trial=group_lo + t,
                rounds=int(run.rounds[t]),
                mis_size=int(rule.output_size(run, t)),
                mean_beeps_per_node=float(run.mean_beeps[t]),
                messages=channel_bits,
                bits=channel_bits,
            )
        )


def run_fleet_trials(
    rule_factory: "Callable[[], object]",
    graph_factory: GraphFactory,
    trials: int,
    master_seed: int,
    graphs: int = 1,
    validate: bool = True,
    max_rounds: int = 100_000,
    trial_range: Optional[Tuple[int, int]] = None,
    faults: FaultModel = NO_FAULTS,
    rng_mode: str = "counter",
    backend: str = "auto",
) -> List[TrialOutcome]:
    """Run ``trials`` trials on the trial-parallel fleet engine.

    The trials are spread over ``graphs`` independently drawn graphs (the
    fleet engine batches trials *per graph*).  The graph for group ``g``
    is drawn on path ``(g, 0)`` and its trial seeds on the disjoint path
    ``(g, 1, trial)``, so graph topology and simulation randomness are
    independent, and outcomes are reproducible and identical to a
    per-trial loop over the same seeds in the same ``rng_mode``.
    ``faults`` injects the vectorised fault model into every trial (a
    fault-free model changes nothing, including the random streams).

    ``rng_mode`` defaults to ``"counter"`` — the sweep/figure hot path —
    where all same-``n`` groups execute as **one** block-diagonal
    :class:`~repro.engine.fleet.ArmadaSimulator` batch: a single lockstep
    round-loop per call instead of one per graph.  ``"stream"`` keeps the
    PR-3 per-graph :class:`~repro.engine.fleet.FleetSimulator` path and
    its golden-trace-pinned byte streams.  Either way, group ``g`` /
    trial ``t`` is bit-identical to the corresponding lone fleet (and
    per-trial engine) run in that mode.

    ``backend`` picks the probability engines' neighbour-reduction
    kernel (``"auto"``, ``"dense"``, ``"sparse"`` or ``"bitboard"``) for
    both the armada and the per-graph fleet path — pure execution
    strategy, bit-identical rows either way.  The message/application
    engines resolve their own backends and ignore it.

    ``trial_range=(lo, hi)`` executes only the global trials ``lo .. hi-1``.
    The graph grouping is always computed from the *full* ``(trials,
    graphs)`` pair and seeds come from each group's own offset window, so a
    window's outcomes equal the corresponding slice of the full run.

    ``rule_factory`` may also produce a
    :class:`~repro.engine.messages.MessageRule` (the Luby variants,
    Métivier, local-minimum-id): the same seed paths then drive the
    message-passing lockstep engines —
    :class:`~repro.engine.messages.MessageArmadaSimulator` for same-``n``
    windows, per-graph :class:`~repro.engine.messages.MessageFleetSimulator`
    otherwise — and rows carry the references' message/bit accounting.
    Message rules are counter-only and reject fault models.

    It may equally produce an
    :class:`~repro.engine.applications.ApplicationRule` (MIS-peeling
    colouring, matching, dominating and ruling sets): the same seed paths
    then drive the application lockstep engines —
    :class:`~repro.engine.applications.ApplicationArmadaSimulator` when
    every group's *host* graph has the same vertex count (edge count for
    matching), per-graph
    :class:`~repro.engine.applications.ApplicationFleetSimulator`
    otherwise.  Rows then report the application's output size (colour
    count, matched edges, chosen vertices) as ``mis_size``, beeping
    rounds summed over all MIS layers as ``rounds``, and beep/channel
    accounting on the host graph.  Application rules are counter-only
    and reject fault models, like the message rules.
    """
    from repro.beeping.rng import derive_seed_block
    from repro.engine.applications import (
        ApplicationArmadaSimulator,
        ApplicationFleetSimulator,
        ApplicationRule,
        check_application_run,
    )
    from repro.engine.fleet import ArmadaSimulator, FleetSimulator
    from repro.engine.messages import (
        MessageArmadaSimulator,
        MessageFleetSimulator,
        MessageRule,
        check_message_run,
    )
    from repro.engine.simulator import check_rng_mode

    check_rng_mode(rng_mode)
    if graphs < 1:
        raise ValueError(f"graphs must be >= 1, got {graphs}")
    rule = rule_factory()
    message = isinstance(rule, MessageRule)
    if message:
        check_message_run(rule, faults, rng_mode)
    application = isinstance(rule, ApplicationRule)
    if application:
        check_application_run(rule, faults, rng_mode)
    lo, hi = _resolve_trial_range(trials, trial_range)
    stream = RngStream(master_seed)
    per_graph = [trials // graphs] * graphs
    for extra in range(trials % graphs):
        per_graph[extra] += 1
    selected: List[Tuple[int, int, int]] = []  # (graph_index, lo, hi)
    group_start = 0
    for graph_index, group_trials in enumerate(per_graph):
        group_lo = max(lo, group_start)
        group_hi = min(hi, group_start + group_trials)
        if group_lo < group_hi:
            selected.append((graph_index, group_lo, group_hi))
        group_start += group_trials
    group_starts = np.concatenate(([0], np.cumsum(per_graph)))

    def group_seeds(graph_index: int, group_lo: int, group_hi: int):
        return derive_seed_block(
            master_seed,
            graph_index,
            1,
            count=group_hi - group_lo,
            start=group_lo - int(group_starts[graph_index]),
        )

    outcomes: List[TrialOutcome] = []
    drawn = [
        graph_factory(stream.child(graph_index, 0))
        for graph_index, _, _ in selected
    ]
    same_n = len({graph.num_vertices for graph in drawn}) == 1
    if message:
        # The message-passing fabric is counter-only (checked above), so
        # same-n windows always take the one-batch armada path.
        if same_n and drawn:
            armada = MessageArmadaSimulator(drawn, max_rounds=max_rounds)
            runs = armada.run_armada(
                rule,
                [group_seeds(*group) for group in selected],
                validate=validate,
            )
            for (graph_index, group_lo, group_hi), run in zip(selected, runs):
                _emit_message_outcomes(outcomes, run, group_lo)
            return outcomes
        for (graph_index, group_lo, group_hi), graph in zip(selected, drawn):
            run = MessageFleetSimulator(graph, max_rounds=max_rounds).run_fleet(
                rule,
                group_seeds(graph_index, group_lo, group_hi),
                validate=validate,
            )
            _emit_message_outcomes(outcomes, run, group_lo)
        return outcomes
    if application:
        # Armada eligibility depends on the *host* sizes (e.g. the line
        # graph's vertex count for matching), checked cheaply via
        # host_size before any host graph is built.
        same_host = len({rule.host_size(graph) for graph in drawn}) == 1
        if same_host and drawn:
            armada = ApplicationArmadaSimulator(
                drawn, rule, max_rounds=max_rounds
            )
            runs = armada.run_armada(
                [group_seeds(*group) for group in selected],
                validate=validate,
            )
            for (graph_index, group_lo, group_hi), host, run in zip(
                selected, armada.hosts, runs
            ):
                _emit_application_outcomes(
                    outcomes, run, rule, host, group_lo
                )
            return outcomes
        for (graph_index, group_lo, group_hi), graph in zip(selected, drawn):
            simulator = ApplicationFleetSimulator(
                graph, rule, max_rounds=max_rounds
            )
            run = simulator.run_fleet(
                group_seeds(graph_index, group_lo, group_hi),
                validate=validate,
            )
            _emit_application_outcomes(
                outcomes, run, rule, simulator.host, group_lo
            )
        return outcomes
    # Beep/channel accounting must match the run's width: under churn
    # the engines run (and report) on the universe graph.
    if faults.churn_schedule.is_empty():
        emit_graphs = drawn
    else:
        emit_graphs = [
            faults.churn_schedule.universe_graph(graph) for graph in drawn
        ]
    if rng_mode == "counter" and len(drawn) >= 1 and same_n:
        # The armada path: every group of the window in one batch.
        armada = ArmadaSimulator(drawn, max_rounds=max_rounds, backend=backend)
        runs = armada.run_armada(
            rule_factory(),
            [group_seeds(*group) for group in selected],
            validate=validate,
            faults=faults,
        )
        for (graph_index, group_lo, group_hi), graph, run in zip(
            selected, emit_graphs, runs
        ):
            _emit_fleet_outcomes(outcomes, run, graph, group_lo)
        return outcomes
    # Stream mode (or counter with heterogeneous vertex counts, which the
    # block-diagonal stack cannot express): one fleet batch per graph.
    for (graph_index, group_lo, group_hi), graph, emit_graph in zip(
        selected, drawn, emit_graphs
    ):
        simulator = FleetSimulator(graph, max_rounds=max_rounds, backend=backend)
        run = simulator.run_fleet(
            rule_factory(),
            group_seeds(graph_index, group_lo, group_hi),
            validate=validate,
            faults=faults,
            rng_mode=rng_mode,
        )
        _emit_fleet_outcomes(outcomes, run, emit_graph, group_lo)
    return outcomes
