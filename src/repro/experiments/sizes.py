"""MIS-size study: how large are the sets the algorithms select?

The paper's introduction notes that "different maximal independent sets for
the same network can vary greatly in size" and that finding a *maximum* one
is NP-hard.  This experiment quantifies where each algorithm's MIS sizes
fall: mean size per algorithm on a common workload, plus — on graphs small
enough for the exact branch-and-bound solver — the fraction of the optimum
achieved.

Execution goes through the sweep orchestrator (:mod:`repro.sweep`): one
reference-engine cell per algorithm, all under the *same* master seed, so
trial ``t`` of every algorithm runs on the identical graph (drawn on seed
path ``(t, 0)``) and the optimum comparison stays paired.  ``jobs`` shards
the work over processes and ``cache_dir`` reuses stored trial rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.algorithms.exact import MAX_EXACT_VERTICES, maximum_independent_set
from repro.beeping.rng import RngStream
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.random_graphs import gnp_random_graph

PathLike = Union[str, Path]

DEFAULT_ALGORITHMS = (
    "feedback",
    "afek-sweep",
    "luby-permutation",
    "greedy",
)


def mis_size_experiment(
    n: int = 40,
    edge_probability: float = 0.3,
    trials: int = 20,
    algorithm_names: Sequence[str] = DEFAULT_ALGORITHMS,
    master_seed: int = 1701,
    include_optimum: Optional[bool] = None,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    shard_trials: Optional[int] = None,
) -> ExperimentResult:
    """Mean MIS size per algorithm over ``trials`` G(n, p) graphs.

    When the graphs are small enough (or ``include_optimum`` forces it),
    each point's ``extra["optimum_ratio"]`` records mean(size / optimum).
    """
    from repro.sweep.aggregate import summarize
    from repro.sweep.orchestrator import run_sweep
    from repro.sweep.spec import CellSpec, SweepSpec

    if include_optimum is None:
        include_optimum = n <= MAX_EXACT_VERTICES
    if include_optimum and n > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact optimum needs n <= {MAX_EXACT_VERTICES}, got {n}"
        )
    cells = tuple(
        CellSpec(
            algorithm=name,
            engine="reference",
            family="gnp",
            n=n,
            edge_probability=edge_probability,
            trials=trials,
            master_seed=master_seed,
            validate=True,
        )
        for name in algorithm_names
    )
    spec = SweepSpec(
        cells,
        shard_trials=shard_trials if shard_trials is not None else 32,
    )
    sweep = run_sweep(spec, store=cache_dir, jobs=jobs)

    optima: List[int] = []
    if include_optimum:
        # Redraw each trial's graph exactly as the reference runner does
        # (seed path (t, 0) under the shared master seed) and solve it.
        stream = RngStream(master_seed)
        optima = [
            len(
                maximum_independent_set(
                    gnp_random_graph(n, edge_probability, stream.child(t, 0))
                )
            )
            for t in range(trials)
        ]

    points: List[SeriesPoint] = []
    for name, cell in zip(algorithm_names, cells):
        rows = sweep.rows(cell)
        sizes = [row.mis_size for row in rows]
        mean, std = summarize([float(s) for s in sizes])
        extra: Dict[str, float] = {}
        if include_optimum:
            ratios = [
                size / optimum
                for size, optimum in zip(sizes, optima)
                if optimum > 0
            ]
            if ratios:
                extra["optimum_ratio"] = sum(ratios) / len(ratios)
        points.append(
            SeriesPoint(
                series=name,
                x=float(n),
                mean=mean,
                std=std,
                trials=trials,
                extra=extra,
            )
        )
    if include_optimum:
        mean_opt = sum(optima) / len(optima)
        points.append(
            SeriesPoint(
                series="optimum",
                x=float(n),
                mean=mean_opt,
                std=0.0,
                trials=trials,
                extra={"optimum_ratio": 1.0},
            )
        )
    return ExperimentResult(
        experiment="mis-sizes",
        points=points,
        master_seed=master_seed,
        parameters={
            "n": n,
            "edge_probability": edge_probability,
            "trials": trials,
            "include_optimum": include_optimum,
        },
    )
