"""MIS-size study: how large are the sets the algorithms select?

The paper's introduction notes that "different maximal independent sets for
the same network can vary greatly in size" and that finding a *maximum* one
is NP-hard.  This experiment quantifies where each algorithm's MIS sizes
fall: mean size per algorithm on a common workload, plus — on graphs small
enough for the exact branch-and-bound solver — the fraction of the optimum
achieved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.exact import MAX_EXACT_VERTICES, maximum_independent_set
from repro.algorithms.registry import make_algorithm
from repro.beeping.rng import spawn_rng
from repro.experiments.records import ExperimentResult, SeriesPoint
from repro.graphs.random_graphs import gnp_random_graph

DEFAULT_ALGORITHMS = (
    "feedback",
    "afek-sweep",
    "luby-permutation",
    "greedy",
)


def mis_size_experiment(
    n: int = 40,
    edge_probability: float = 0.3,
    trials: int = 20,
    algorithm_names: Sequence[str] = DEFAULT_ALGORITHMS,
    master_seed: int = 1701,
    include_optimum: Optional[bool] = None,
) -> ExperimentResult:
    """Mean MIS size per algorithm over ``trials`` G(n, p) graphs.

    When the graphs are small enough (or ``include_optimum`` forces it),
    each point's ``extra["optimum_ratio"]`` records mean(size / optimum).
    """
    if include_optimum is None:
        include_optimum = n <= MAX_EXACT_VERTICES
    if include_optimum and n > MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact optimum needs n <= {MAX_EXACT_VERTICES}, got {n}"
        )
    graphs = [
        gnp_random_graph(
            n, edge_probability, spawn_rng(master_seed, 0x517E, t)
        )
        for t in range(trials)
    ]
    optima: List[int] = []
    if include_optimum:
        optima = [len(maximum_independent_set(graph)) for graph in graphs]

    points: List[SeriesPoint] = []
    for index, name in enumerate(algorithm_names):
        algorithm = make_algorithm(name)
        sizes: List[int] = []
        ratios: List[float] = []
        for t, graph in enumerate(graphs):
            run = algorithm.run(graph, spawn_rng(master_seed, index, t))
            run.verify()
            sizes.append(run.mis_size)
            if include_optimum and optima[t] > 0:
                ratios.append(run.mis_size / optima[t])
        mean = sum(sizes) / len(sizes)
        if len(sizes) > 1:
            variance = sum((s - mean) ** 2 for s in sizes) / (len(sizes) - 1)
            std = variance ** 0.5
        else:
            std = 0.0
        extra: Dict[str, float] = {}
        if ratios:
            extra["optimum_ratio"] = sum(ratios) / len(ratios)
        points.append(
            SeriesPoint(
                series=name,
                x=float(n),
                mean=mean,
                std=std,
                trials=trials,
                extra=extra,
            )
        )
    if include_optimum:
        mean_opt = sum(optima) / len(optima)
        points.append(
            SeriesPoint(
                series="optimum",
                x=float(n),
                mean=mean_opt,
                std=0.0,
                trials=trials,
                extra={"optimum_ratio": 1.0},
            )
        )
    return ExperimentResult(
        experiment="mis-sizes",
        points=points,
        master_seed=master_seed,
        parameters={
            "n": n,
            "edge_probability": edge_probability,
            "trials": trials,
            "include_optimum": include_optimum,
        },
    )
