"""ASCII table rendering for experiment reports.

The benchmarks print their measured-vs-paper comparisons through this one
formatter so EXPERIMENTS.md and terminal output look the same.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.records import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A plain monospace table with a header separator.

    Column widths adapt to content; all cells are stringified with
    ``str``.  Floats should be pre-formatted by the caller.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells does not match "
                f"{len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [render(list(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def format_experiment(result: ExperimentResult, precision: int = 2) -> str:
    """Render an :class:`ExperimentResult` as one table per x value."""
    headers = ["series", "x", "mean", "std", "trials"]
    rows = [
        [
            p.series,
            f"{p.x:g}",
            f"{p.mean:.{precision}f}",
            f"{p.std:.{precision}f}",
            p.trials,
        ]
        for p in result.points
    ]
    title = f"experiment: {result.experiment} (seed={result.master_seed})"
    return title + "\n" + format_table(headers, rows)
