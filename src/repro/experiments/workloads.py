"""Named workload registry.

Experiments, benchmarks and the CLI refer to graph workloads by name; the
registry centralises the definitions so a workload means the same graph
family everywhere.  Each workload is a factory ``(n, rng) -> Graph``
covering the families used across the paper and this reproduction.
"""

from __future__ import annotations

import math
from random import Random
from typing import Callable, Dict, List

from repro.graphs.graph import Graph
from repro.graphs.cliques import theorem1_family
from repro.graphs.random_graphs import (
    barabasi_albert_graph,
    gnp_random_graph,
    random_geometric_graph,
    random_tree,
    watts_strogatz_graph,
)
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hex_lattice_graph,
)

WorkloadFactory = Callable[[int, Random], Graph]


def _gnp_half(n: int, rng: Random) -> Graph:
    return gnp_random_graph(n, 0.5, rng)


def _gnp_sparse(n: int, rng: Random) -> Graph:
    # Mean degree ~8, the interesting sparse regime.
    p = min(1.0, 8.0 / max(n - 1, 1))
    return gnp_random_graph(n, p, rng)


def _grid(n: int, rng: Random) -> Graph:
    side = max(1, round(math.sqrt(n)))
    return grid_graph(side, side)


def _hex(n: int, rng: Random) -> Graph:
    side = max(1, round(math.sqrt(n)))
    return hex_lattice_graph(side, side)


def _geometric(n: int, rng: Random) -> Graph:
    # Radius chosen for mean degree ~ 8: pi r^2 n ~ 8.
    radius = math.sqrt(8.0 / (math.pi * max(n, 1)))
    return random_geometric_graph(n, radius, rng)


def _tree(n: int, rng: Random) -> Graph:
    return random_tree(n, rng)


def _scale_free(n: int, rng: Random) -> Graph:
    return barabasi_albert_graph(max(n, 4), 3, rng)


def _small_world(n: int, rng: Random) -> Graph:
    return watts_strogatz_graph(max(n, 7), 6, 0.1, rng)


def _clique(n: int, rng: Random) -> Graph:
    return complete_graph(n)


def _ring(n: int, rng: Random) -> Graph:
    return cycle_graph(max(n, 3))


def _theorem1(n: int, rng: Random) -> Graph:
    # side ~ n^(1/3) gives ~n vertices.
    side = max(1, round(n ** (1.0 / 3.0)))
    return theorem1_family(side)


_WORKLOADS: Dict[str, WorkloadFactory] = {
    "gnp-half": _gnp_half,
    "gnp-sparse": _gnp_sparse,
    "grid": _grid,
    "hex": _hex,
    "geometric": _geometric,
    "tree": _tree,
    "scale-free": _scale_free,
    "small-world": _small_world,
    "clique": _clique,
    "ring": _ring,
    "theorem1": _theorem1,
}


def available_workloads() -> List[str]:
    """Sorted list of registered workload names."""
    return sorted(_WORKLOADS)


def make_workload(name: str, n: int, rng: Random) -> Graph:
    """Instantiate a registered workload at (approximately) size ``n``.

    Structured families round ``n`` to their natural grid (e.g. ``grid``
    uses the nearest square), so ``graph.num_vertices`` may differ
    slightly from ``n``.
    """
    try:
        factory = _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return factory(n, rng)
