"""Graph substrate for the MIS reproduction.

This package provides the graph data structure and every generator used in
the paper's experiments, implemented from scratch:

- :class:`~repro.graphs.graph.Graph` — immutable undirected simple graph.
- :class:`~repro.graphs.graph.GraphBuilder` — mutable construction helper.
- :mod:`~repro.graphs.random_graphs` — G(n, p), G(n, m), random geometric,
  random trees, planted independent sets.
- :mod:`~repro.graphs.structured` — paths, cycles, grids, tori, stars,
  hypercubes, complete (bi)partite graphs and hexagonal lattices.
- :mod:`~repro.graphs.cliques` — disjoint-clique families, including the
  lower-bound family of Theorem 1.
- :mod:`~repro.graphs.validation` — independence / maximality predicates and
  :func:`verify_mis`.
- :mod:`~repro.graphs.io` — edge-list and DOT serialisation.
"""

from repro.graphs.graph import Graph, GraphBuilder
from repro.graphs.random_graphs import (
    barabasi_albert_graph,
    gnm_random_graph,
    gnp_random_graph,
    planted_independent_set_graph,
    random_bipartite_graph,
    random_geometric_graph,
    random_tree,
    watts_strogatz_graph,
)
from repro.graphs.metrics import (
    average_clustering,
    bfs_distances,
    degree_histogram,
    diameter,
    local_clustering,
    mean_degree,
    workload_summary,
)
from repro.graphs.structured import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    hex_lattice_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_grid_graph,
)
from repro.graphs.cliques import disjoint_cliques, theorem1_family
from repro.graphs.validation import (
    MISValidationError,
    independent_set_violations,
    is_dominating_for_uncovered,
    is_independent_set,
    is_maximal_independent_set,
    uncovered_vertices,
    verify_mis,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "MISValidationError",
    "average_clustering",
    "barabasi_albert_graph",
    "bfs_distances",
    "degree_histogram",
    "diameter",
    "local_clustering",
    "mean_degree",
    "watts_strogatz_graph",
    "workload_summary",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "disjoint_cliques",
    "empty_graph",
    "gnm_random_graph",
    "gnp_random_graph",
    "grid_graph",
    "hex_lattice_graph",
    "hypercube_graph",
    "independent_set_violations",
    "is_dominating_for_uncovered",
    "is_independent_set",
    "is_maximal_independent_set",
    "path_graph",
    "planted_independent_set_graph",
    "random_bipartite_graph",
    "random_geometric_graph",
    "random_tree",
    "star_graph",
    "theorem1_family",
    "torus_grid_graph",
    "uncovered_vertices",
    "verify_mis",
]
