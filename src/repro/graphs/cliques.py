"""Clique-based graph families, including the Theorem 1 lower-bound family.

Theorem 1 of the paper exhibits a graph on which *any* preset global
probability sequence needs ``Ω(log² n)`` rounds: the disjoint union of
``n^(1/3)`` copies of the complete graph ``K_d`` for every ``d`` from 1 to
``n^(1/3)``.  The intuition is that a clique ``K_d`` only makes progress in a
round where *exactly one* of its members beeps, which requires the global
probability to pass near ``1/d`` — and no single sweep can linger near
``1/d`` for every ``d`` simultaneously for long enough.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graphs.graph import Graph, GraphBuilder


def disjoint_cliques(sizes: Sequence[int]) -> Graph:
    """The disjoint union of cliques with the given ``sizes``.

    Vertices are numbered consecutively, clique by clique, in the order the
    sizes are given.
    """
    builder = GraphBuilder()
    for size in sizes:
        if size < 0:
            raise ValueError(f"clique size must be >= 0, got {size}")
        vertices = builder.add_vertices(size)
        builder.add_clique(vertices)
    return builder.build()


def theorem1_clique_sizes(side: int, copies: int = 0) -> List[int]:
    """The multiset of clique sizes of the Theorem 1 family.

    ``side`` plays the role of ``n^(1/3)`` in the paper: cliques ``K_1`` to
    ``K_side`` each repeated ``copies`` times (``copies`` defaults to
    ``side``).  The total vertex count is ``copies * side * (side + 1) / 2``,
    which is ``Θ(side^3)``.
    """
    if side < 1:
        raise ValueError(f"side must be >= 1, got {side}")
    if copies == 0:
        copies = side
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    sizes: List[int] = []
    for d in range(1, side + 1):
        sizes.extend([d] * copies)
    return sizes


def theorem1_family(side: int, copies: int = 0) -> Graph:
    """The Theorem 1 lower-bound graph.

    ``copies`` copies (default ``side``) of ``K_d`` for each ``d = 1..side``.
    With ``copies = side = n^(1/3)`` this is exactly the construction in the
    paper, with ``Θ(n)`` vertices.
    """
    return disjoint_cliques(theorem1_clique_sizes(side, copies))


def clique_membership(sizes: Sequence[int]) -> List[int]:
    """For a :func:`disjoint_cliques` graph, map each vertex to its clique
    index (in the order the sizes were given)."""
    membership: List[int] = []
    for index, size in enumerate(sizes):
        membership.extend([index] * size)
    return membership
