"""Core undirected graph data structure.

The whole reproduction works with a single, deliberately small graph type:
an immutable, undirected, simple graph over vertices ``0..n-1`` stored as a
tuple of sorted neighbour tuples.  Immutability means a :class:`Graph` can be
shared freely between trials, algorithms and engines without defensive
copies, and the adjacency representation gives O(deg) neighbourhood scans,
which is the access pattern of every round of a beeping simulation.

Mutable construction goes through :class:`GraphBuilder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

Edge = Tuple[int, int]


def _normalise_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """An immutable undirected simple graph on vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        The number of vertices ``n``.  Vertices are the integers
        ``0..n-1``; isolated vertices are permitted and occur naturally in
        sparse random graphs.
    edges:
        An iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are collapsed.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.neighbors(1)
    (0, 2)
    """

    __slots__ = ("_adjacency", "_num_edges", "_neighbor_sets")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        neighbor_sets: List[Set[int]] = [set() for _ in range(num_vertices)]
        num_edges = 0
        for u, v in edges:
            self._check_vertex(u, num_vertices)
            self._check_vertex(v, num_vertices)
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            if v not in neighbor_sets[u]:
                neighbor_sets[u].add(v)
                neighbor_sets[v].add(u)
                num_edges += 1
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in neighbor_sets
        )
        self._neighbor_sets: Tuple[frozenset, ...] = tuple(
            frozenset(neighbors) for neighbors in neighbor_sets
        )
        self._num_edges = num_edges

    @staticmethod
    def _check_vertex(v: int, num_vertices: int) -> None:
        if not isinstance(v, int) or isinstance(v, bool):
            raise TypeError(f"vertex must be an int, got {v!r}")
        if not 0 <= v < num_vertices:
            raise ValueError(
                f"vertex {v} out of range for graph with {num_vertices} vertices"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """The vertex set as a ``range`` object."""
        return range(self.num_vertices)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The sorted tuple of neighbours of ``v``."""
        return self._adjacency[v]

    def neighbor_set(self, v: int) -> frozenset:
        """The neighbours of ``v`` as a frozenset (O(1) membership)."""
        return self._neighbor_sets[v]

    def degree(self, v: int) -> int:
        """The degree of vertex ``v``."""
        return len(self._adjacency[v])

    def degrees(self) -> Tuple[int, ...]:
        """Degrees of all vertices, indexed by vertex."""
        return tuple(len(neighbors) for neighbors in self._adjacency)

    def max_degree(self) -> int:
        """The maximum degree, 0 for the empty graph."""
        if self.num_vertices == 0:
            return 0
        return max(self.degrees())

    def min_degree(self) -> int:
        """The minimum degree, 0 for the empty graph."""
        if self.num_vertices == 0:
            return 0
        return min(self.degrees())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        self._check_vertex(u, self.num_vertices)
        self._check_vertex(v, self.num_vertices)
        return v in self._neighbor_sets[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in canonical ``(u, v)`` with ``u < v`` order."""
        for u, neighbors in enumerate(self._adjacency):
            for v in neighbors:
                if u < v:
                    yield (u, v)

    def density(self) -> float:
        """Edge density ``m / C(n, 2)``; 0.0 for graphs with < 2 vertices."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return self._num_edges / (n * (n - 1) / 2)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """The induced subgraph, with vertices relabelled to ``0..k-1``.

        The relabelling follows the order of ``vertices``; duplicates are
        rejected.
        """
        index: Dict[int, int] = {}
        for i, v in enumerate(vertices):
            self._check_vertex(v, self.num_vertices)
            if v in index:
                raise ValueError(f"duplicate vertex {v} in subgraph selection")
            index[v] = i
        edges = [
            (index[u], index[v])
            for u, v in self.edges()
            if u in index and v in index
        ]
        return Graph(len(index), edges)

    def complement(self) -> "Graph":
        """The complement graph (quadratic; meant for small graphs)."""
        n = self.num_vertices
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if v not in self._neighbor_sets[u]
        ]
        return Graph(n, edges)

    def disjoint_union(self, other: "Graph") -> "Graph":
        """The disjoint union; ``other``'s vertices are shifted by ``n``."""
        offset = self.num_vertices
        edges = list(self.edges())
        edges.extend((u + offset, v + offset) for u, v in other.edges())
        return Graph(offset + other.num_vertices, edges)

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Apply a vertex permutation: new graph has edge (p[u], p[v])."""
        n = self.num_vertices
        if sorted(permutation) != list(range(n)):
            raise ValueError("permutation must be a bijection on 0..n-1")
        return Graph(n, [(permutation[u], permutation[v]) for u, v in self.edges()])

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted vertex lists, in discovery order."""
        seen = [False] * self.num_vertices
        components: List[List[int]] = []
        for root in self.vertices():
            if seen[root]:
                continue
            stack = [root]
            seen[root] = True
            component = []
            while stack:
                u = stack.pop()
                component.append(u)
                for w in self._adjacency[u]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if self.num_vertices == 0:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # Matrix view
    # ------------------------------------------------------------------

    def adjacency_matrix(self):
        """The boolean adjacency matrix as a numpy array (n x n)."""
        import numpy as np

        n = self.num_vertices
        matrix = np.zeros((n, n), dtype=bool)
        for u, v in self.edges():
            matrix[u, v] = True
            matrix[v, u] = True
        return matrix

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash(self._adjacency)

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self.num_vertices

    def __repr__(self) -> str:
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


class GraphBuilder:
    """Mutable helper for incremental graph construction.

    >>> builder = GraphBuilder()
    >>> a, b = builder.add_vertex(), builder.add_vertex()
    >>> builder.add_edge(a, b)
    >>> builder.build().num_edges
    1
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        self._num_vertices = num_vertices
        self._edges: Set[Edge] = set()

    @property
    def num_vertices(self) -> int:
        """Current number of vertices."""
        return self._num_vertices

    def add_vertex(self) -> int:
        """Add one vertex and return its id."""
        v = self._num_vertices
        self._num_vertices += 1
        return v

    def add_vertices(self, count: int) -> List[int]:
        """Add ``count`` vertices and return their ids."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.add_vertex() for _ in range(count)]

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``; idempotent."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        for w in (u, v):
            if not 0 <= w < self._num_vertices:
                raise ValueError(f"vertex {w} has not been added")
        self._edges.add(_normalise_edge(u, v))

    def add_clique(self, vertices: Sequence[int]) -> None:
        """Add all C(k, 2) edges among ``vertices``."""
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                self.add_edge(u, v)

    def add_path(self, vertices: Sequence[int]) -> None:
        """Add consecutive edges along ``vertices``."""
        for u, v in zip(vertices, vertices[1:]):
            self.add_edge(u, v)

    def build(self) -> Graph:
        """Freeze the builder into an immutable :class:`Graph`."""
        return Graph(self._num_vertices, sorted(self._edges))
