"""Graph serialisation: edge lists, DOT, and optional networkx bridging."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Optional, Set, TextIO, Union

from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, destination: Union[PathLike, TextIO]) -> None:
    """Write a graph as a plain edge list.

    Format: first line ``n m``, then one ``u v`` line per edge in canonical
    order.  Isolated vertices survive the round-trip because ``n`` is stored
    explicitly.
    """
    if hasattr(destination, "write"):
        _write_edge_list_stream(graph, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            _write_edge_list_stream(graph, handle)


def _write_edge_list_stream(graph: Graph, stream: TextIO) -> None:
    stream.write(f"{graph.num_vertices} {graph.num_edges}\n")
    for u, v in graph.edges():
        stream.write(f"{u} {v}\n")


def read_edge_list(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Blank lines and ``#`` comment lines are ignored.
    """
    if hasattr(source, "read"):
        return _read_edge_list_stream(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as handle:
        return _read_edge_list_stream(handle)


def _read_edge_list_stream(stream: TextIO) -> Graph:
    header: Optional[str] = None
    edges = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if header is None:
            header = line
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line: {line!r}")
        edges.append((int(parts[0]), int(parts[1])))
    if header is None:
        raise ValueError("edge list is empty: missing 'n m' header line")
    header_parts = header.split()
    if len(header_parts) != 2:
        raise ValueError(f"malformed header line: {header!r}")
    num_vertices, num_edges = int(header_parts[0]), int(header_parts[1])
    graph = Graph(num_vertices, edges)
    if graph.num_edges != num_edges:
        raise ValueError(
            f"header declares {num_edges} edges but {graph.num_edges} were read"
        )
    return graph


def edge_list_string(graph: Graph) -> str:
    """The edge-list serialisation as a string (round-trips via
    :func:`read_edge_list`)."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    return buffer.getvalue()


def to_dot(
    graph: Graph,
    highlighted: Iterable[int] = (),
    name: str = "G",
) -> str:
    """Render a graph in Graphviz DOT format.

    ``highlighted`` vertices (typically an MIS) are filled; everything else
    is drawn plain.  The output is deterministic.
    """
    highlighted_set: Set[int] = set(highlighted)
    lines = [f"graph {name} {{"]
    lines.append("  node [shape=circle];")
    for v in graph.vertices():
        if v in highlighted_set:
            lines.append(
                f'  {v} [style=filled, fillcolor="black", fontcolor="white"];'
            )
        else:
            lines.append(f"  {v};")
    for u, v in graph.edges():
        lines.append(f"  {u} -- {v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def from_networkx(nx_graph) -> Graph:
    """Convert a networkx graph (optional convenience; relabels vertices to
    ``0..n-1`` in sorted node order)."""
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
    return Graph(len(nodes), edges)


def to_networkx(graph: Graph):
    """Convert to a networkx graph (imports networkx lazily)."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
