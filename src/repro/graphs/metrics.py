"""Structural graph metrics.

Used by the experiment harness for workload characterisation (reported in
EXPERIMENTS.md) and by tests as independent cross-checks on the
generators (e.g. a torus must have girth-4 clustering 0, a clique
clustering 1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph


def degree_histogram(graph: Graph) -> List[int]:
    """``histogram[d]`` = number of vertices with degree ``d``."""
    histogram = [0] * (graph.max_degree() + 1)
    for v in graph.vertices():
        histogram[graph.degree(v)] += 1
    return histogram


def mean_degree(graph: Graph) -> float:
    """Average degree ``2m / n`` (0.0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def local_clustering(graph: Graph, vertex: int) -> float:
    """The fraction of a vertex's neighbour pairs that are adjacent.

    0.0 by convention for vertices of degree < 2.
    """
    neighbors = graph.neighbors(vertex)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbors):
        u_set = graph.neighbor_set(u)
        for w in neighbors[i + 1:]:
            if w in u_set:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices."""
    if graph.num_vertices == 0:
        return 0.0
    return sum(
        local_clustering(graph, v) for v in graph.vertices()
    ) / graph.num_vertices


def bfs_distances(graph: Graph, source: int) -> List[Optional[int]]:
    """Hop distances from ``source``; ``None`` for unreachable vertices."""
    distances: List[Optional[int]] = [None] * graph.num_vertices
    distances[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if distances[w] is None:
                distances[w] = distances[u] + 1
                queue.append(w)
    return distances


def eccentricity(graph: Graph, vertex: int) -> Optional[int]:
    """Maximum distance from ``vertex``; ``None`` if the graph is
    disconnected from it."""
    distances = bfs_distances(graph, vertex)
    if any(d is None for d in distances):
        return None
    return max(d for d in distances if d is not None)


def diameter(graph: Graph) -> Optional[int]:
    """The largest eccentricity; ``None`` for disconnected or empty graphs.

    O(n·m): fine for the experiment sizes in this repository.
    """
    if graph.num_vertices == 0:
        return None
    worst = 0
    for v in graph.vertices():
        ecc = eccentricity(graph, v)
        if ecc is None:
            return None
        worst = max(worst, ecc)
    return worst


def workload_summary(graph: Graph) -> Dict[str, float]:
    """The characterisation the harness prints for each workload."""
    return {
        "vertices": float(graph.num_vertices),
        "edges": float(graph.num_edges),
        "density": graph.density(),
        "mean_degree": mean_degree(graph),
        "max_degree": float(graph.max_degree()),
        "clustering": average_clustering(graph),
        "components": float(len(graph.connected_components())),
    }
