"""Random graph generators.

All generators take an explicit :class:`random.Random` instance so trials are
reproducible; none of them touch the global RNG.

The paper's main experimental workload is the Erdős–Rényi model
``G(n, 1/2)`` (:func:`gnp_random_graph` with ``p=0.5``); the geometric model
is included because the paper's conclusion motivates the algorithm with
ad-hoc sensor networks, for which random geometric graphs are the standard
abstraction.
"""

from __future__ import annotations

import math
from random import Random
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph, GraphBuilder


def _require_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")


def gnp_random_graph(n: int, p: float, rng: Random) -> Graph:
    """An Erdős–Rényi graph ``G(n, p)``: each edge present independently.

    Uses the geometric-skipping method of Batagelj and Brandes, so the
    running time is O(n + m) rather than O(n^2) for sparse graphs, while
    remaining exactly distributed as G(n, p).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    _require_probability(p)
    if p == 0.0 or n < 2:
        return Graph(n)
    if p == 1.0:
        return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])
    edges: List[Tuple[int, int]] = []
    log_q = math.log(1.0 - p)
    if log_q == 0.0:
        # p is below float resolution (log1p(-p) rounds to 0): no edges.
        return Graph(n)
    v = 1
    w = -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((w, v))
    return Graph(n, edges)


def gnm_random_graph(n: int, m: int, rng: Random) -> Graph:
    """A uniformly random graph with exactly ``n`` vertices and ``m`` edges."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise ValueError(
            f"m must be in [0, {max_edges}] for n={n}, got {m}"
        )
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            chosen.add((u, v) if u < v else (v, u))
    return Graph(n, sorted(chosen))


def random_bipartite_graph(
    left: int, right: int, p: float, rng: Random
) -> Graph:
    """A random bipartite graph: parts ``0..left-1`` and ``left..left+right-1``,
    each cross edge present independently with probability ``p``."""
    if left < 0 or right < 0:
        raise ValueError("part sizes must be >= 0")
    _require_probability(p)
    edges = [
        (u, left + v)
        for u in range(left)
        for v in range(right)
        if rng.random() < p
    ]
    return Graph(left + right, edges)


def random_geometric_graph(
    n: int,
    radius: float,
    rng: Random,
    return_positions: bool = False,
):
    """A random geometric graph on the unit square.

    ``n`` points are placed uniformly at random; two points are adjacent when
    their Euclidean distance is at most ``radius``.  This is the standard
    model for the ad-hoc wireless sensor networks that motivate beeping
    algorithms.

    When ``return_positions`` is true, returns ``(graph, positions)`` where
    ``positions[v]`` is the (x, y) pair of vertex ``v``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    radius_squared = radius * radius
    edges = []
    # Grid-bucket the points so the expected running time is O(n + m).
    cell = max(radius, 1e-9)
    buckets = {}
    for v, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(v)
    for (cx, cy), members in buckets.items():
        neighbor_cells = [
            (cx + dx, cy + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
        ]
        for u in members:
            ux, uy = positions[u]
            for key in neighbor_cells:
                for v in buckets.get(key, ()):
                    if v <= u:
                        continue
                    vx, vy = positions[v]
                    if (ux - vx) ** 2 + (uy - vy) ** 2 <= radius_squared:
                        edges.append((u, v))
    graph = Graph(n, edges)
    if return_positions:
        return graph, positions
    return graph


def random_tree(n: int, rng: Random) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer decoding)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n <= 1:
        return Graph(n)
    if n == 2:
        return Graph(2, [(0, 1)])
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in sequence:
        degree[v] += 1
    edges = []
    # Standard Prüfer decoding with a pointer + leaf variable.
    pointer = 0
    while degree[pointer] != 1:
        pointer += 1
    leaf = pointer
    for v in sequence:
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1 and v < pointer:
            leaf = v
        else:
            pointer += 1
            while degree[pointer] != 1:
                pointer += 1
            leaf = pointer
    edges.append((leaf, n - 1))
    return Graph(n, edges)


def barabasi_albert_graph(n: int, attachments: int, rng: Random) -> Graph:
    """A preferential-attachment (Barabási–Albert) graph.

    Starts from a star on ``attachments + 1`` vertices; each subsequent
    vertex attaches to ``attachments`` distinct existing vertices chosen
    with probability proportional to their degree.  Models the heavy-tailed
    contact networks where adaptive probabilities matter most (hubs hear
    beeps constantly, leaves rarely).
    """
    if attachments < 1:
        raise ValueError(f"attachments must be >= 1, got {attachments}")
    if n < attachments + 1:
        raise ValueError(
            f"n must be >= attachments + 1 = {attachments + 1}, got {n}"
        )
    builder = GraphBuilder(n)
    # Seed star: vertex 0 connected to 1..attachments.
    repeated: List[int] = []
    for v in range(1, attachments + 1):
        builder.add_edge(0, v)
        repeated.extend((0, v))
    for v in range(attachments + 1, n):
        targets = set()
        while len(targets) < attachments:
            targets.add(repeated[rng.randrange(len(repeated))])
        for target in sorted(targets):
            builder.add_edge(v, target)
            repeated.extend((v, target))
    return builder.build()


def watts_strogatz_graph(
    n: int, nearest: int, rewire_probability: float, rng: Random
) -> Graph:
    """A small-world (Watts–Strogatz) graph.

    A ring lattice where each vertex connects to its ``nearest`` clockwise
    neighbours (``nearest`` must be even and < n), then each edge is
    rewired to a uniform random endpoint with the given probability
    (skipping rewirings that would create loops or duplicates).
    """
    if nearest % 2 != 0 or nearest < 2:
        raise ValueError(f"nearest must be even and >= 2, got {nearest}")
    if n <= nearest:
        raise ValueError(f"n must exceed nearest, got n={n}")
    _require_probability(rewire_probability)
    edges = set()
    for v in range(n):
        for offset in range(1, nearest // 2 + 1):
            w = (v + offset) % n
            edges.add((min(v, w), max(v, w)))
    rewired = set()
    for u, v in sorted(edges):
        if rng.random() < rewire_probability:
            for _attempt in range(4 * n):
                w = rng.randrange(n)
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in edges and candidate not in rewired:
                    rewired.add(candidate)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return Graph(n, sorted(rewired))


def planted_independent_set_graph(
    n: int,
    planted_size: int,
    p: float,
    rng: Random,
    return_planted: bool = False,
):
    """``G(n, p)`` conditioned on vertices ``0..planted_size-1`` being
    independent (edges inside the planted set are simply removed).

    Useful for tests that need a graph with a known large independent set.
    When ``return_planted`` is true, returns ``(graph, planted_vertices)``.
    """
    if not 0 <= planted_size <= n:
        raise ValueError(
            f"planted_size must be in [0, {n}], got {planted_size}"
        )
    _require_probability(p)
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            if v < planted_size:
                continue
            if rng.random() < p:
                builder.add_edge(u, v)
    graph = builder.build()
    if return_planted:
        return graph, list(range(planted_size))
    return graph
