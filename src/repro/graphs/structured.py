"""Deterministic structured graph families.

These are the non-random workloads used in the paper (rectangular grids for
the Figure 5 "beeps per node" claim) plus the standard families every graph
library ships, which the tests use as known-answer fixtures (cliques, paths,
cycles, stars, hypercubes, bipartite graphs) and the biology substrate
depends on (hexagonal lattices of cells).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.graph import Graph


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices."""
    return Graph(n)


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def path_graph(n: int) -> Graph:
    """The path ``P_n`` with ``n`` vertices and ``n - 1`` edges."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``; requires ``n >= 3`` (or ``n <= 1`` for trivial)."""
    if n == 2:
        raise ValueError("a cycle needs at least 3 vertices (2 would be a multi-edge)")
    if n <= 1:
        return Graph(n)
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return Graph(n, edges)


def star_graph(leaves: int) -> Graph:
    """The star ``K_{1,leaves}``: hub 0 connected to ``leaves`` leaves."""
    if leaves < 0:
        raise ValueError("leaves must be >= 0")
    return Graph(leaves + 1, [(0, leaf) for leaf in range(1, leaves + 1)])


def complete_bipartite_graph(left: int, right: int) -> Graph:
    """``K_{left,right}``; left part is ``0..left-1``."""
    if left < 0 or right < 0:
        raise ValueError("part sizes must be >= 0")
    edges = [(u, left + v) for u in range(left) for v in range(right)]
    return Graph(left + right, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` rectangular grid (4-neighbour lattice).

    Vertex ``(r, c)`` is numbered ``r * cols + c``.  This is the "rectangular
    grid graph" family used by the paper for the beeps-per-node claim.
    """
    if rows < 0 or cols < 0:
        raise ValueError("grid dimensions must be >= 0")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def torus_grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid with wrap-around edges (a discrete torus).

    Requires both dimensions >= 3 so that wrap-around edges are simple.
    """
    if rows == 0 or cols == 0:
        return Graph(0)
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must both be >= 3")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.append((v, right))
            edges.append((v, down))
    return Graph(rows * cols, edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube ``Q_d`` on ``2^d`` vertices."""
    if dimension < 0:
        raise ValueError("dimension must be >= 0")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << bit))
        for v in range(n)
        for bit in range(dimension)
        if v < v ^ (1 << bit)
    ]
    return Graph(n, edges)


def hex_lattice_graph(
    rows: int, cols: int, return_positions: bool = False
):
    """A hexagonally packed lattice of cells (6-neighbour triangular lattice).

    This is the standard abstraction of an epithelial cell sheet, used by the
    Notch–Delta biology substrate: each interior cell touches six
    neighbours.  Cells are laid out in ``rows`` offset rows of ``cols`` cells;
    cell ``(r, c)`` is numbered ``r * cols + c``.

    When ``return_positions`` is true, returns ``(graph, positions)`` with
    axial 2-D coordinates suitable for plotting.
    """
    if rows < 0 or cols < 0:
        raise ValueError("lattice dimensions must be >= 0")
    edges: List[Tuple[int, int]] = []

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            v = vertex(r, c)
            if c + 1 < cols:
                edges.append((v, vertex(r, c + 1)))
            if r + 1 < rows:
                edges.append((v, vertex(r + 1, c)))
                # Offset rows: even rows also touch the previous column below,
                # odd rows the next column below.
                if r % 2 == 0 and c - 1 >= 0:
                    edges.append((v, vertex(r + 1, c - 1)))
                if r % 2 == 1 and c + 1 < cols:
                    edges.append((v, vertex(r + 1, c + 1)))
    graph = Graph(rows * cols, edges)
    if return_positions:
        positions = []
        for r in range(rows):
            for c in range(cols):
                x = c + (0.5 if r % 2 == 1 else 0.0)
                y = r * 0.8660254037844386  # sqrt(3)/2 row spacing
                positions.append((x, y))
        return graph, positions
    return graph
