"""Predicates for independent sets and maximal independent sets.

Every simulation in the test-suite and benchmark harness finishes by calling
:func:`verify_mis` on its output, so correctness of the algorithms is checked
by construction, not by eyeballing.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.graphs.graph import Graph


class MISValidationError(AssertionError):
    """Raised by :func:`verify_mis` when a claimed MIS is not one."""


def _as_checked_set(graph: Graph, vertices: Iterable[int]) -> Set[int]:
    vertex_set = set(vertices)
    for v in vertex_set:
        if v not in graph:
            raise ValueError(
                f"vertex {v} is not a vertex of {graph!r}"
            )
    return vertex_set


def independent_set_violations(
    graph: Graph, vertices: Iterable[int]
) -> List[Tuple[int, int]]:
    """All edges of ``graph`` with both endpoints in ``vertices``.

    An empty result means the set is independent.
    """
    vertex_set = _as_checked_set(graph, vertices)
    violations = []
    for u in sorted(vertex_set):
        for w in graph.neighbors(u):
            if u < w and w in vertex_set:
                violations.append((u, w))
    return violations


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether no two vertices of the set are adjacent."""
    return not independent_set_violations(graph, vertices)


def uncovered_vertices(graph: Graph, vertices: Iterable[int]) -> List[int]:
    """Vertices that are neither in the set nor adjacent to a set member.

    An independent set is *maximal* exactly when this list is empty.
    """
    vertex_set = _as_checked_set(graph, vertices)
    covered = set(vertex_set)
    for v in vertex_set:
        covered.update(graph.neighbors(v))
    return [v for v in graph.vertices() if v not in covered]


def is_dominating_for_uncovered(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether every vertex is in the set or adjacent to a set member."""
    return not uncovered_vertices(graph, vertices)


def is_maximal_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether ``vertices`` is an independent dominating set (an MIS)."""
    return is_independent_set(graph, vertices) and is_dominating_for_uncovered(
        graph, vertices
    )


def verify_mis(
    graph: Graph,
    vertices: Iterable[int],
    crashed: Iterable[int] = (),
    absent: Iterable[int] = (),
) -> Set[int]:
    """Assert that ``vertices`` is an MIS of ``graph`` and return it as a set.

    ``crashed`` names fail-stop vertices that left the system mid-run:
    they must not appear in the set, and they are exempt from the
    maximality requirement (a crashed vertex may legitimately be uncovered)
    — the same contract as
    :meth:`repro.beeping.scheduler.SimulationResult.verify`.

    ``absent`` is the churn-aware counterpart: vertices of the universe
    graph that are not part of the final alive subgraph (departed,
    asleep at the end, or never joined).  Like crashed vertices they are
    banned from the set and exempt from maximality, so the assertion
    becomes "a valid MIS of the final alive subgraph".

    Raises
    ------
    MISValidationError
        With a message pinpointing the violated edge or uncovered vertex.
    """
    vertex_set = _as_checked_set(graph, vertices)
    crashed_set = set(crashed)
    absent_set = set(absent)
    in_both = vertex_set & crashed_set
    if in_both:
        raise MISValidationError(
            f"crashed vertex {min(in_both)} is in the MIS"
        )
    in_absent = vertex_set & absent_set
    if in_absent:
        raise MISValidationError(
            f"absent vertex {min(in_absent)} is in the MIS"
        )
    violations = independent_set_violations(graph, vertex_set)
    if violations:
        u, w = violations[0]
        raise MISValidationError(
            f"set is not independent: edge ({u}, {w}) has both endpoints "
            f"in the set ({len(violations)} violating edges in total)"
        )
    exempt = crashed_set | absent_set
    uncovered = [
        v
        for v in uncovered_vertices(graph, vertex_set)
        if v not in exempt
    ]
    if uncovered:
        raise MISValidationError(
            f"set is not maximal: vertex {uncovered[0]} is neither in the "
            f"set nor adjacent to it ({len(uncovered)} uncovered vertices)"
        )
    return vertex_set
