"""Sharded sweep orchestration with a content-addressed result store.

Three layers (see ``docs/sweep.md`` for the full picture):

- :mod:`~repro.sweep.spec` — frozen, hashable :class:`SweepSpec` /
  :class:`CellSpec` / :class:`ShardSpec` grid descriptions; every shard
  has a stable content hash over exactly what determines its rows.
- :mod:`~repro.sweep.store` — :class:`ResultStore`, an on-disk cache
  mapping shard hash → JSONL of trial rows plus a provenance manifest,
  with atomic writes and a ``get_or_run`` resume path.
- :mod:`~repro.sweep.orchestrator` — :func:`run_sweep`, which executes
  cache-missing shards on a process pool (each worker driving the fleet
  or reference engine) and assembles rows bit-identical to the
  sequential runner calls.

:mod:`~repro.sweep.aggregate` folds stored rows back into the existing
``SeriesPoint`` / ``ExperimentResult`` record schema, and
:mod:`~repro.sweep.rundb` keeps the paper pipeline's persistent run
database (append-only JSONL + rebuildable index, keyed by
execution-fingerprint hash).
"""

from repro.sweep.aggregate import QUANTITIES, cell_point, outcome_value, summarize
from repro.sweep.orchestrator import (
    SweepReport,
    SweepResult,
    execute_shard,
    run_sweep,
)
from repro.sweep.rundb import (
    RUNDB_FORMAT_VERSION,
    RunDB,
    RunRecord,
    fingerprint_hash,
    sweep_spec_hash,
)
from repro.sweep.spec import (
    FLEET_RULES,
    SPEC_FORMAT_VERSION,
    CellSpec,
    ShardSpec,
    SweepSpec,
    canonical_json,
)
from repro.sweep.store import STORE_FORMAT_VERSION, ResultStore, ShardManifest

__all__ = [
    "CellSpec",
    "FLEET_RULES",
    "QUANTITIES",
    "RUNDB_FORMAT_VERSION",
    "ResultStore",
    "RunDB",
    "RunRecord",
    "SPEC_FORMAT_VERSION",
    "STORE_FORMAT_VERSION",
    "ShardManifest",
    "ShardSpec",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "canonical_json",
    "cell_point",
    "execute_shard",
    "fingerprint_hash",
    "outcome_value",
    "run_sweep",
    "summarize",
    "sweep_spec_hash",
]
