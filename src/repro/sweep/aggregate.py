"""From stored trial rows back to the experiment record schema.

The sweep subsystem deliberately stores *rows* (one
:class:`~repro.experiments.runner.TrialOutcome` per trial) rather than
aggregates, so any summary can be recomputed from cache without rerunning
simulations.  This module is the bridge to the existing
:class:`~repro.experiments.records.SeriesPoint` /
:class:`~repro.experiments.records.ExperimentResult` schema —
``records.py``, the tables and the report generator stay unchanged
consumers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.records import SeriesPoint
from repro.experiments.runner import TrialOutcome
from repro.sweep.spec import CellSpec

#: Quantities a cell's rows can be summarised over.  ``messages`` and
#: ``bits`` are the communication-complexity axes of the paper's
#: beeping-vs-message-passing comparison: a beep costs one 1-bit message
#: per incident channel, a numeric value O(log n) bits per channel.
#: ``repair`` is the mean self-repair time over a trial's resolved churn
#: events (0.0 when the trial has none) and ``recovered`` is 1.0/0.0 per
#: trial, so its mean over a cell is the recovered fraction.
QUANTITIES = ("rounds", "beeps", "mis_size", "messages", "bits", "repair", "recovered")


def outcome_value(outcome: TrialOutcome, quantity: str) -> float:
    """One row's value of the requested quantity."""
    if quantity == "rounds":
        return float(outcome.rounds)
    if quantity == "beeps":
        return float(outcome.mean_beeps_per_node)
    if quantity == "mis_size":
        return float(outcome.mis_size)
    if quantity == "messages":
        return float(outcome.messages)
    if quantity == "bits":
        return float(outcome.bits)
    if quantity == "repair":
        resolved = [r for r in outcome.repair_rounds if r >= 0]
        if not resolved:
            return 0.0
        return sum(resolved) / len(resolved)
    if quantity == "recovered":
        return 1.0 if outcome.recovered else 0.0
    raise ValueError(f"quantity must be one of {QUANTITIES}, got {quantity!r}")


def summarize(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and sample standard deviation (0.0 below two values)."""
    if not values:
        raise ValueError("cannot summarize an empty value list")
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, variance ** 0.5


def cell_point(
    cell: CellSpec,
    rows: List[TrialOutcome],
    quantity: str,
    series: Optional[str] = None,
    extra: Optional[Dict[str, float]] = None,
    x: Optional[float] = None,
) -> SeriesPoint:
    """Summarise one cell's rows as one :class:`SeriesPoint`.

    The series name defaults to the cell's algorithm and ``x`` to its
    graph size, which is what every figure driver wants; drivers whose
    independent variable is not the size (e.g. the robustness grid's
    spurious-beep rate) override ``x``.
    """
    values = [outcome_value(row, quantity) for row in rows]
    mean, std = summarize(values)
    return SeriesPoint(
        series=cell.algorithm if series is None else series,
        x=float(cell.num_vertices) if x is None else float(x),
        mean=mean,
        std=std,
        trials=len(values),
        extra=dict(extra) if extra else {},
    )
