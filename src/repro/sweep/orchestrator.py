"""Sharded sweep execution across worker processes.

:func:`run_sweep` takes a :class:`~repro.sweep.spec.SweepSpec`, looks every
shard up in the :class:`~repro.sweep.store.ResultStore` (when one is
given), and executes only the misses — inline for ``jobs=1``, else on a
``ProcessPoolExecutor`` whose workers each run whole shards through the
fleet or reference engine (:mod:`repro.experiments.runner`).  Because a
shard derives its seeds from its *global* trial window (via
``derive_seed_block``'s ``start`` offset), the assembled rows are bit
identical to the sequential ``run_trials`` / ``run_fleet_trials`` call for
the same cell, regardless of job count, shard width, cache state or the
order workers finish in.

Executed shards are written back to the store as they complete, so an
interrupted sweep resumes from its last finished shard.

Worker failures do not sink the sweep: a shard whose execution raises is
retried up to :data:`SHARD_ATTEMPTS` times in total, and if it still
fails the sweep *finishes the remaining shards* and reports the casualty
in :attr:`SweepReport.failed_shards` (ticking ``sweep.shard.retry`` /
``sweep.shard.failed`` counters along the way).  Cells with a failed
shard are left out of :attr:`SweepResult.outcomes`; because every
*successful* shard was already written to the store, rerunning the same
sweep recomputes only the failed window.

Telemetry (:mod:`repro.telemetry`) is wired through the parent process:
every shard lookup/execution becomes one ``sweep.shard`` span (with the
shard's sha256 content hash, cell coordinates and cached flag as attrs),
cache hits/misses tick ``sweep.cache.*`` counters, a partially-cached
sweep emits a ``sweep.resume`` annotation, and the executed-vs-wall-clock
ratio lands in the ``sweep.worker_utilisation`` gauge.  Workers time
themselves and return the number, so shard spans are complete at any job
count; probes fired *inside* worker processes (engine-level telemetry)
only reach the collector for inline execution.  All of it is out of band
— with no collector installed the probes are no-ops and the sweep's rows
are byte-identical either way.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.algorithms.registry import make_algorithm
from repro.experiments.runner import TrialOutcome, run_fleet_trials, run_trials
from repro.sweep.spec import FLEET_RULES, CellSpec, ShardSpec, SweepSpec
from repro.sweep.store import PathLike, ResultStore
from repro.telemetry import probes

#: Executions attempted per shard before it is reported failed (one
#: initial try plus two retries).
SHARD_ATTEMPTS = 3

#: Test hook: when set, called as ``hook(shard, attempt)`` at the top of
#: every shard execution; raising fails that attempt.  Module-level so a
#: value patched in before the pool starts reaches ``fork``-based worker
#: processes too.
_failure_injector: Optional[Callable[[ShardSpec, int], None]] = None


@dataclass(frozen=True)
class ShardTiming:
    """Wall time of one shard within a sweep (lookup or execution)."""

    algorithm: str
    n: int
    lo: int
    hi: int
    seconds: float
    cached: bool
    content_hash: str

    def label(self) -> str:
        """Compact ``algorithm[n=..] [lo, hi)`` tag for report lines."""
        return f"{self.algorithm}[n={self.n} {self.lo}:{self.hi}]"


@dataclass(frozen=True)
class FailedShard:
    """A shard that kept raising after every retry."""

    algorithm: str
    n: int
    lo: int
    hi: int
    content_hash: str
    attempts: int
    error: str

    def label(self) -> str:
        """Compact ``algorithm[n=..] [lo, hi)`` tag for report lines."""
        return f"{self.algorithm}[n={self.n} {self.lo}:{self.hi}]"


@dataclass
class SweepReport:
    """What a sweep actually did (cache hits vs. executed work).

    ``timings`` keeps one entry per distinct shard: executed shards carry
    their measured compute wall time, cached shards the (much smaller)
    store lookup time — the numbers ``_execute_shard_timed`` and the
    store used to measure and drop.  ``failed_shards`` lists shards that
    raised on every attempt; ``shards_retried`` counts the individual
    retry attempts that preceded any success or failure.
    """

    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    seconds_executed: float = 0.0
    timings: List[ShardTiming] = field(default_factory=list)
    shards_retried: int = 0
    failed_shards: List[FailedShard] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Cached fraction of all distinct shard lookups, or ``None``."""
        looked_up = self.shards_executed + self.shards_cached
        if looked_up <= 0:
            return None
        return self.shards_cached / looked_up

    def slowest_shards(self, limit: int = 3) -> List[ShardTiming]:
        """The executed shards with the largest wall time, slowest first."""
        executed = [t for t in self.timings if not t.cached]
        executed.sort(key=lambda timing: -timing.seconds)
        return executed[:limit]

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        rate = self.cache_hit_rate
        line = (
            f"shards: total={self.shards_total} "
            f"executed={self.shards_executed} "
            f"cached={self.shards_cached} "
            f"hit-rate={'-' if rate is None else f'{100.0 * rate:.0f}%'} "
            f"compute={self.seconds_executed:.3f}s"
        )
        slowest = self.slowest_shards(1)
        if slowest:
            line += (
                f" slowest={slowest[0].label()} {slowest[0].seconds:.3f}s"
            )
        if self.shards_retried:
            line += f" retried={self.shards_retried}"
        if self.failed_shards:
            first = self.failed_shards[0]
            line += (
                f" failed={len(self.failed_shards)}"
                f" ({first.label()}: {first.error})"
            )
        return line


@dataclass
class SweepResult:
    """Assembled rows of one sweep, keyed by cell, plus its report."""

    spec: SweepSpec
    outcomes: Dict[CellSpec, List[TrialOutcome]] = field(default_factory=dict)
    report: SweepReport = field(default_factory=SweepReport)

    def rows(self, cell: CellSpec) -> List[TrialOutcome]:
        """All trial rows of one cell, in global trial order.

        Raises ``KeyError`` with the failure context when the cell is
        absent because one of its shards failed (see
        :attr:`SweepReport.failed_shards`).
        """
        try:
            return self.outcomes[cell]
        except KeyError:
            raise KeyError(
                f"no rows for cell {cell.algorithm}[n={cell.num_vertices}]"
                f" — a shard failed: {self.report.summary()}"
            ) from None


def execute_shard(shard: ShardSpec) -> List[TrialOutcome]:
    """Run one shard's trial window on the engine its cell names.

    This is the worker entry point: it takes only the picklable spec and
    rebuilds factories locally, so it runs identically inline and in a
    forked/spawned pool process.
    """
    cell = shard.cell
    window = (shard.lo, shard.hi)
    if cell.engine == "reference":
        return run_trials(
            lambda: make_algorithm(cell.algorithm),
            cell.graph_factory(),
            cell.trials,
            cell.master_seed,
            faults=cell.fault_model(),
            validate=cell.validate,
            max_rounds=cell.max_rounds,
            trial_range=window,
        )
    return run_fleet_trials(
        FLEET_RULES[cell.algorithm],
        cell.graph_factory(),
        cell.trials,
        cell.master_seed,
        graphs=cell.graphs,
        validate=cell.validate,
        max_rounds=cell.max_rounds,
        trial_range=window,
        faults=cell.fault_model(),
        rng_mode=cell.rng_mode,
        backend=cell.backend,
    )


def _execute_shard_timed(
    shard: ShardSpec, attempt: int = 0
) -> Tuple[List[TrialOutcome], float]:
    if _failure_injector is not None:
        _failure_injector(shard, attempt)
    start = time.perf_counter()
    rows = execute_shard(shard)
    return rows, time.perf_counter() - start


def _timing(
    shard: ShardSpec, digest: str, seconds: float, cached: bool
) -> ShardTiming:
    return ShardTiming(
        algorithm=shard.cell.algorithm,
        n=shard.cell.num_vertices,
        lo=shard.lo,
        hi=shard.hi,
        seconds=seconds,
        cached=cached,
        content_hash=digest,
    )


def run_sweep(
    spec: SweepSpec,
    store: Optional[Union[ResultStore, PathLike]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Execute a sweep, serving shards from the store where possible.

    ``jobs`` caps the number of concurrent worker processes; results do
    not depend on it.  ``store=None`` disables caching entirely.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    shards = spec.shards()
    report = SweepReport(shards_total=len(shards))

    # Deduplicate by content hash: identical shards (e.g. the same cell
    # listed twice) execute once and share rows.
    by_hash: Dict[str, ShardSpec] = {}
    for shard in shards:
        by_hash.setdefault(shard.content_hash(), shard)
    distinct = len(by_hash)

    rows_by_hash: Dict[str, List[TrialOutcome]] = {}
    missing: List[ShardSpec] = []
    for digest, shard in by_hash.items():
        lookup_start = time.perf_counter()
        cached = store.get(shard) if store is not None else None
        if cached is not None:
            lookup_seconds = time.perf_counter() - lookup_start
            rows_by_hash[digest] = cached
            report.shards_cached += 1
            report.timings.append(
                _timing(shard, digest, lookup_seconds, cached=True)
            )
            probes.count("sweep.cache.hit")
            probes.span_event(
                "sweep.shard",
                lookup_seconds,
                algorithm=shard.cell.algorithm,
                n=shard.cell.num_vertices,
                lo=shard.lo,
                hi=shard.hi,
                cached=True,
                content_hash=digest,
            )
        else:
            missing.append(shard)

    if report.shards_cached and missing:
        # A partially warm cache means this sweep resumed earlier work.
        probes.annotate(
            "sweep.resume",
            cached=report.shards_cached,
            missing=len(missing),
        )

    def record(shard: ShardSpec, rows: List[TrialOutcome], elapsed: float) -> None:
        digest = shard.content_hash()
        rows_by_hash[digest] = rows
        report.shards_executed += 1
        report.seconds_executed += elapsed
        report.timings.append(_timing(shard, digest, elapsed, cached=False))
        if store is not None:
            store.put(shard, rows, elapsed_seconds=elapsed)
        probes.count("sweep.cache.miss")
        probes.span_event(
            "sweep.shard",
            elapsed,
            algorithm=shard.cell.algorithm,
            n=shard.cell.num_vertices,
            lo=shard.lo,
            hi=shard.hi,
            cached=False,
            content_hash=digest,
            index=report.shards_executed,
            total=distinct - report.shards_cached,
        )

    def record_retry(shard: ShardSpec, attempt: int, exc: BaseException) -> None:
        report.shards_retried += 1
        probes.count("sweep.shard.retry")
        probes.annotate(
            "sweep.shard.retry",
            algorithm=shard.cell.algorithm,
            n=shard.cell.num_vertices,
            lo=shard.lo,
            hi=shard.hi,
            attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
        )

    def record_failure(shard: ShardSpec, exc: BaseException) -> None:
        digest = shard.content_hash()
        report.failed_shards.append(
            FailedShard(
                algorithm=shard.cell.algorithm,
                n=shard.cell.num_vertices,
                lo=shard.lo,
                hi=shard.hi,
                content_hash=digest,
                attempts=SHARD_ATTEMPTS,
                error=f"{type(exc).__name__}: {exc}",
            )
        )
        probes.count("sweep.shard.failed")
        probes.annotate(
            "sweep.shard.failed",
            algorithm=shard.cell.algorithm,
            n=shard.cell.num_vertices,
            lo=shard.lo,
            hi=shard.hi,
            content_hash=digest,
            error=f"{type(exc).__name__}: {exc}",
        )

    workers = 1
    execute_start = time.perf_counter()
    if len(missing) > 1 and jobs > 1:
        workers = min(jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Retries are resubmitted to the same pool, so ``as_completed``
            # over a fixed future set would miss them — drain with a
            # wait() loop over a mutating pending map instead.
            pending = {
                pool.submit(_execute_shard_timed, shard, 0): (shard, 0)
                for shard in missing
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard, attempt = pending.pop(future)
                    try:
                        rows, elapsed = future.result()
                    except Exception as exc:
                        if attempt + 1 < SHARD_ATTEMPTS:
                            record_retry(shard, attempt, exc)
                            pending[
                                pool.submit(
                                    _execute_shard_timed, shard, attempt + 1
                                )
                            ] = (shard, attempt + 1)
                        else:
                            record_failure(shard, exc)
                        continue
                    record(shard, rows, elapsed)
    else:
        for shard in missing:
            for attempt in range(SHARD_ATTEMPTS):
                try:
                    rows, elapsed = _execute_shard_timed(shard, attempt)
                except Exception as exc:
                    if attempt + 1 < SHARD_ATTEMPTS:
                        record_retry(shard, attempt, exc)
                        continue
                    record_failure(shard, exc)
                else:
                    record(shard, rows, elapsed)
                break

    if probes.enabled() and report.shards_executed:
        wall = time.perf_counter() - execute_start
        probes.gauge("sweep.workers", float(workers))
        if wall > 0.0:
            probes.gauge(
                "sweep.worker_utilisation",
                report.seconds_executed / (wall * workers),
            )

    result = SweepResult(spec=spec, report=report)
    for cell in spec.cells:
        assembled: List[TrialOutcome] = []
        complete = True
        for lo in range(0, cell.trials, spec.shard_trials):
            hi = min(lo + spec.shard_trials, cell.trials)
            digest = ShardSpec(cell, lo, hi).content_hash()
            if digest not in rows_by_hash:
                # One of this cell's shards failed all its attempts; the
                # cell is reported via failed_shards instead of rows.
                complete = False
                break
            assembled.extend(rows_by_hash[digest])
        if complete:
            result.outcomes[cell] = assembled
    return result
