"""Sharded sweep execution across worker processes.

:func:`run_sweep` takes a :class:`~repro.sweep.spec.SweepSpec`, looks every
shard up in the :class:`~repro.sweep.store.ResultStore` (when one is
given), and executes only the misses — inline for ``jobs=1``, else on a
``ProcessPoolExecutor`` whose workers each run whole shards through the
fleet or reference engine (:mod:`repro.experiments.runner`).  Because a
shard derives its seeds from its *global* trial window (via
``derive_seed_block``'s ``start`` offset), the assembled rows are bit
identical to the sequential ``run_trials`` / ``run_fleet_trials`` call for
the same cell, regardless of job count, shard width, cache state or the
order workers finish in.

Executed shards are written back to the store as they complete, so an
interrupted sweep resumes from its last finished shard.

Telemetry (:mod:`repro.telemetry`) is wired through the parent process:
every shard lookup/execution becomes one ``sweep.shard`` span (with the
shard's sha256 content hash, cell coordinates and cached flag as attrs),
cache hits/misses tick ``sweep.cache.*`` counters, a partially-cached
sweep emits a ``sweep.resume`` annotation, and the executed-vs-wall-clock
ratio lands in the ``sweep.worker_utilisation`` gauge.  Workers time
themselves and return the number, so shard spans are complete at any job
count; probes fired *inside* worker processes (engine-level telemetry)
only reach the collector for inline execution.  All of it is out of band
— with no collector installed the probes are no-ops and the sweep's rows
are byte-identical either way.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.algorithms.registry import make_algorithm
from repro.experiments.runner import TrialOutcome, run_fleet_trials, run_trials
from repro.sweep.spec import FLEET_RULES, CellSpec, ShardSpec, SweepSpec
from repro.sweep.store import PathLike, ResultStore
from repro.telemetry import probes


@dataclass(frozen=True)
class ShardTiming:
    """Wall time of one shard within a sweep (lookup or execution)."""

    algorithm: str
    n: int
    lo: int
    hi: int
    seconds: float
    cached: bool
    content_hash: str

    def label(self) -> str:
        """Compact ``algorithm[n=..] [lo, hi)`` tag for report lines."""
        return f"{self.algorithm}[n={self.n} {self.lo}:{self.hi}]"


@dataclass
class SweepReport:
    """What a sweep actually did (cache hits vs. executed work).

    ``timings`` keeps one entry per distinct shard: executed shards carry
    their measured compute wall time, cached shards the (much smaller)
    store lookup time — the numbers ``_execute_shard_timed`` and the
    store used to measure and drop.
    """

    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    seconds_executed: float = 0.0
    timings: List[ShardTiming] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Cached fraction of all distinct shard lookups, or ``None``."""
        looked_up = self.shards_executed + self.shards_cached
        if looked_up <= 0:
            return None
        return self.shards_cached / looked_up

    def slowest_shards(self, limit: int = 3) -> List[ShardTiming]:
        """The executed shards with the largest wall time, slowest first."""
        executed = [t for t in self.timings if not t.cached]
        executed.sort(key=lambda timing: -timing.seconds)
        return executed[:limit]

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        rate = self.cache_hit_rate
        line = (
            f"shards: total={self.shards_total} "
            f"executed={self.shards_executed} "
            f"cached={self.shards_cached} "
            f"hit-rate={'-' if rate is None else f'{100.0 * rate:.0f}%'} "
            f"compute={self.seconds_executed:.3f}s"
        )
        slowest = self.slowest_shards(1)
        if slowest:
            line += (
                f" slowest={slowest[0].label()} {slowest[0].seconds:.3f}s"
            )
        return line


@dataclass
class SweepResult:
    """Assembled rows of one sweep, keyed by cell, plus its report."""

    spec: SweepSpec
    outcomes: Dict[CellSpec, List[TrialOutcome]] = field(default_factory=dict)
    report: SweepReport = field(default_factory=SweepReport)

    def rows(self, cell: CellSpec) -> List[TrialOutcome]:
        """All trial rows of one cell, in global trial order."""
        return self.outcomes[cell]


def execute_shard(shard: ShardSpec) -> List[TrialOutcome]:
    """Run one shard's trial window on the engine its cell names.

    This is the worker entry point: it takes only the picklable spec and
    rebuilds factories locally, so it runs identically inline and in a
    forked/spawned pool process.
    """
    cell = shard.cell
    window = (shard.lo, shard.hi)
    if cell.engine == "reference":
        return run_trials(
            lambda: make_algorithm(cell.algorithm),
            cell.graph_factory(),
            cell.trials,
            cell.master_seed,
            faults=cell.fault_model(),
            validate=cell.validate,
            max_rounds=cell.max_rounds,
            trial_range=window,
        )
    return run_fleet_trials(
        FLEET_RULES[cell.algorithm],
        cell.graph_factory(),
        cell.trials,
        cell.master_seed,
        graphs=cell.graphs,
        validate=cell.validate,
        max_rounds=cell.max_rounds,
        trial_range=window,
        faults=cell.fault_model(),
        rng_mode=cell.rng_mode,
        backend=cell.backend,
    )


def _execute_shard_timed(shard: ShardSpec) -> Tuple[List[TrialOutcome], float]:
    start = time.perf_counter()
    rows = execute_shard(shard)
    return rows, time.perf_counter() - start


def _timing(
    shard: ShardSpec, digest: str, seconds: float, cached: bool
) -> ShardTiming:
    return ShardTiming(
        algorithm=shard.cell.algorithm,
        n=shard.cell.num_vertices,
        lo=shard.lo,
        hi=shard.hi,
        seconds=seconds,
        cached=cached,
        content_hash=digest,
    )


def run_sweep(
    spec: SweepSpec,
    store: Optional[Union[ResultStore, PathLike]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Execute a sweep, serving shards from the store where possible.

    ``jobs`` caps the number of concurrent worker processes; results do
    not depend on it.  ``store=None`` disables caching entirely.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    shards = spec.shards()
    report = SweepReport(shards_total=len(shards))

    # Deduplicate by content hash: identical shards (e.g. the same cell
    # listed twice) execute once and share rows.
    by_hash: Dict[str, ShardSpec] = {}
    for shard in shards:
        by_hash.setdefault(shard.content_hash(), shard)
    distinct = len(by_hash)

    rows_by_hash: Dict[str, List[TrialOutcome]] = {}
    missing: List[ShardSpec] = []
    for digest, shard in by_hash.items():
        lookup_start = time.perf_counter()
        cached = store.get(shard) if store is not None else None
        if cached is not None:
            lookup_seconds = time.perf_counter() - lookup_start
            rows_by_hash[digest] = cached
            report.shards_cached += 1
            report.timings.append(
                _timing(shard, digest, lookup_seconds, cached=True)
            )
            probes.count("sweep.cache.hit")
            probes.span_event(
                "sweep.shard",
                lookup_seconds,
                algorithm=shard.cell.algorithm,
                n=shard.cell.num_vertices,
                lo=shard.lo,
                hi=shard.hi,
                cached=True,
                content_hash=digest,
            )
        else:
            missing.append(shard)

    if report.shards_cached and missing:
        # A partially warm cache means this sweep resumed earlier work.
        probes.annotate(
            "sweep.resume",
            cached=report.shards_cached,
            missing=len(missing),
        )

    def record(shard: ShardSpec, rows: List[TrialOutcome], elapsed: float) -> None:
        digest = shard.content_hash()
        rows_by_hash[digest] = rows
        report.shards_executed += 1
        report.seconds_executed += elapsed
        report.timings.append(_timing(shard, digest, elapsed, cached=False))
        if store is not None:
            store.put(shard, rows, elapsed_seconds=elapsed)
        probes.count("sweep.cache.miss")
        probes.span_event(
            "sweep.shard",
            elapsed,
            algorithm=shard.cell.algorithm,
            n=shard.cell.num_vertices,
            lo=shard.lo,
            hi=shard.hi,
            cached=False,
            content_hash=digest,
            index=report.shards_executed,
            total=distinct - report.shards_cached,
        )

    workers = 1
    execute_start = time.perf_counter()
    if len(missing) > 1 and jobs > 1:
        workers = min(jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_shard_timed, shard): shard
                for shard in missing
            }
            for future in as_completed(futures):
                rows, elapsed = future.result()
                record(futures[future], rows, elapsed)
    else:
        for shard in missing:
            rows, elapsed = _execute_shard_timed(shard)
            record(shard, rows, elapsed)

    if probes.enabled() and report.shards_executed:
        wall = time.perf_counter() - execute_start
        probes.gauge("sweep.workers", float(workers))
        if wall > 0.0:
            probes.gauge(
                "sweep.worker_utilisation",
                report.seconds_executed / (wall * workers),
            )

    result = SweepResult(spec=spec, report=report)
    for cell in spec.cells:
        assembled: List[TrialOutcome] = []
        for lo in range(0, cell.trials, spec.shard_trials):
            hi = min(lo + spec.shard_trials, cell.trials)
            assembled.extend(rows_by_hash[ShardSpec(cell, lo, hi).content_hash()])
        result.outcomes[cell] = assembled
    return result
