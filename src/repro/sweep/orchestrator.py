"""Sharded sweep execution across worker processes.

:func:`run_sweep` takes a :class:`~repro.sweep.spec.SweepSpec`, looks every
shard up in the :class:`~repro.sweep.store.ResultStore` (when one is
given), and executes only the misses — inline for ``jobs=1``, else on a
``ProcessPoolExecutor`` whose workers each run whole shards through the
fleet or reference engine (:mod:`repro.experiments.runner`).  Because a
shard derives its seeds from its *global* trial window (via
``derive_seed_block``'s ``start`` offset), the assembled rows are bit
identical to the sequential ``run_trials`` / ``run_fleet_trials`` call for
the same cell, regardless of job count, shard width, cache state or the
order workers finish in.

Executed shards are written back to the store as they complete, so an
interrupted sweep resumes from its last finished shard.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.algorithms.registry import make_algorithm
from repro.experiments.runner import TrialOutcome, run_fleet_trials, run_trials
from repro.sweep.spec import FLEET_RULES, CellSpec, ShardSpec, SweepSpec
from repro.sweep.store import PathLike, ResultStore


@dataclass
class SweepReport:
    """What a sweep actually did (cache hits vs. executed work)."""

    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    seconds_executed: float = 0.0

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        return (
            f"shards: total={self.shards_total} "
            f"executed={self.shards_executed} "
            f"cached={self.shards_cached} "
            f"compute={self.seconds_executed:.3f}s"
        )


@dataclass
class SweepResult:
    """Assembled rows of one sweep, keyed by cell, plus its report."""

    spec: SweepSpec
    outcomes: Dict[CellSpec, List[TrialOutcome]] = field(default_factory=dict)
    report: SweepReport = field(default_factory=SweepReport)

    def rows(self, cell: CellSpec) -> List[TrialOutcome]:
        """All trial rows of one cell, in global trial order."""
        return self.outcomes[cell]


def execute_shard(shard: ShardSpec) -> List[TrialOutcome]:
    """Run one shard's trial window on the engine its cell names.

    This is the worker entry point: it takes only the picklable spec and
    rebuilds factories locally, so it runs identically inline and in a
    forked/spawned pool process.
    """
    cell = shard.cell
    window = (shard.lo, shard.hi)
    if cell.engine == "reference":
        return run_trials(
            lambda: make_algorithm(cell.algorithm),
            cell.graph_factory(),
            cell.trials,
            cell.master_seed,
            faults=cell.fault_model(),
            validate=cell.validate,
            max_rounds=cell.max_rounds,
            trial_range=window,
        )
    return run_fleet_trials(
        FLEET_RULES[cell.algorithm],
        cell.graph_factory(),
        cell.trials,
        cell.master_seed,
        graphs=cell.graphs,
        validate=cell.validate,
        max_rounds=cell.max_rounds,
        trial_range=window,
        faults=cell.fault_model(),
        rng_mode=cell.rng_mode,
    )


def _execute_shard_timed(shard: ShardSpec) -> Tuple[List[TrialOutcome], float]:
    start = time.perf_counter()
    rows = execute_shard(shard)
    return rows, time.perf_counter() - start


def run_sweep(
    spec: SweepSpec,
    store: Optional[Union[ResultStore, PathLike]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Execute a sweep, serving shards from the store where possible.

    ``jobs`` caps the number of concurrent worker processes; results do
    not depend on it.  ``store=None`` disables caching entirely.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    shards = spec.shards()
    report = SweepReport(shards_total=len(shards))

    # Deduplicate by content hash: identical shards (e.g. the same cell
    # listed twice) execute once and share rows.
    by_hash: Dict[str, ShardSpec] = {}
    for shard in shards:
        by_hash.setdefault(shard.content_hash(), shard)

    rows_by_hash: Dict[str, List[TrialOutcome]] = {}
    missing: List[ShardSpec] = []
    for digest, shard in by_hash.items():
        cached = store.get(shard) if store is not None else None
        if cached is not None:
            rows_by_hash[digest] = cached
            report.shards_cached += 1
        else:
            missing.append(shard)

    def record(shard: ShardSpec, rows: List[TrialOutcome], elapsed: float) -> None:
        rows_by_hash[shard.content_hash()] = rows
        report.shards_executed += 1
        report.seconds_executed += elapsed
        if store is not None:
            store.put(shard, rows, elapsed_seconds=elapsed)

    if len(missing) > 1 and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
            futures = {
                pool.submit(_execute_shard_timed, shard): shard
                for shard in missing
            }
            for future in as_completed(futures):
                rows, elapsed = future.result()
                record(futures[future], rows, elapsed)
    else:
        for shard in missing:
            rows, elapsed = _execute_shard_timed(shard)
            record(shard, rows, elapsed)

    result = SweepResult(spec=spec, report=report)
    for cell in spec.cells:
        assembled: List[TrialOutcome] = []
        for lo in range(0, cell.trials, spec.shard_trials):
            hi = min(lo + spec.shard_trials, cell.trials)
            assembled.extend(rows_by_hash[ShardSpec(cell, lo, hi).content_hash()])
        result.outcomes[cell] = assembled
    return result
