"""Persistent run database for the paper pipeline.

Every ``repro paper`` invocation appends one :class:`RunRecord` per
regenerated experiment to an on-disk database, keyed by the experiment's
*execution-fingerprint hash* — a sha256 over exactly the shard content
hashes the sweep orchestrator looked up (plus, for non-orchestrated
experiments, a canonical parameter fingerprint).  Two runs with equal
keys are guaranteed byte-identical artefacts, so the database answers
"when did these exact bytes last get produced, and from how warm a
cache?" across sessions.

Layout (under one database root)::

    <root>/runs.jsonl   append-only, one JSON record per line
    <root>/index.json   rebuildable summary (atomic rewrite)

The write discipline mirrors the result store and the telemetry ledger:
records land as single ``O_APPEND`` line writes, the index via
``atomic_write_text``, and readers tolerate damage — an unparsable
(torn) trailing line is skipped, a corrupt index is rebuilt from the
records.  The database is therefore safe to share between concurrent
pipeline runs and never blocks on partial state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.sweep.spec import SPEC_FORMAT_VERSION, SweepSpec, canonical_json
from repro.sweep.store import atomic_write_text

PathLike = Union[str, Path]

#: Bump when the record schema changes incompatibly (read-time check on
#: the index only; records are self-describing and skipped when stale).
RUNDB_FORMAT_VERSION = 1


def sweep_spec_hash(spec: SweepSpec) -> str:
    """sha256 over a sweep's execution fingerprints (order-sensitive).

    Shard width is excluded — like the store's shard hashes, the key must
    not split when only the partition of ``[0, trials)`` changes.
    """
    payload = {
        "format": SPEC_FORMAT_VERSION,
        "cells": [cell.execution_fingerprint() for cell in spec.cells],
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def fingerprint_hash(payload: Any) -> str:
    """sha256 over any JSON-safe payload's canonical serialisation.

    The spec-hash fallback for experiments that do not run through the
    orchestrator (the bio ODE ablation): hash the parameters that
    determine the artefact bytes instead of shard fingerprints.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """One experiment regeneration, as stored in the database.

    ``spec_hash`` is the execution-fingerprint key; ``shards_*`` count
    the orchestrator's distinct shard lookups (all zero for experiments
    outside the orchestrator); ``drift`` is the golden verdict at record
    time (``PASS``/``DRIFT``/``MISSING``/``SKIP``); ``csv_sha256``
    fingerprints the emitted artefact, so byte drift is detectable from
    the database alone.
    """

    run_id: str
    experiment: str
    spec_hash: str
    trials: int
    shards_total: int = 0
    shards_executed: int = 0
    shards_cached: int = 0
    elapsed_seconds: float = 0.0
    drift: str = "MISSING"
    csv_sha256: str = ""
    created: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Cached fraction of the run's shard lookups, or ``None``."""
        looked_up = self.shards_executed + self.shards_cached
        if looked_up <= 0:
            return None
        return self.shards_cached / looked_up

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (one ``runs.jsonl`` line)."""
        return {
            "format": RUNDB_FORMAT_VERSION,
            "run_id": self.run_id,
            "experiment": self.experiment,
            "spec_hash": self.spec_hash,
            "trials": self.trials,
            "shards_total": self.shards_total,
            "shards_executed": self.shards_executed,
            "shards_cached": self.shards_cached,
            "elapsed_seconds": self.elapsed_seconds,
            "drift": self.drift,
            "csv_sha256": self.csv_sha256,
            "created": self.created,
            "extra": self.extra,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return RunRecord(
            run_id=str(payload["run_id"]),
            experiment=str(payload["experiment"]),
            spec_hash=str(payload["spec_hash"]),
            trials=int(payload["trials"]),
            shards_total=int(payload.get("shards_total", 0)),
            shards_executed=int(payload.get("shards_executed", 0)),
            shards_cached=int(payload.get("shards_cached", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            drift=str(payload.get("drift", "MISSING")),
            csv_sha256=str(payload.get("csv_sha256", "")),
            created=float(payload.get("created", 0.0)),
            extra=dict(payload.get("extra", {})),
        )


class RunDB:
    """The append-only pipeline run database under one directory."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The database root directory."""
        return self._root

    @property
    def runs_path(self) -> Path:
        """The append-only record log."""
        return self._root / "runs.jsonl"

    @property
    def index_path(self) -> Path:
        """The rebuildable summary index."""
        return self._root / "index.json"

    def append(self, record: RunRecord) -> None:
        """Append one record (single line write) and refresh the index."""
        line = json.dumps(
            record.to_dict(), sort_keys=True, separators=(",", ":")
        )
        # One write call in append mode: concurrent appenders interleave
        # whole lines on POSIX, and a crash mid-write leaves at most one
        # torn trailing line, which records() skips.
        with open(self.runs_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._write_index(self.records())

    def records(self) -> List[RunRecord]:
        """Every parseable record, in append order.

        Damage tolerance mirrors the ledger reader: lines that do not
        parse as JSON or lack required fields (torn tails, foreign
        garbage) are skipped, never fatal.
        """
        try:
            text = self.runs_path.read_text(encoding="utf-8")
        except OSError:
            return []
        records: List[RunRecord] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
        return records

    def runs_for(self, spec_hash: str) -> List[RunRecord]:
        """All records keyed by ``spec_hash`` (prefix match allowed)."""
        return [
            record
            for record in self.records()
            if record.spec_hash.startswith(spec_hash)
        ]

    def latest(self, experiment: str) -> Optional[RunRecord]:
        """The most recent record of one experiment, or ``None``."""
        found = None
        for record in self.records():
            if record.experiment == experiment:
                found = record
        return found

    def index(self) -> Dict[str, Any]:
        """The summary index, rebuilt from the records when damaged."""
        try:
            payload = json.loads(self.index_path.read_text(encoding="utf-8"))
            if payload.get("format") == RUNDB_FORMAT_VERSION:
                return payload
        except (OSError, ValueError):
            pass
        return self._write_index(self.records())

    def _write_index(self, records: Sequence[RunRecord]) -> Dict[str, Any]:
        experiments: Dict[str, Dict[str, Any]] = {}
        for record in records:
            entry = experiments.setdefault(
                record.experiment, {"runs": 0}
            )
            entry["runs"] += 1
            entry["last_run_id"] = record.run_id
            entry["last_spec_hash"] = record.spec_hash
            entry["last_drift"] = record.drift
        payload = {
            "format": RUNDB_FORMAT_VERSION,
            "records": len(records),
            "experiments": experiments,
        }
        atomic_write_text(
            self.index_path,
            json.dumps(payload, indent=2, sort_keys=True),
        )
        return payload
