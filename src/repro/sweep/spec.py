"""Frozen, hashable descriptions of experiment sweeps.

A sweep is a grid of *cells*; a cell is one (algorithm, graph family,
size, trials, master seed, fault model) point executed either on the
trial-parallel fleet engine or on the per-node reference engine.  Cells
split into *shards* — contiguous global-trial windows — and every shard
has a stable content hash over exactly the fields that determine its
:class:`~repro.experiments.runner.TrialOutcome` rows.  That hash is the
key of the on-disk result store (:mod:`repro.sweep.store`); two shards
with equal hashes are guaranteed to produce identical rows, so cached
rows can be substituted for execution.

What goes into the hash
-----------------------
- the spec format version (bump :data:`SPEC_FORMAT_VERSION` on any change
  to seed derivation or row semantics — it invalidates every old entry);
- the cell's execution fingerprint: algorithm, engine, graph family and
  its parameters, master seed, fault model, ``max_rounds``.
  For **fleet** cells it also includes ``(trials, graphs)`` because the
  per-graph grouping (and hence every seed path) depends on them, and
  ``rng_mode`` because the stream and counter disciplines draw different
  uniforms; for **reference** cells the total trial count is *excluded*
  — trial ``t`` depends only on ``master_seed`` and ``t``, so extending
  a sweep from 100 to 200 trials reuses every stored shard of the first
  100 — and so is ``rng_mode``, which the per-node engine ignores;
- the shard's global trial window ``[lo, hi)``.

Deliberately **not** in the hash: job count, shard width of *other*
shards, store paths, timestamps, ``validate`` (it can only raise, never
alter a row), ``backend`` (dense, sparse and bitboard kernels compute
identical rows — the conformance suite enforces it, so a warm cache is
shared across backends) — anything that cannot change the rows.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Dict, List, Tuple, Union

from repro.algorithms.registry import available_algorithms
from repro.beeping.faults import ChurnSchedule, CrashSchedule, FaultModel
from repro.beeping.rng import RNG_MODES
from repro.engine.applications import APPLICATION_RULES, ApplicationRule
from repro.engine.messages import MESSAGE_RULES, MessageRule
from repro.engine.rules import FeedbackRule, ProbabilityRule, SweepRule
from repro.graphs.cliques import theorem1_family
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import grid_graph

#: Bump to invalidate every stored shard (seed or row semantics changed).
#: v2: fleet cells grew an ``rng_mode`` (defaulting to the new counter
#: discipline), so v1 fleet rows — all stream-mode — must not be served
#: for v2 keys.  The application kernels (``mis-*``) did NOT need a bump:
#: they are new algorithm names, so their shards hash to fresh keys on
#: their own, and no pre-existing fingerprint changed.
#: v3: rows grew the churn self-repair columns (``repair_rounds``,
#: ``recovered``) and every fingerprint a ``churn`` entry; v2 rows never
#: carry repair data, so they must not be served for v3 keys even though
#: churn-free numeric columns are unchanged.
SPEC_FORMAT_VERSION = 3

ENGINES = ("fleet", "reference")
#: Graph families a cell can name.  ``theorem1`` is the paper's
#: disjoint-clique lower-bound family (``copies`` copies of ``K_d`` for
#: ``d = 1..side``); it joined in v3 *without* a format bump — its
#: fingerprint fields (``side``, ``copies``) only appear under the new
#: family value, so no pre-existing key changed.
FAMILIES = ("gnp", "grid", "theorem1")

#: Fleet neighbour-reduction kernels a cell may request
#: (:class:`~repro.engine.fleet.FleetSimulator` backends).  The
#: reference engine ignores the field.
BACKENDS = ("auto", "dense", "sparse", "bitboard")

#: Rules the fleet engines can run by name: the trial-parallel beeping
#: probability rules, the message-passing kernels, and the MIS
#: application kernels (factories producing
#: :class:`~repro.engine.messages.MessageRule` /
#: :class:`~repro.engine.applications.ApplicationRule` instances —
#: ``run_fleet_trials`` dispatches on the rule type).
FLEET_RULES: Dict[
    str, Callable[[], Union[ApplicationRule, MessageRule, ProbabilityRule]]
] = {
    "feedback": FeedbackRule,
    "afek-sweep": SweepRule,
    **MESSAGE_RULES,
    **APPLICATION_RULES,
}

#: The subset of :data:`FLEET_RULES` that runs the message-passing
#: fabric: counter rng mode only, no fault injection.
MESSAGE_FLEET_RULES = frozenset(MESSAGE_RULES)

#: The subset of :data:`FLEET_RULES` that runs the application fabric
#: (MIS-peeling colouring, matching, dominating, ruling sets): like the
#: message kernels, counter rng mode only and no fault injection.
APPLICATION_FLEET_RULES = frozenset(APPLICATION_RULES)

#: Registry algorithms that honour churn schedules on the reference
#: engine: the beeping-scheduler algorithms plus the Luby baselines.
#: The rest (Métivier, local-minimum-id, the greedy baselines) ignore
#: the fault model entirely, so a churn cell naming one of them would
#: silently compute an MIS of the wrong graph — rejected instead.
CHURN_REFERENCE_ALGORITHMS = frozenset(
    {
        "feedback",
        "afek-sweep",
        "afek-global",
        "luby-permutation",
        "luby-probability",
    }
)


def churn_to_json(churn: Tuple[Tuple[Any, ...], ...]) -> List[List[Any]]:
    """Churn event tuples as JSON-safe nested lists."""
    return [
        [event[0], event[1], event[2], list(event[3])]
        if len(event) == 4
        else [event[0], event[1], event[2]]
        for event in churn
    ]


def churn_from_json(payload: Any) -> Tuple[Tuple[Any, ...], ...]:
    """Inverse of :func:`churn_to_json` (tolerates tuple input)."""
    events = []
    for event in payload:
        kind, round_index, vertex = event[0], int(event[1]), int(event[2])
        if len(event) == 4:
            events.append(
                (kind, round_index, vertex,
                 tuple(int(w) for w in event[3]))
            )
        else:
            events.append((kind, round_index, vertex))
    return tuple(events)


def canonical_json(payload: Any) -> str:
    """The one canonical serialisation hashes are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: an algorithm on a graph family at one size.

    ``family="gnp"`` draws ``G(n, edge_probability)``; ``family="grid"``
    uses a fixed ``rows × cols`` grid (the rng is ignored);
    ``family="theorem1"`` uses the paper's lower-bound construction —
    ``copies`` copies of ``K_d`` for ``d = 1..side`` (``copies=0`` means
    ``side``, the paper's choice) — also deterministic.  ``engine``
    selects execution semantics:

    - ``"fleet"`` — :func:`repro.experiments.runner.run_fleet_trials`:
      ``trials`` spread over ``graphs`` lockstep groups, ``algorithm``
      names a :data:`FLEET_RULES` entry — a beeping probability rule,
      one of the message-passing kernels (:data:`MESSAGE_FLEET_RULES`:
      the Luby variants, Métivier, local-minimum-id), or one of the MIS
      application kernels (:data:`APPLICATION_FLEET_RULES`: ``mis-*``
      colouring, matching, dominating and ruling-set reductions, whose
      ``mis_size`` column carries the application's output size).
      ``rng_mode`` picks
      the uniform discipline: ``"counter"`` (default) runs all groups as
      one block-diagonal armada batch; ``"stream"`` keeps the per-graph
      sequential-generator path whose bytes the golden traces pin.
      Message algorithms are counter-only and fault-free by construction.
    - ``"reference"`` — :func:`repro.experiments.runner.run_trials`: a
      fresh graph per trial, ``algorithm`` names a registry algorithm.
      The per-node engine has its own ``random.Random`` discipline and
      ignores ``rng_mode``.

    Both engines support the fault fields (``beep_loss``,
    ``spurious_beep``, ``crashes``, ``churn``) — fleet cells inject
    them as vectorised per-edge/per-node masks, reference cells through
    the per-node channel; robustness grids therefore get the fleet
    speedup and the shard cache (see ``docs/robustness.md``).  ``churn``
    holds :meth:`~repro.beeping.faults.ChurnSchedule.to_tuples`-style
    event tuples — ``(kind, round, vertex)`` plus
    ``("join", round, vertex, (neighbours...))`` — canonicalised and
    validated through :class:`~repro.beeping.faults.ChurnSchedule` on
    construction.  Churn reference cells must name a
    :data:`CHURN_REFERENCE_ALGORITHMS` member.
    """

    algorithm: str
    engine: str = "fleet"
    family: str = "gnp"
    n: int = 0
    edge_probability: float = 0.5
    rows: int = 0
    cols: int = 0
    side: int = 0
    copies: int = 0
    trials: int = 1
    graphs: int = 1
    master_seed: int = 0
    rng_mode: str = "counter"
    beep_loss: float = 0.0
    spurious_beep: float = 0.0
    crashes: Tuple[Tuple[int, int], ...] = ()
    churn: Tuple[Tuple[Any, ...], ...] = ()
    validate: bool = True
    max_rounds: int = 100_000
    #: Fleet neighbour-reduction kernel (``auto``/``dense``/``sparse``/
    #: ``bitboard``).  Pure execution strategy: all backends compute
    #: bit-identical rows, so — like ``validate`` — it is excluded from
    #: the execution fingerprint and a warm cache serves every backend.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}"
            )
        if self.family not in FAMILIES:
            raise ValueError(f"family must be one of {FAMILIES}, got {self.family!r}")
        if self.family == "gnp":
            if self.n < 1:
                raise ValueError(f"gnp family needs n >= 1, got {self.n}")
            if not 0.0 <= self.edge_probability <= 1.0:
                raise ValueError(
                    f"edge_probability must be in [0, 1], got {self.edge_probability}"
                )
        elif self.family == "grid":
            if self.rows < 1 or self.cols < 1:
                raise ValueError(
                    f"grid family needs rows, cols >= 1, got {self.rows}x{self.cols}"
                )
        else:
            if self.side < 1:
                raise ValueError(
                    f"theorem1 family needs side >= 1, got {self.side}"
                )
            if self.copies < 0:
                raise ValueError(
                    f"theorem1 family needs copies >= 0, got {self.copies}"
                )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.graphs < 1:
            raise ValueError(f"graphs must be >= 1, got {self.graphs}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted((int(r), int(v)) for r, v in self.crashes)),
        )
        # Canonicalise (sort, dedup-check, timeline-validate) the churn
        # events through the schedule round trip.
        object.__setattr__(
            self,
            "churn",
            ChurnSchedule.from_events(
                churn_from_json(self.churn)
            ).to_tuples(),
        )
        self.fault_model()  # validates the fault fields for every engine
        if (
            self.churn
            and self.engine == "reference"
            and self.algorithm not in CHURN_REFERENCE_ALGORITHMS
        ):
            raise ValueError(
                f"algorithm {self.algorithm!r} ignores churn schedules; "
                "churn reference cells support "
                f"{sorted(CHURN_REFERENCE_ALGORITHMS)}"
            )
        if self.engine == "fleet":
            if self.algorithm not in FLEET_RULES:
                raise ValueError(
                    f"fleet engine supports rules {sorted(FLEET_RULES)}, "
                    f"got {self.algorithm!r}"
                )
            if (
                self.algorithm in MESSAGE_FLEET_RULES
                or self.algorithm in APPLICATION_FLEET_RULES
            ):
                kind = (
                    "message"
                    if self.algorithm in MESSAGE_FLEET_RULES
                    else "application"
                )
                if self.rng_mode != "counter":
                    raise ValueError(
                        f"{kind} algorithm {self.algorithm!r} runs the "
                        "counter fabric only; use rng_mode='counter'"
                    )
                if not self.fault_model().is_fault_free:
                    raise ValueError(
                        f"{kind} algorithm {self.algorithm!r} does not "
                        "support fault injection on the fleet engine"
                    )
        elif self.algorithm not in available_algorithms():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {available_algorithms()}"
            )

    @property
    def num_vertices(self) -> int:
        """The graph size (the natural x-axis value of this cell)."""
        if self.family == "gnp":
            return self.n
        if self.family == "grid":
            return self.rows * self.cols
        copies = self.copies or self.side
        return copies * self.side * (self.side + 1) // 2

    def fault_model(self) -> FaultModel:
        """The cell's fault parameters as a :class:`FaultModel`."""
        return FaultModel(
            beep_loss_probability=self.beep_loss,
            spurious_beep_probability=self.spurious_beep,
            crash_schedule=CrashSchedule.from_pairs(self.crashes),
            churn_schedule=ChurnSchedule.from_events(self.churn),
        )

    def graph_factory(self) -> Callable[[Random], Graph]:
        """A seeded graph factory realising the cell's family."""
        if self.family == "gnp":
            n, p = self.n, self.edge_probability
            return lambda rng: gnp_random_graph(n, p, rng)
        if self.family == "grid":
            rows, cols = self.rows, self.cols
            return lambda _rng: grid_graph(rows, cols)
        side, copies = self.side, self.copies
        return lambda _rng: theorem1_family(side, copies)

    def execution_fingerprint(self) -> Dict[str, Any]:
        """The fields that determine this cell's rows (see module docs)."""
        fingerprint: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "engine": self.engine,
            "family": self.family,
            "master_seed": self.master_seed,
            "beep_loss": self.beep_loss,
            "spurious_beep": self.spurious_beep,
            "crashes": [list(pair) for pair in self.crashes],
            "churn": churn_to_json(self.churn),
            "max_rounds": self.max_rounds,
        }
        if self.family == "gnp":
            fingerprint["n"] = self.n
            fingerprint["edge_probability"] = self.edge_probability
        elif self.family == "grid":
            fingerprint["rows"] = self.rows
            fingerprint["cols"] = self.cols
        else:
            fingerprint["side"] = self.side
            fingerprint["copies"] = self.copies
        if self.engine == "fleet":
            # The per-graph grouping — and therefore every seed path —
            # depends on the full (trials, graphs) pair; the rng mode
            # decides which uniforms those seeds expand into.  The
            # reference engine uses neither.
            fingerprint["trials"] = self.trials
            fingerprint["graphs"] = self.graphs
            fingerprint["rng_mode"] = self.rng_mode
        return fingerprint

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-safe description (manifests, CLI round trips)."""
        return {
            "algorithm": self.algorithm,
            "engine": self.engine,
            "family": self.family,
            "n": self.n,
            "edge_probability": self.edge_probability,
            "rows": self.rows,
            "cols": self.cols,
            "side": self.side,
            "copies": self.copies,
            "trials": self.trials,
            "graphs": self.graphs,
            "master_seed": self.master_seed,
            "rng_mode": self.rng_mode,
            "beep_loss": self.beep_loss,
            "spurious_beep": self.spurious_beep,
            "crashes": [list(pair) for pair in self.crashes],
            "churn": churn_to_json(self.churn),
            "validate": self.validate,
            "max_rounds": self.max_rounds,
            "backend": self.backend,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "CellSpec":
        """Inverse of :meth:`to_dict`."""
        data = dict(payload)
        data["crashes"] = tuple(
            (int(r), int(v)) for r, v in data.get("crashes", ())
        )
        data["churn"] = churn_from_json(data.get("churn", ()))
        return CellSpec(**data)


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous global-trial window ``[lo, hi)`` of one cell."""

    cell: CellSpec
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi <= self.cell.trials:
            raise ValueError(
                f"shard window must satisfy 0 <= lo < hi <= "
                f"{self.cell.trials}, got ({self.lo}, {self.hi})"
            )

    @property
    def trials(self) -> int:
        """Number of trials this shard executes."""
        return self.hi - self.lo

    def content_hash(self) -> str:
        """sha256 over everything that determines this shard's rows."""
        payload = {
            "format": SPEC_FORMAT_VERSION,
            "cell": self.cell.execution_fingerprint(),
            "lo": self.lo,
            "hi": self.hi,
        }
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
        return digest.hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-safe description (stored in the shard manifest)."""
        return {"cell": self.cell.to_dict(), "lo": self.lo, "hi": self.hi}

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "ShardSpec":
        """Inverse of :meth:`to_dict`."""
        return ShardSpec(
            cell=CellSpec.from_dict(payload["cell"]),
            lo=int(payload["lo"]),
            hi=int(payload["hi"]),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A grid of cells plus the shard width the orchestrator splits at.

    ``shard_trials`` bounds how many trials one shard executes; it shapes
    parallelism and cache granularity but never the results — shard hashes
    are per-window, and any partition of ``[0, trials)`` concatenates to
    the same rows.
    """

    cells: Tuple[CellSpec, ...]
    shard_trials: int = 32

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a sweep needs at least one cell")
        if self.shard_trials < 1:
            raise ValueError(
                f"shard_trials must be >= 1, got {self.shard_trials}"
            )
        object.__setattr__(self, "cells", tuple(self.cells))

    def shards(self) -> List[ShardSpec]:
        """Every cell partitioned into ``shard_trials``-wide windows."""
        out: List[ShardSpec] = []
        for cell in self.cells:
            for lo in range(0, cell.trials, self.shard_trials):
                out.append(
                    ShardSpec(cell, lo, min(lo + self.shard_trials, cell.trials))
                )
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-safe description."""
        return {
            "cells": [cell.to_dict() for cell in self.cells],
            "shard_trials": self.shard_trials,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`."""
        return SweepSpec(
            cells=tuple(
                CellSpec.from_dict(cell) for cell in payload["cells"]
            ),
            shard_trials=int(payload.get("shard_trials", 32)),
        )
