"""Content-addressed on-disk store of shard results.

Layout (under one cache root)::

    <root>/ab/<hash>.jsonl          one TrialOutcome per line
    <root>/ab/<hash>.manifest.json  provenance: shard spec, code version,
                                    row count, wall-clock, creation time

where ``<hash>`` is :meth:`ShardSpec.content_hash` and ``ab`` its first
two hex digits.  Writes are atomic (temp file + ``os.replace``) and the
manifest lands *after* the rows, so a visible manifest always implies
complete rows; readers treat anything inconsistent — missing files,
unparsable lines, row-count or version mismatches — as a cache miss, and
the next :meth:`ResultStore.get_or_run` simply recomputes and rewrites it.

Invalidation is purely key-driven: results never expire, they are orphaned
when their key changes (spec format version bump, changed seed discipline,
changed cell parameters).  ``STORE_FORMAT_VERSION`` covers the *file
layout* and is checked at read time; :data:`~repro.sweep.spec.SPEC_FORMAT_VERSION`
covers *result semantics* and is folded into the hash itself.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.experiments.runner import TrialOutcome
from repro.sweep.spec import ShardSpec
from repro.telemetry import probes

PathLike = Union[str, Path]

#: Bump when the JSONL/manifest layout changes (read-time check).
STORE_FORMAT_VERSION = 1

_ROW_FIELDS = ("trial", "rounds", "mis_size", "mean_beeps_per_node", "messages", "bits")


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The write discipline every on-disk artefact of the sweep subsystem
    uses: a reader never sees a half-written file — either the old bytes,
    or the complete new ones.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent,
        prefix=f".tmp-{path.name}-",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class ShardManifest:
    """Provenance of one stored shard."""

    content_hash: str
    store_format: int
    code_version: str
    rows: int
    elapsed_seconds: float
    created: float
    shard: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "content_hash": self.content_hash,
            "store_format": self.store_format,
            "code_version": self.code_version,
            "rows": self.rows,
            "elapsed_seconds": self.elapsed_seconds,
            "created": self.created,
            "shard": self.shard,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "ShardManifest":
        """Inverse of :meth:`to_dict`."""
        return ShardManifest(
            content_hash=payload["content_hash"],
            store_format=int(payload["store_format"]),
            code_version=payload["code_version"],
            rows=int(payload["rows"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            created=float(payload.get("created", 0.0)),
            shard=payload["shard"],
        )


def _row_to_json(outcome: TrialOutcome) -> str:
    # Churn fields are serialised only when non-default so that rows from
    # fault-free (and crash-only) cells keep their pre-churn byte layout.
    payload = {name: getattr(outcome, name) for name in _ROW_FIELDS}
    if outcome.repair_rounds:
        payload["repair_rounds"] = list(outcome.repair_rounds)
    if not outcome.recovered:
        payload["recovered"] = False
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _row_from_json(line: str) -> TrialOutcome:
    payload = json.loads(line)
    return TrialOutcome(
        trial=int(payload["trial"]),
        rounds=int(payload["rounds"]),
        mis_size=int(payload["mis_size"]),
        mean_beeps_per_node=float(payload["mean_beeps_per_node"]),
        messages=int(payload["messages"]),
        bits=int(payload["bits"]),
        repair_rounds=tuple(int(r) for r in payload.get("repair_rounds", ())),
        recovered=bool(payload.get("recovered", True)),
    )


class ResultStore:
    """A content-addressed cache of shard results under one directory."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The cache root directory."""
        return self._root

    def rows_path(self, shard: ShardSpec) -> Path:
        """Where the shard's JSONL rows live."""
        digest = shard.content_hash()
        return self._root / digest[:2] / f"{digest}.jsonl"

    def manifest_path(self, shard: ShardSpec) -> Path:
        """Where the shard's provenance manifest lives."""
        digest = shard.content_hash()
        return self._root / digest[:2] / f"{digest}.manifest.json"

    def _atomic_write(self, path: Path, text: str) -> None:
        atomic_write_text(path, text)

    def manifest(self, shard: ShardSpec) -> Optional[ShardManifest]:
        """The shard's manifest, or ``None`` if absent/unreadable/stale."""
        path = self.manifest_path(shard)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            manifest = ShardManifest.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if manifest.store_format != STORE_FORMAT_VERSION:
            return None
        if manifest.content_hash != shard.content_hash():
            return None
        return manifest

    def get(self, shard: ShardSpec) -> Optional[List[TrialOutcome]]:
        """Stored rows for the shard, or ``None`` on any inconsistency."""
        manifest = self.manifest(shard)
        if manifest is None:
            probes.count("store.miss")
            return None
        try:
            text = self.rows_path(shard).read_text(encoding="utf-8")
            rows = [
                _row_from_json(line)
                for line in text.splitlines()
                if line.strip()
            ]
        except (OSError, ValueError, KeyError, TypeError):
            probes.count("store.miss")
            return None
        if len(rows) != manifest.rows or len(rows) != shard.trials:
            probes.count("store.miss")
            return None
        probes.count("store.hit")
        # JSON rows are ASCII, so the character count is the byte count.
        probes.count("store.bytes_read", len(text))
        return rows

    def put(
        self,
        shard: ShardSpec,
        outcomes: List[TrialOutcome],
        elapsed_seconds: float = 0.0,
    ) -> ShardManifest:
        """Atomically store a shard's rows, then its manifest."""
        if len(outcomes) != shard.trials:
            raise ValueError(
                f"shard covers {shard.trials} trials but got "
                f"{len(outcomes)} outcomes"
            )
        from repro import __version__

        rows_text = "".join(_row_to_json(o) + "\n" for o in outcomes)
        self._atomic_write(self.rows_path(shard), rows_text)
        probes.count("store.puts")
        probes.count("store.bytes_written", len(rows_text))
        manifest = ShardManifest(
            content_hash=shard.content_hash(),
            store_format=STORE_FORMAT_VERSION,
            code_version=__version__,
            rows=len(outcomes),
            elapsed_seconds=float(elapsed_seconds),
            created=time.time(),
            shard=shard.to_dict(),
        )
        self._atomic_write(
            self.manifest_path(shard),
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True),
        )
        return manifest

    def get_or_run(
        self,
        shard: ShardSpec,
        runner: Callable[[ShardSpec], List[TrialOutcome]],
    ) -> Tuple[List[TrialOutcome], bool]:
        """Rows for the shard, resuming from disk when possible.

        Returns ``(rows, from_cache)``; on a miss ``runner`` executes the
        shard and its rows are stored before returning.
        """
        cached = self.get(shard)
        if cached is not None:
            return cached, True
        start = time.perf_counter()
        rows = runner(shard)
        self.put(shard, rows, elapsed_seconds=time.perf_counter() - start)
        return rows, False
