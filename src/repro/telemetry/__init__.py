"""Telemetry fabric: zero-cost probes, a per-run ledger, and stats queries.

- :mod:`repro.telemetry.probes` — the probe API (context-manager spans,
  monotonic counters, gauges, annotations).  No-op unless a collector is
  installed; never draws randomness or alters engine behaviour.
- :mod:`repro.telemetry.ledger` — per-run JSONL event ledgers keyed by
  the sweep store's sha256 content hashes, with damage-tolerant readers.
- :mod:`repro.telemetry.stats` — the ``repro stats`` queries: per-run
  summaries, cache hit-rates, slowest shards, bench-floor drift.

See ``docs/observability.md`` for the full walkthrough.
"""

from repro.telemetry.ledger import (
    LEDGER_FORMAT_VERSION,
    RunLedger,
    RunSummary,
    read_events,
    record_run,
    run_versions,
    summarize_run,
)
from repro.telemetry.probes import (
    Collector,
    annotate,
    capture,
    collector,
    count,
    enabled,
    gauge,
    span,
    span_event,
)
from repro.telemetry.stats import (
    BenchDrift,
    bench_drift,
    format_stats,
    load_runs,
    stats_payload,
)

__all__ = [
    "LEDGER_FORMAT_VERSION",
    "RunLedger",
    "RunSummary",
    "read_events",
    "record_run",
    "run_versions",
    "summarize_run",
    "Collector",
    "annotate",
    "capture",
    "collector",
    "count",
    "enabled",
    "gauge",
    "span",
    "span_event",
    "BenchDrift",
    "bench_drift",
    "format_stats",
    "load_runs",
    "stats_payload",
]
