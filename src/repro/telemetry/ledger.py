"""The per-run telemetry ledger: structured JSONL on disk.

One run — one ``repro`` command, one orchestrated sweep, one benchmark —
is one ``run-<id>.jsonl`` file under a ledger root.  The first line is a
``run`` header (command, argv, code/python/numpy versions, start time);
then the probe event stream (:mod:`repro.telemetry.probes`) as it
happens; the last line is an ``end`` record with total elapsed seconds
and the per-phase span totals.  Spec hashes — the same sha256
content hashes the sweep store keys on — arrive as ``annotation`` events
named ``"sweep.shard"`` / ``"sweep.spec"`` and tie ledger rows to cached
results.

Events are appended line-buffered, so a crashed run leaves a readable
ledger with a possibly truncated tail.  Like the result store, readers
treat damage as data loss, not failure: :func:`read_events` skips
unparsable lines (the torn tail of a crashed writer) and keeps
everything before and after them.

The queries over a ledger directory live in
:mod:`repro.telemetry.stats` (the ``repro stats`` command).
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.telemetry.probes import Collector, Event, capture

PathLike = Union[str, Path]

#: Bump when the ledger line schema changes (readers check the header).
LEDGER_FORMAT_VERSION = 1


def run_versions() -> Dict[str, str]:
    """The code/runtime versions recorded in every run header.

    Also the provenance block of the paper pipeline's HTML report, so
    the ledger and the report agree on what "version" means.
    """
    from repro import __version__

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


# Backwards-compatible private alias (pre-paper-pipeline name).
_versions = run_versions


class RunLedger:
    """Appends one run's event stream to ``<root>/run-<id>.jsonl``.

    The ledger is itself a probe *sink*: pass ``ledger.write`` to a
    :class:`~repro.telemetry.probes.Collector` (or use
    :func:`record_run`, which wires everything).
    """

    def __init__(
        self,
        root: PathLike,
        command: str,
        argv: Optional[Sequence[str]] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        if run_id is None:
            # Wall-clock prefix keeps listings chronological; the pid
            # suffix keeps concurrent runs from colliding.
            run_id = f"{time.time_ns():016x}-{os.getpid()}"
        self.run_id = run_id
        self.path = self._root / f"run-{run_id}.jsonl"
        self._started = time.perf_counter()
        self._handle = self.path.open("a", encoding="utf-8", buffering=1)
        self.write(
            {
                "event": "run",
                "ledger_format": LEDGER_FORMAT_VERSION,
                "run_id": run_id,
                "command": command,
                "argv": list(argv) if argv is not None else [],
                "versions": _versions(),
                "started": time.time(),
            }
        )

    def write(self, event: Event) -> None:
        """Append one event as a compact JSON line (a probe sink)."""
        if self._handle.closed:  # pragma: no cover - defensive
            return
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def close(
        self,
        status: str = "ok",
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Write the ``end`` record and release the file handle."""
        if self._handle.closed:
            return
        self.write(
            {
                "event": "end",
                "status": status,
                "elapsed_seconds": time.perf_counter() - self._started,
                "phases": phases or {},
            }
        )
        self._handle.close()


@contextmanager
def record_run(
    root: PathLike,
    command: str,
    argv: Optional[Sequence[str]] = None,
    collector: Optional[Collector] = None,
) -> Iterator[Collector]:
    """Capture probes into a fresh per-run ledger file.

    Installs a collector (creating one if needed), attaches the ledger as
    a sink, and on exit writes the ``end`` record — ``status="error"``
    when the block raised — with the collector's span totals as the
    elapsed-phases map.
    """
    ledger = RunLedger(root, command, argv=argv)
    with capture(collector) as active:
        active.add_sink(ledger.write)
        try:
            yield active
        except BaseException:
            ledger.close(status="error", phases=active.span_totals())
            raise
        ledger.close(status="ok", phases=active.span_totals())


def read_events(path: PathLike) -> List[Event]:
    """All parseable events of one ledger file, in order.

    Unparsable lines — the torn tail of a crashed or still-running
    writer, or plain corruption — are skipped, mirroring the result
    store's treat-damage-as-miss discipline.  A missing file reads as an
    empty event list.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    events: List[Event] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict) and "event" in event:
            events.append(event)
    return events


@dataclass
class RunSummary:
    """One ledger file, aggregated for reporting."""

    path: Path
    run_id: str = ""
    command: str = ""
    argv: List[str] = field(default_factory=list)
    versions: Dict[str, str] = field(default_factory=dict)
    started: float = 0.0
    status: str = "incomplete"
    elapsed_seconds: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: per span name: (count, total seconds, max seconds)
    spans: Dict[str, Tuple[int, float, float]] = field(default_factory=dict)
    #: every "sweep.shard" span with its attrs, for slowest-shard queries
    shard_spans: List[Dict[str, Any]] = field(default_factory=list)
    #: distinct shard/spec content hashes seen in annotations and spans
    spec_hashes: List[str] = field(default_factory=list)
    #: every "sweep.shard.failed" annotation's attrs (shards that kept
    #: raising after all retries), in ledger order
    failed_shards: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cache_hits(self) -> float:
        """Sweep-level cache hits recorded by the orchestrator."""
        return self.counters.get("sweep.cache.hit", 0.0)

    @property
    def cache_misses(self) -> float:
        """Sweep-level cache misses recorded by the orchestrator."""
        return self.counters.get("sweep.cache.miss", 0.0)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Hit fraction over all shard lookups, ``None`` without lookups."""
        total = self.cache_hits + self.cache_misses
        if total <= 0:
            return None
        return self.cache_hits / total

    def slowest_shards(self, limit: int = 3) -> List[Dict[str, Any]]:
        """The executed shards with the largest wall time, slowest first."""
        executed = [
            shard for shard in self.shard_spans
            if not shard.get("cached", False)
        ]
        executed.sort(key=lambda shard: -float(shard.get("seconds", 0.0)))
        return executed[:limit]


def summarize_run(path: PathLike) -> RunSummary:
    """Aggregate one ledger file into a :class:`RunSummary`."""
    summary = RunSummary(path=Path(path))
    for event in read_events(path):
        kind = event.get("event")
        try:
            if kind == "run":
                summary.run_id = str(event.get("run_id", ""))
                summary.command = str(event.get("command", ""))
                summary.argv = [str(a) for a in event.get("argv", [])]
                summary.versions = dict(event.get("versions", {}))
                summary.started = float(event.get("started", 0.0))
            elif kind == "end":
                summary.status = str(event.get("status", "ok"))
                summary.elapsed_seconds = float(
                    event.get("elapsed_seconds", 0.0)
                )
                summary.phases = {
                    str(k): float(v)
                    for k, v in event.get("phases", {}).items()
                }
            elif kind == "counter":
                name = str(event["name"])
                summary.counters[name] = (
                    summary.counters.get(name, 0.0) + float(event["value"])
                )
            elif kind == "gauge":
                summary.gauges[str(event["name"])] = float(event["value"])
            elif kind == "span":
                name = str(event["name"])
                seconds = float(event["seconds"])
                n, total, worst = summary.spans.get(name, (0, 0.0, 0.0))
                summary.spans[name] = (
                    n + 1, total + seconds, max(worst, seconds)
                )
                if name == "sweep.shard":
                    attrs = dict(event.get("attrs", {}))
                    attrs["seconds"] = seconds
                    summary.shard_spans.append(attrs)
                    digest = attrs.get("content_hash")
                    if digest and digest not in summary.spec_hashes:
                        summary.spec_hashes.append(str(digest))
            elif kind == "annotation":
                attrs = event.get("attrs", {})
                digest = attrs.get("content_hash")
                if digest and digest not in summary.spec_hashes:
                    summary.spec_hashes.append(str(digest))
                if event.get("name") == "sweep.shard.failed":
                    summary.failed_shards.append(dict(attrs))
        except (KeyError, TypeError, ValueError):
            # A malformed-but-parseable line loses itself, not the run.
            continue
    return summary
