"""Zero-cost instrumentation probes.

The probe functions — :func:`span`, :func:`count`, :func:`gauge`,
:func:`annotate` — are sprinkled through the hot layers (engines, sweep
store, orchestrator, CLI).  By default no collector is installed and every
probe is a no-op costing one module-global ``is None`` check; code that
would pay to *compute* a telemetry value first asks :func:`enabled` and
skips the computation entirely.  Installing a :class:`Collector` (usually
via :func:`capture`) turns the probes into structured event emitters.

Hard contract — telemetry is **out of band**: probes never draw
randomness, never touch engine state, and never change control flow, so
runs are bit-identical whether probes are on or off
(``tests/telemetry/test_transparency.py`` enforces this across every
engine).

Event shape
-----------
Every probe call becomes one JSON-safe dict:

- ``{"event": "span", "name": ..., "seconds": ..., "attrs": {...}}``
- ``{"event": "counter", "name": ..., "value": ..., "attrs": {...}}``
- ``{"event": "gauge", "name": ..., "value": ..., "attrs": {...}}``
- ``{"event": "annotation", "name": ..., "attrs": {...}}``

The collector aggregates counters/gauges in memory and forwards every
event to its sinks (a :class:`~repro.telemetry.ledger.RunLedger`, a CLI
progress printer, a test list — anything callable).

Worker processes: probes fired inside a ``ProcessPoolExecutor`` worker
land in that worker's (usually absent) collector, not the parent's.  The
orchestrator therefore re-emits per-shard spans in the parent from the
timings the workers return, so sweep telemetry is complete at any job
count; per-round engine telemetry is only captured for inline execution
(``jobs=1``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Event = Dict[str, Any]
Sink = Callable[[Event], None]

#: The installed collector; ``None`` means telemetry is off (the default).
_collector: Optional["Collector"] = None


class Collector:
    """Aggregates probe events and forwards them to sinks.

    ``counters`` accumulate (monotonic adds), ``gauges`` keep the last
    value, ``spans`` keep per-name ``(count, total_seconds, max_seconds)``
    aggregates; the raw event stream goes to every sink in order.
    """

    def __init__(self, sinks: Tuple[Sink, ...] = ()) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.spans: Dict[str, Tuple[int, float, float]] = {}
        self._sinks: List[Sink] = list(sinks)

    def add_sink(self, sink: Sink) -> None:
        """Forward all future events to ``sink`` as well."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        """Stop forwarding events to ``sink`` (no-op if absent).

        Lets a scoped observer (e.g. the paper pipeline watching one
        experiment's shard stream) attach to an *externally installed*
        collector — a ``--telemetry`` run ledger — without hijacking or
        replacing it.
        """
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event: Event) -> None:
        """Record one event and forward it to every sink."""
        kind = event["event"]
        if kind == "counter":
            name = event["name"]
            self.counters[name] = self.counters.get(name, 0.0) + event["value"]
        elif kind == "gauge":
            self.gauges[event["name"]] = event["value"]
        elif kind == "span":
            name = event["name"]
            seconds = event["seconds"]
            n, total, worst = self.spans.get(name, (0, 0.0, 0.0))
            self.spans[name] = (n + 1, total + seconds, max(worst, seconds))
        for sink in self._sinks:
            sink(event)

    def span_totals(self) -> Dict[str, float]:
        """Total seconds per span name (the "elapsed phases" view)."""
        return {name: total for name, (_, total, _) in self.spans.items()}


class _NullSpan:
    """The shared do-nothing context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures wall time, emits one event on exit."""

    __slots__ = ("_collector", "_name", "_attrs", "_start")

    def __init__(self, collector: Collector, name: str, attrs: Dict[str, Any]):
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> bool:
        self._collector.emit(
            {
                "event": "span",
                "name": self._name,
                "seconds": time.perf_counter() - self._start,
                "attrs": self._attrs,
            }
        )
        return False


def enabled() -> bool:
    """Whether a collector is installed.

    Guard any *computation* done only to feed a probe with this, so the
    disabled path stays free of even the arithmetic.
    """
    return _collector is not None


def collector() -> Optional[Collector]:
    """The installed collector, or ``None``."""
    return _collector


def span(name: str, **attrs: Any):
    """Context manager timing a block; no-op when telemetry is off."""
    if _collector is None:
        return _NULL_SPAN
    return _Span(_collector, name, attrs)


def span_event(name: str, seconds: float, **attrs: Any) -> None:
    """Record an already-measured duration as a span event.

    Used where the timing happened elsewhere (e.g. inside a worker
    process) and only the number crossed back.
    """
    if _collector is None:
        return
    _collector.emit(
        {"event": "span", "name": name, "seconds": float(seconds),
         "attrs": attrs}
    )


def count(name: str, value: float = 1, **attrs: Any) -> None:
    """Add ``value`` to a monotonic counter; no-op when telemetry is off."""
    if _collector is None:
        return
    _collector.emit(
        {"event": "counter", "name": name, "value": value, "attrs": attrs}
    )


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Set a gauge to ``value``; no-op when telemetry is off."""
    if _collector is None:
        return
    _collector.emit(
        {"event": "gauge", "name": name, "value": value, "attrs": attrs}
    )


def annotate(name: str, **attrs: Any) -> None:
    """Record a structured annotation (string-valued facts, e.g. hashes)."""
    if _collector is None:
        return
    _collector.emit({"event": "annotation", "name": name, "attrs": attrs})


@contextmanager
def capture(
    target: Optional[Collector] = None,
) -> Iterator[Collector]:
    """Install a collector for the duration of the ``with`` block.

    Nested captures stack: the previous collector (possibly ``None``) is
    restored on exit, even on error.  Returns the active collector so
    callers can attach sinks or read aggregates afterwards.
    """
    global _collector
    previous = _collector
    active = target if target is not None else Collector()
    _collector = active
    try:
        yield active
    finally:
        _collector = previous
