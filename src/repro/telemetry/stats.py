"""Queries over a telemetry ledger directory — the ``repro stats`` engine.

Three report sections, each with a table renderer and a JSON-safe dict
form (``repro stats --json``):

- **runs** — one row per ledger file: command, status, elapsed seconds,
  shard counts, cache hit-rate.
- **per-run detail** (``--run``/latest): elapsed phases, counters,
  gauges, and the slowest executed shards with their spec hashes.
- **bench floors** — the committed ``BENCH_*.json`` records next to the
  ledger: measured speedup vs the CI-enforced floor, and the drift
  (headroom) between them.  A benchmark drifting toward its floor is the
  early warning the floors themselves only give at the cliff edge.
- **paper runs** (``--rundb DIR``) — the paper pipeline's persistent run
  database (:mod:`repro.sweep.rundb`): one row per regenerated
  experiment with its spec hash, shard cache hit-rate, and the drift
  verdict recorded at run time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.ledger import RunSummary, summarize_run

PathLike = Union[str, Path]


def ledger_paths(root: PathLike) -> List[Path]:
    """Every run ledger under ``root``, oldest first.

    Run ids start with a zero-padded hex timestamp, so lexicographic
    filename order is chronological order.
    """
    directory = Path(root)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("run-*.jsonl"))


def load_runs(root: PathLike) -> List[RunSummary]:
    """Summaries of every ledger run under ``root``, oldest first."""
    return [summarize_run(path) for path in ledger_paths(root)]


@dataclass(frozen=True)
class BenchDrift:
    """One committed benchmark record vs its CI floor."""

    name: str
    speedup: Optional[float]
    floor: Optional[float]

    @property
    def headroom(self) -> Optional[float]:
        """``speedup / floor`` — drift toward 1.0 means trouble brewing."""
        if self.speedup is None or not self.floor:
            return None
        return self.speedup / self.floor

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "name": self.name,
            "speedup": self.speedup,
            "floor": self.floor,
            "headroom": self.headroom,
        }


def bench_drift(bench_dir: PathLike) -> List[BenchDrift]:
    """Parse every ``BENCH_*.json`` under ``bench_dir`` into drift rows.

    Records without a ``speedup`` result or a ``floor`` still appear
    (with ``None`` fields) so the report shows the full trajectory;
    unreadable files are skipped.
    """
    rows: List[BenchDrift] = []
    directory = Path(bench_dir)
    if not directory.is_dir():
        return rows
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        results = payload.get("results", {})
        speedup = results.get("speedup")
        rows.append(
            BenchDrift(
                name=str(payload.get("bench", path.stem)),
                speedup=float(speedup) if speedup is not None else None,
                floor=(
                    float(payload["floor"])
                    if payload.get("floor") is not None
                    else None
                ),
            )
        )
    return rows


def _format_rate(rate: Optional[float]) -> str:
    return "-" if rate is None else f"{100.0 * rate:.0f}%"


def rundb_table(records: List[Any]) -> str:
    """The paper-pipeline run table (:class:`repro.sweep.rundb.RunRecord`).

    Oldest first, like the append-only log itself; the run id groups the
    rows of one ``repro paper`` invocation.
    """
    from repro.experiments.tables import format_table

    rows = []
    for record in records:
        rows.append(
            [
                record.run_id[:12],
                record.experiment,
                record.spec_hash[:12],
                str(record.trials),
                f"{record.shards_executed}",
                f"{record.shards_cached}",
                _format_rate(record.cache_hit_rate),
                record.drift,
            ]
        )
    return format_table(
        ["run", "experiment", "spec", "trials", "shards run", "cached",
         "hit-rate", "drift"],
        rows,
    )


def runs_table(runs: List[RunSummary]) -> str:
    """The per-run summary table (newest last, like the directory)."""
    from repro.experiments.tables import format_table

    rows = []
    for run in runs:
        executed = run.counters.get("sweep.cache.miss", 0.0)
        cached = run.counters.get("sweep.cache.hit", 0.0)
        rows.append(
            [
                run.run_id[:12] or run.path.stem,
                run.command or "?",
                run.status,
                f"{run.elapsed_seconds:.3f}",
                f"{int(executed)}",
                f"{int(cached)}",
                _format_rate(run.cache_hit_rate),
            ]
        )
    return format_table(
        ["run", "command", "status", "seconds", "shards run", "cached",
         "hit-rate"],
        rows,
    )


def run_detail(run: RunSummary, slowest: int = 5) -> str:
    """The drill-down report for one run."""
    from repro.experiments.tables import format_table

    lines = [
        f"run {run.run_id} command={run.command or '?'} "
        f"status={run.status} elapsed={run.elapsed_seconds:.3f}s",
        "versions: "
        + " ".join(f"{k}={v}" for k, v in sorted(run.versions.items())),
    ]
    if run.phases:
        lines.append("phases:")
        for name, seconds in sorted(
            run.phases.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {name}: {seconds:.3f}s")
    if run.counters:
        lines.append("counters:")
        for name, value in sorted(run.counters.items()):
            lines.append(f"  {name}: {value:g}")
    if run.gauges:
        lines.append("gauges:")
        for name, value in sorted(run.gauges.items()):
            lines.append(f"  {name}: {value:g}")
    if run.failed_shards:
        lines.append("failed shards (exhausted retries):")
        for shard in run.failed_shards:
            lines.append(
                f"  {shard.get('algorithm', '?')}"
                f"[n={shard.get('n', '?')} "
                f"{shard.get('lo', '?')}:{shard.get('hi', '?')}] "
                f"{shard.get('error', '?')}"
            )
    shards = run.slowest_shards(slowest)
    if shards:
        lines.append("slowest shards:")
        lines.append(
            format_table(
                ["algorithm", "n", "window", "seconds", "hash"],
                [
                    [
                        str(shard.get("algorithm", "?")),
                        str(shard.get("n", "?")),
                        f"[{shard.get('lo', '?')}, {shard.get('hi', '?')})",
                        f"{float(shard.get('seconds', 0.0)):.3f}",
                        str(shard.get("content_hash", ""))[:12],
                    ]
                    for shard in shards
                ],
            )
        )
    return "\n".join(lines)


def bench_table(rows: List[BenchDrift]) -> str:
    """The bench-floor drift table."""
    from repro.experiments.tables import format_table

    def fmt(value: Optional[float], suffix: str = "") -> str:
        return "-" if value is None else f"{value:.2f}{suffix}"

    return format_table(
        ["bench", "speedup", "floor", "headroom"],
        [
            [row.name, fmt(row.speedup, "x"), fmt(row.floor, "x"),
             fmt(row.headroom)]
            for row in rows
        ],
    )


def stats_payload(
    root: Optional[PathLike],
    bench_dir: Optional[PathLike] = None,
    run_id: Optional[str] = None,
    slowest: int = 5,
    rundb_dir: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """The machine-readable ``repro stats --json`` document.

    ``root=None`` skips the ledger sections (a ``--rundb``-only query).
    """
    runs = load_runs(root) if root is not None else []
    selected = _select_run(runs, run_id)
    payload: Dict[str, Any] = {
        "ledger": str(Path(root)) if root is not None else None,
        "runs": [
            {
                "run_id": run.run_id,
                "command": run.command,
                "status": run.status,
                "elapsed_seconds": run.elapsed_seconds,
                "cache_hits": run.cache_hits,
                "cache_misses": run.cache_misses,
                "cache_hit_rate": run.cache_hit_rate,
                "counters": run.counters,
                "gauges": run.gauges,
                "phases": run.phases,
                "versions": run.versions,
                "failed_shards": run.failed_shards,
            }
            for run in runs
        ],
        "benches": [
            row.to_dict()
            for row in bench_drift(bench_dir if bench_dir is not None else ".")
        ],
    }
    if selected is not None:
        payload["run_detail"] = {
            "run_id": selected.run_id,
            "command": selected.command,
            "spec_hashes": selected.spec_hashes,
            "slowest_shards": selected.slowest_shards(slowest),
        }
    if rundb_dir is not None:
        from repro.sweep.rundb import RunDB

        db = RunDB(rundb_dir)
        payload["paper_runs"] = [r.to_dict() for r in db.records()]
        payload["paper_index"] = db.index()
    return payload


def _select_run(
    runs: List[RunSummary], run_id: Optional[str]
) -> Optional[RunSummary]:
    """The requested run (prefix match), else the newest, else ``None``."""
    if run_id is not None:
        for run in runs:
            if run.run_id.startswith(run_id):
                return run
        raise SystemExit(f"no ledger run matches id {run_id!r}")
    return runs[-1] if runs else None


def format_stats(
    root: Optional[PathLike],
    bench_dir: Optional[PathLike] = None,
    run_id: Optional[str] = None,
    slowest: int = 5,
    rundb_dir: Optional[PathLike] = None,
) -> str:
    """The human-readable ``repro stats`` report.

    ``root=None`` skips the ledger sections (a ``--rundb``-only query).
    """
    runs = load_runs(root) if root is not None else []
    sections: List[str] = []
    if root is None:
        pass
    elif not runs:
        sections.append(f"no ledger runs under {Path(root)}")
    else:
        sections.append(f"ledger: {Path(root)} ({len(runs)} runs)")
        sections.append(runs_table(runs))
        selected = _select_run(runs, run_id)
        if selected is not None:
            sections.append(run_detail(selected, slowest=slowest))
    drift = bench_drift(bench_dir if bench_dir is not None else ".")
    if drift:
        sections.append("bench floors (committed BENCH_*.json):")
        sections.append(bench_table(drift))
    if rundb_dir is not None:
        from repro.sweep.rundb import RunDB

        records = RunDB(rundb_dir).records()
        if records:
            sections.append(
                f"paper runs ({Path(rundb_dir)}, {len(records)} records):"
            )
            sections.append(rundb_table(records))
        else:
            sections.append(f"no paper runs under {Path(rundb_dir)}")
    return "\n\n".join(sections)
