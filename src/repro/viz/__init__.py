"""Terminal visualisation: ASCII plots and graph rendering.

The environment has no display and no plotting package, so the figures are
reproduced as data series rendered to the terminal.  The plots deliberately
mimic the layout of the paper's figures (x = number of nodes, one glyph per
series, reference curves included).
"""

from repro.viz.animation import render_animation, render_frame
from repro.viz.ascii_plots import AsciiPlot, plot_experiment, plot_series
from repro.viz.graph_render import render_adjacency, render_grid_mis, render_mis_listing
from repro.viz.histogram import ascii_histogram, bin_values
from repro.viz.svg_plots import svg_line_plot

__all__ = [
    "AsciiPlot",
    "ascii_histogram",
    "bin_values",
    "plot_experiment",
    "plot_series",
    "render_adjacency",
    "render_animation",
    "render_frame",
    "render_grid_mis",
    "render_mis_listing",
    "svg_line_plot",
]
