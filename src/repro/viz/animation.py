"""Round-by-round text animation of a traced run.

Renders a recorded :class:`~repro.beeping.events.Trace` as a sequence of
text frames — one per round — showing each vertex's status:

- ``!`` beeped this round
- ``*`` joined the MIS this round
- ``x`` retired this round
- ``.`` active and silent
- ``#`` already in the MIS
- `` `` (backtick) already retired

For grid-shaped graphs the frames are laid out as the grid; otherwise as a
fixed-width strip.  Useful for demos and for eyeballing pathological runs.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.beeping.events import Trace

GLYPH_BEEP = "!"
GLYPH_JOIN = "*"
GLYPH_RETIRE = "x"
GLYPH_ACTIVE = "."
GLYPH_IN_MIS = "#"
GLYPH_GONE = "`"


def _frame_glyphs(
    trace: Trace, round_index: int, num_vertices: int
) -> List[str]:
    in_mis: Set[int] = set()
    gone: Set[int] = set()
    for event in trace.rounds[:round_index]:
        in_mis |= event.joined
        gone |= event.retired | event.crashed
    event = trace.rounds[round_index]
    glyphs = []
    for v in range(num_vertices):
        if v in in_mis:
            glyphs.append(GLYPH_IN_MIS)
        elif v in gone:
            glyphs.append(GLYPH_GONE)
        elif v in event.joined:
            glyphs.append(GLYPH_JOIN)
        elif v in event.retired:
            glyphs.append(GLYPH_RETIRE)
        elif v in event.beepers:
            glyphs.append(GLYPH_BEEP)
        else:
            glyphs.append(GLYPH_ACTIVE)
    return glyphs


def render_frame(
    trace: Trace,
    round_index: int,
    num_vertices: int,
    columns: Optional[int] = None,
) -> str:
    """One round as a text frame (``columns`` defaults to ~square)."""
    if not 0 <= round_index < trace.num_rounds:
        raise ValueError(
            f"round_index must be in [0, {trace.num_rounds}), "
            f"got {round_index}"
        )
    glyphs = _frame_glyphs(trace, round_index, num_vertices)
    if columns is None:
        columns = max(1, int(num_vertices ** 0.5 + 0.999))
    lines = [
        " ".join(glyphs[row:row + columns])
        for row in range(0, num_vertices, columns)
    ]
    event = trace.rounds[round_index]
    header = (
        f"round {round_index}: beeps={len(event.beepers)} "
        f"joins={len(event.joined)} retire={len(event.retired)}"
    )
    return header + "\n" + "\n".join(lines)


def render_animation(
    trace: Trace,
    num_vertices: int,
    columns: Optional[int] = None,
    max_frames: Optional[int] = None,
) -> str:
    """All rounds as consecutive frames separated by blank lines."""
    count = trace.num_rounds
    if max_frames is not None:
        count = min(count, max_frames)
    frames = [
        render_frame(trace, t, num_vertices, columns) for t in range(count)
    ]
    legend = (
        f"legend: {GLYPH_BEEP}=beep {GLYPH_JOIN}=join {GLYPH_RETIRE}=retire "
        f"{GLYPH_ACTIVE}=active {GLYPH_IN_MIS}=in MIS {GLYPH_GONE}=retired"
    )
    return legend + "\n\n" + "\n\n".join(frames)
