"""ASCII scatter/line plots for the terminal.

A small, dependency-free plotter: series of (x, y) points mapped onto a
character canvas with axis labels and a legend.  Good enough to eyeball
the log-vs-log² separation of Figure 3 in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.records import ExperimentResult

_GLYPHS = "ox+*#@%&"


class AsciiPlot:
    """A character canvas with data-space coordinates."""

    def __init__(
        self,
        width: int = 72,
        height: int = 20,
        x_label: str = "x",
        y_label: str = "y",
    ) -> None:
        if width < 16 or height < 6:
            raise ValueError("canvas too small: need width >= 16, height >= 6")
        self._width = width
        self._height = height
        self._x_label = x_label
        self._y_label = y_label
        self._series: List[Tuple[str, List[Tuple[float, float]]]] = []

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> None:
        """Add one named series of points."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        points = [(float(x), float(y)) for x, y in zip(xs, ys)]
        self._series.append((name, points))

    def render(self) -> str:
        """Render the canvas with axes and legend."""
        all_points = [p for _name, pts in self._series for p in pts]
        if not all_points:
            raise ValueError("nothing to plot: add at least one point")
        xs = [p[0] for p in all_points]
        ys = [p[1] for p in all_points]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        grid = [[" "] * self._width for _ in range(self._height)]

        def to_canvas(x: float, y: float) -> Tuple[int, int]:
            col = round((x - x_min) / (x_max - x_min) * (self._width - 1))
            row = round((y - y_min) / (y_max - y_min) * (self._height - 1))
            return (self._height - 1 - row, col)

        for index, (_name, points) in enumerate(self._series):
            glyph = _GLYPHS[index % len(_GLYPHS)]
            for x, y in points:
                row, col = to_canvas(x, y)
                grid[row][col] = glyph

        y_axis_width = max(
            len(f"{y_max:.4g}"), len(f"{y_min:.4g}"), len(self._y_label)
        )
        lines: List[str] = []
        lines.append(f"{self._y_label.rjust(y_axis_width)}")
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = f"{y_max:.4g}".rjust(y_axis_width)
            elif row_index == self._height - 1:
                label = f"{y_min:.4g}".rjust(y_axis_width)
            else:
                label = " " * y_axis_width
            lines.append(f"{label} |{''.join(row)}")
        x_axis = " " * y_axis_width + " +" + "-" * self._width
        lines.append(x_axis)
        left = f"{x_min:.4g}"
        right = f"{x_max:.4g}"
        padding = self._width - len(left) - len(right)
        lines.append(
            " " * (y_axis_width + 2) + left + " " * max(padding, 1) + right
        )
        lines.append(" " * (y_axis_width + 2) + self._x_label)
        legend = "  ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]}={name}"
            for i, (name, _pts) in enumerate(self._series)
        )
        lines.append("legend: " + legend)
        return "\n".join(lines)


def plot_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    x_label: str = "n",
    y_label: str = "y",
) -> str:
    """Plot a mapping of ``name -> (xs, ys)``."""
    plot = AsciiPlot(width=width, height=height, x_label=x_label, y_label=y_label)
    for name, (xs, ys) in series.items():
        plot.add_series(name, xs, ys)
    return plot.render()


def plot_experiment(
    result: ExperimentResult,
    width: int = 72,
    height: int = 20,
    y_label: str = "mean",
    x_label: str = "n",
) -> str:
    """Plot every series of an :class:`ExperimentResult` (means only)."""
    plot = AsciiPlot(
        width=width, height=height, x_label=x_label, y_label=y_label
    )
    for name in result.series_names():
        plot.add_series(name, result.xs(name), result.means(name))
    return plot.render()
