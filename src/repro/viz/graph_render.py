"""Graph rendering for the terminal.

Three small renderers:

- :func:`render_adjacency` — the adjacency matrix as a character grid
  (readable up to a few dozen vertices);
- :func:`render_grid_mis` — a grid graph with MIS membership marked, the
  closest terminal analogue of Figure 1's node colouring;
- :func:`render_mis_listing` — a vertex-by-vertex listing with MIS and
  coverage annotations.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.graphs.graph import Graph


def render_adjacency(graph: Graph, mis: Iterable[int] = ()) -> str:
    """The adjacency matrix; MIS rows/columns are marked with ``*``.

    ``#`` marks an edge, ``.`` a non-edge.
    """
    mis_set = set(mis)
    n = graph.num_vertices
    header_cells = [
        ("*" if v in mis_set else " ") + str(v % 10) for v in range(n)
    ]
    lines = ["    " + " ".join(header_cells)]
    for u in range(n):
        mark = "*" if u in mis_set else " "
        row = " ".join(
            " #" if graph.has_edge(u, v) else " ." if u != v else "  "
            for v in range(n)
        )
        lines.append(f"{mark}{u:2d}  {row}")
    return "\n".join(lines)


def render_grid_mis(rows: int, cols: int, mis: Iterable[int]) -> str:
    """A ``rows x cols`` grid with ``■`` for MIS cells and ``·`` otherwise.

    Vertex numbering must match :func:`repro.graphs.grid_graph`
    (``v = r * cols + c``).
    """
    mis_set = set(mis)
    lines = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            v = r * cols + c
            cells.append("■" if v in mis_set else "·")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_mis_listing(graph: Graph, mis: Iterable[int]) -> str:
    """One line per vertex: membership, degree and the covering neighbour."""
    mis_set: Set[int] = set(mis)
    lines = []
    for v in graph.vertices():
        if v in mis_set:
            role = "IN MIS"
        else:
            coverers = [w for w in graph.neighbors(v) if w in mis_set]
            role = f"covered by {coverers[0]}" if coverers else "UNCOVERED"
        lines.append(
            f"v{v:<4d} deg={graph.degree(v):<4d} {role}"
        )
    return "\n".join(lines)
