"""ASCII histograms for terminal reports."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bin_values(
    values: Sequence[float], bins: int
) -> List[Tuple[float, float, int]]:
    """Equal-width binning: ``(low, high, count)`` per bin.

    The last bin is closed on both sides so the maximum lands inside it.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot bin an empty sequence")
    low, high = min(values), max(values)
    if low == high:
        return [(low, high, len(values))]
    width = (high - low) / bins
    counts = [0] * bins
    for v in values:
        index = min(int((v - low) / width), bins - 1)
        counts[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, counts[i])
        for i in range(bins)
    ]


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    label: str = "value",
) -> str:
    """A horizontal bar histogram.

    >>> print(ascii_histogram([1, 1, 2], bins=2, width=4))  # doctest: +SKIP
    """
    binned = bin_values(values, bins)
    peak = max(count for _low, _high, count in binned)
    label_width = max(
        len(f"{low:.3g}..{high:.3g}") for low, high, _count in binned
    )
    lines = [f"{label} histogram (n={len(list(values))})"]
    for low, high, count in binned:
        bar_length = 0 if peak == 0 else round(count / peak * width)
        bucket = f"{low:.3g}..{high:.3g}".rjust(label_width)
        lines.append(f"{bucket} | {'#' * bar_length} {count}")
    return "\n".join(lines)
