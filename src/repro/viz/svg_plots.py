"""Deterministic inline-SVG line plots for the HTML paper report.

The environment has no plotting package, so the report draws its figures
as hand-assembled SVG: one polyline (plus circle markers) per series, a
fixed palette, axis frames and value ticks.  Everything is rendered from
the :class:`~repro.experiments.records.ExperimentResult` schema with
fixed-precision coordinate formatting, so the same result always produces
the same bytes — the property the pipeline's warm-rerun byte-identity
check depends on.  All text is escaped; the output embeds directly into
the self-contained HTML report (no external assets).
"""

from __future__ import annotations

import html
from typing import List, Optional, Tuple

from repro.experiments.records import ExperimentResult

#: Fixed series palette (cycled); chosen for contrast on a white panel.
PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic bytes)."""
    return f"{value:.2f}"


def _tick_label(value: float) -> str:
    return f"{value:g}"


def _span(values: List[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi - lo <= 0.0:
        # Degenerate axis (single x, constant series): pad symmetrically
        # around the value so the line sits mid-panel.
        pad = abs(lo) * 0.5 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    step = (hi - lo) / (count - 1)
    return [lo + step * i for i in range(count)]


def svg_line_plot(
    result: ExperimentResult,
    y_label: str = "value",
    x_label: str = "n",
    width: int = 640,
    height: int = 360,
    title: Optional[str] = None,
) -> str:
    """One experiment as a self-contained ``<svg>`` element.

    Series are drawn in first-appearance order with the fixed
    :data:`PALETTE`; a legend lists them top-right.  Points with
    ``trials == 0`` (reference curves) still plot — they are data like
    any other series.  An empty result renders a labelled placeholder
    panel rather than failing.
    """
    margin_left, margin_right = 62.0, 150.0
    margin_top, margin_bottom = 28.0, 46.0
    panel_w = width - margin_left - margin_right
    panel_h = height - margin_top - margin_bottom

    names = result.series_names()
    xs = [p.x for p in result.points]
    ys = [p.mean for p in result.points]

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" class="plot">',
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        f'fill="#ffffff"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_fmt(width / 2.0)}" y="18" text-anchor="middle" '
            f'font-size="13" fill="#333">{html.escape(title)}</text>'
        )
    if not names or not xs:
        parts.append(
            f'<text x="{_fmt(width / 2.0)}" y="{_fmt(height / 2.0)}" '
            f'text-anchor="middle" font-size="13" fill="#888">'
            f'no data</text>'
        )
        parts.append("</svg>")
        return "".join(parts)

    x_lo, x_hi = _span(xs)
    y_lo, y_hi = _span(ys)

    def sx(x: float) -> float:
        return margin_left + (x - x_lo) / (x_hi - x_lo) * panel_w

    def sy(y: float) -> float:
        return margin_top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * panel_h

    # Panel frame and grid ticks.
    parts.append(
        f'<rect x="{_fmt(margin_left)}" y="{_fmt(margin_top)}" '
        f'width="{_fmt(panel_w)}" height="{_fmt(panel_h)}" fill="none" '
        f'stroke="#cccccc" stroke-width="1"/>'
    )
    for tick in _ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(margin_top + panel_h)}" '
            f'x2="{_fmt(x)}" y2="{_fmt(margin_top + panel_h + 5)}" '
            f'stroke="#888888" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(margin_top + panel_h + 18)}" '
            f'text-anchor="middle" font-size="11" fill="#555">'
            f'{html.escape(_tick_label(tick))}</text>'
        )
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{_fmt(margin_left - 5)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(margin_left)}" y2="{_fmt(y)}" '
            f'stroke="#888888" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(margin_left - 8)}" y="{_fmt(y + 4)}" '
            f'text-anchor="end" font-size="11" fill="#555">'
            f'{html.escape(_tick_label(tick))}</text>'
        )
    parts.append(
        f'<text x="{_fmt(margin_left + panel_w / 2.0)}" '
        f'y="{_fmt(height - 8)}" text-anchor="middle" font-size="12" '
        f'fill="#333">{html.escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{_fmt(margin_top + panel_h / 2.0)}" '
        f'text-anchor="middle" font-size="12" fill="#333" '
        f'transform="rotate(-90 16 {_fmt(margin_top + panel_h / 2.0)})">'
        f'{html.escape(y_label)}</text>'
    )

    # Series polylines, markers and legend.
    for index, name in enumerate(names):
        color = PALETTE[index % len(PALETTE)]
        points = result.series(name)
        coords = " ".join(
            f"{_fmt(sx(p.x))},{_fmt(sy(p.mean))}" for p in points
        )
        if len(points) > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        for p in points:
            parts.append(
                f'<circle cx="{_fmt(sx(p.x))}" cy="{_fmt(sy(p.mean))}" '
                f'r="2.5" fill="{color}"/>'
            )
        legend_y = margin_top + 14.0 + 16.0 * index
        legend_x = margin_left + panel_w + 12.0
        parts.append(
            f'<line x1="{_fmt(legend_x)}" y1="{_fmt(legend_y - 4)}" '
            f'x2="{_fmt(legend_x + 18)}" y2="{_fmt(legend_y - 4)}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{_fmt(legend_x + 24)}" y="{_fmt(legend_y)}" '
            f'font-size="11" fill="#333">{html.escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
