"""Tests for the Afek et al. Science-2011 global-schedule baseline."""

from random import Random

import pytest

from repro.algorithms.afek_global import AfekGlobalMIS, global_schedule
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, star_graph


class TestSchedule:
    def test_starts_low(self):
        # D = 32: initial probability 1/(2*32).
        assert global_schedule(0, 100, 32) == pytest.approx(1 / 64)

    def test_doubles_per_phase(self):
        n, d = 64, 16
        phase_length = 12  # ceil(2 * log2(64)) = 12
        assert global_schedule(0, n, d) == pytest.approx(1 / 32)
        assert global_schedule(phase_length, n, d) == pytest.approx(1 / 16)
        assert global_schedule(2 * phase_length, n, d) == pytest.approx(1 / 8)

    def test_capped_at_half(self):
        assert global_schedule(10_000, 100, 8) == 0.5

    def test_constant_within_phase(self):
        values = {global_schedule(t, 100, 32) for t in range(14)}
        assert len(values) == 1

    def test_degenerate_degree(self):
        assert global_schedule(0, 10, 0) == 0.5

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            global_schedule(-1, 10, 4)

    def test_coefficient_scales_phase_length(self):
        short = global_schedule(7, 16, 8, steps_coefficient=1.0)
        long = global_schedule(7, 16, 8, steps_coefficient=10.0)
        assert short > long  # short phases have advanced further by t=7


class TestAlgorithm:
    def test_name(self):
        assert AfekGlobalMIS().name == "afek-global"

    def test_invalid_coefficient(self):
        with pytest.raises(ValueError):
            AfekGlobalMIS(steps_coefficient=0.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_correctness_random(self, seed):
        graph = gnp_random_graph(30, 0.4, Random(seed))
        AfekGlobalMIS().run(graph, Random(seed + 3)).verify()

    def test_complete_graph(self):
        run = AfekGlobalMIS().run(complete_graph(16), Random(9))
        run.verify()
        assert run.mis_size == 1

    def test_star_graph(self):
        AfekGlobalMIS().run(star_graph(12), Random(10)).verify()

    def test_low_beeps_per_node(self):
        """Starting at 1/(2D) keeps beeps rare — the property the paper
        credits to the Science 2011 schedule (Section 5 discussion)."""
        graph = gnp_random_graph(60, 0.5, Random(11))
        run = AfekGlobalMIS().run(graph, Random(12))
        run.verify()
        assert run.mean_beeps_per_node < 1.0
