"""Tests for the Afek et al. sweeping-probability baseline."""

from random import Random

import pytest

from repro.algorithms.afek_sweep import (
    AfekSweepMIS,
    SweepScheduleNode,
    sweep_phase_position,
    sweep_probability,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph


class TestSchedule:
    def test_paper_sequence(self):
        """Section 1 prints the sequence 1, 1/2, 1, 1/2, 1/4, 1, 1/2, ..."""
        expected = [
            1.0, 0.5,                     # phase 1
            1.0, 0.5, 0.25,               # phase 2
            1.0, 0.5, 0.25, 0.125,        # phase 3
            1.0, 0.5, 0.25, 0.125, 0.0625,  # phase 4
        ]
        actual = [sweep_probability(t) for t in range(len(expected))]
        assert actual == expected

    def test_phase_positions(self):
        assert sweep_phase_position(0) == (1, 0)
        assert sweep_phase_position(1) == (1, 1)
        assert sweep_phase_position(2) == (2, 0)
        assert sweep_phase_position(4) == (2, 2)
        assert sweep_phase_position(5) == (3, 0)

    def test_phase_lengths(self):
        """Phase k must contain exactly k + 1 steps."""
        from collections import Counter

        phases = Counter(
            sweep_phase_position(t)[0] for t in range(200)
        )
        for k in range(1, 10):
            assert phases[k] == k + 1

    def test_probability_range(self):
        for t in range(500):
            p = sweep_probability(t)
            assert 0.0 < p <= 1.0

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            sweep_phase_position(-1)

    def test_each_phase_reaches_deeper(self):
        """Phase k's minimum probability is 2^-k."""
        lows = {}
        for t in range(300):
            k, _step = sweep_phase_position(t)
            p = sweep_probability(t)
            lows[k] = min(lows.get(k, 1.0), p)
        fully_covered = [k for k in lows if k < max(lows)]
        assert fully_covered
        for k in fully_covered:
            assert lows[k] == 2.0 ** -k


class TestSweepNode:
    def test_follows_schedule(self):
        node = SweepScheduleNode()
        for t in range(20):
            node.on_round_start(t)
            assert node.beep_probability() == sweep_probability(t)

    def test_observation_ignored(self):
        node = SweepScheduleNode()
        node.on_round_start(3)
        before = node.beep_probability()
        node.observe_first_exchange(True, True)
        assert node.beep_probability() == before


class TestAlgorithm:
    def test_name(self):
        assert AfekSweepMIS().name == "afek-sweep"

    @pytest.mark.parametrize("seed", range(5))
    def test_correctness_random(self, seed):
        graph = gnp_random_graph(30, 0.4, Random(seed))
        AfekSweepMIS().run(graph, Random(seed + 7)).verify()

    def test_complete_graph(self):
        run = AfekSweepMIS().run(complete_graph(16), Random(8))
        run.verify()
        assert run.mis_size == 1

    def test_slower_than_feedback_on_average(self, random50):
        """The paper's headline comparison, at small scale."""
        from repro.algorithms.feedback import FeedbackMIS

        trials = 10
        sweep_total = sum(
            AfekSweepMIS().run(random50, Random(t)).rounds
            for t in range(trials)
        )
        feedback_total = sum(
            FeedbackMIS().run(random50, Random(t)).rounds
            for t in range(trials)
        )
        assert sweep_total > feedback_total
