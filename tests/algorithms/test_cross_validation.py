"""Cross-algorithm validation: every algorithm, many graph families, plus
property-based checks and MIS-size sanity comparisons."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.graphs.cliques import theorem1_family
from repro.graphs.random_graphs import (
    gnp_random_graph,
    random_geometric_graph,
    random_tree,
)
from repro.graphs.structured import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    hex_lattice_graph,
    hypercube_graph,
)

ALL_ALGORITHMS = available_algorithms()

FAMILIES = {
    "gnp-dense": lambda: gnp_random_graph(28, 0.6, Random(1)),
    "gnp-sparse": lambda: gnp_random_graph(40, 0.08, Random(2)),
    "tree": lambda: random_tree(30, Random(3)),
    "geometric": lambda: random_geometric_graph(35, 0.25, Random(4)),
    "grid": lambda: grid_graph(6, 6),
    "hex": lambda: hex_lattice_graph(5, 6),
    "hypercube": lambda: hypercube_graph(4),
    "bipartite": lambda: complete_bipartite_graph(5, 8),
    "cycle": lambda: cycle_graph(17),
    "cliques": lambda: theorem1_family(4, copies=2),
}


@pytest.mark.parametrize("algorithm_name", ALL_ALGORITHMS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_algorithm_on_every_family(algorithm_name, family):
    graph = FAMILIES[family]()
    run = make_algorithm(algorithm_name).run(graph, Random(42))
    run.verify()


@pytest.mark.parametrize("algorithm_name", ALL_ALGORITHMS)
def test_mis_size_within_bounds(algorithm_name):
    """Any MIS of a graph with max degree D has size >= n/(D+1) and is no
    larger than the independence number."""
    from repro.algorithms.exact import independence_number

    graph = gnp_random_graph(20, 0.3, Random(5))
    run = make_algorithm(algorithm_name).run(graph, Random(6))
    lower = graph.num_vertices / (graph.max_degree() + 1)
    assert run.mis_size >= lower
    assert run.mis_size <= independence_number(graph)


@pytest.mark.parametrize("algorithm_name", ALL_ALGORITHMS)
def test_disjoint_cliques_pick_one_per_clique(algorithm_name):
    graph = theorem1_family(3)  # cliques of size 1..3, 3 copies each
    run = make_algorithm(algorithm_name).run(graph, Random(7))
    run.verify()
    assert run.mis_size == 9  # exactly one vertex per clique


@given(
    algorithm_name=st.sampled_from(ALL_ALGORITHMS),
    n=st.integers(min_value=1, max_value=16),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_all_algorithms_all_graphs(algorithm_name, n, p, seed):
    graph = gnp_random_graph(n, p, Random(seed))
    run = make_algorithm(algorithm_name).run(
        graph, Random(seed ^ 0xA1607), max_rounds=50_000
    )
    run.verify()


def test_beeping_algorithms_distributions_similar_sizes():
    """The algorithms compute different MISes, but their sizes on G(n, 1/2)
    concentrate: all means must lie within a factor-2 band of each other."""
    graph = gnp_random_graph(60, 0.5, Random(8))
    means = {}
    for name in ("feedback", "afek-sweep", "luby-permutation", "greedy"):
        sizes = [
            make_algorithm(name).run(graph, Random(t)).mis_size
            for t in range(10)
        ]
        means[name] = sum(sizes) / len(sizes)
    low, high = min(means.values()), max(means.values())
    assert high <= 2 * low
