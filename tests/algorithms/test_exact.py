"""Tests for the exact maximum independent set solver."""

from random import Random

import pytest

from repro.algorithms.exact import (
    MAX_EXACT_VERTICES,
    independence_number,
    maximum_independent_set,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, planted_independent_set_graph
from repro.graphs.structured import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graphs.validation import is_independent_set


class TestKnownAnswers:
    def test_empty_graph(self):
        assert maximum_independent_set(empty_graph(5)) == {0, 1, 2, 3, 4}

    def test_complete_graph(self):
        assert independence_number(complete_graph(8)) == 1

    @pytest.mark.parametrize("n,alpha", [(2, 1), (4, 2), (5, 3), (9, 5)])
    def test_paths(self, n, alpha):
        assert independence_number(path_graph(n)) == alpha

    @pytest.mark.parametrize("n,alpha", [(3, 1), (4, 2), (5, 2), (8, 4), (9, 4)])
    def test_cycles(self, n, alpha):
        assert independence_number(cycle_graph(n)) == alpha

    def test_star(self):
        assert independence_number(star_graph(9)) == 9

    def test_complete_bipartite(self):
        assert independence_number(complete_bipartite_graph(4, 7)) == 7

    def test_planted_set_found(self):
        graph = planted_independent_set_graph(24, 9, 0.7, Random(1))
        assert independence_number(graph) >= 9

    def test_petersen_graph(self):
        # The Petersen graph has independence number 4.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        petersen = Graph(10, outer + inner + spokes)
        assert independence_number(petersen) == 4


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_result_is_independent(self, seed):
        graph = gnp_random_graph(18, 0.4, Random(seed))
        result = maximum_independent_set(graph)
        assert is_independent_set(graph, result)

    @pytest.mark.parametrize("seed", range(6))
    def test_at_least_greedy_size(self, seed):
        from repro.algorithms.greedy import greedy_mis

        graph = gnp_random_graph(18, 0.4, Random(seed))
        assert len(maximum_independent_set(graph)) >= len(greedy_mis(graph))

    def test_size_guard(self):
        with pytest.raises(ValueError, match="limited"):
            maximum_independent_set(empty_graph(MAX_EXACT_VERTICES + 1))
