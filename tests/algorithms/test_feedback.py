"""Tests for the feedback algorithm adapter (the paper's algorithm)."""

import math
from random import Random

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.core.variants import heterogeneous_feedback_factory
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, grid_graph, star_graph


class TestBasics:
    def test_name(self):
        assert FeedbackMIS().name == "feedback"

    def test_custom_name_and_factory(self):
        algorithm = FeedbackMIS(
            node_factory=heterogeneous_feedback_factory(seed=1),
            name="feedback-hetero",
        )
        assert algorithm.name == "feedback-hetero"
        run = algorithm.run(complete_graph(6), Random(2))
        run.verify()

    def test_run_reports_beeps(self, random50):
        run = FeedbackMIS().run(random50, Random(3))
        assert run.beeps_by_node is not None
        assert len(run.beeps_by_node) == 50
        assert run.messages == run.bits
        assert run.simulation is not None

    def test_instance_reusable_across_runs(self, random50):
        algorithm = FeedbackMIS()
        a = algorithm.run(random50, Random(4))
        b = algorithm.run(random50, Random(4))
        assert a.mis == b.mis  # stateless across calls


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        graph = gnp_random_graph(35, 0.4, Random(seed))
        FeedbackMIS().run(graph, Random(seed + 100)).verify()

    def test_complete_graph_single_winner(self):
        run = FeedbackMIS().run(complete_graph(12), Random(5))
        run.verify()
        assert run.mis_size == 1

    def test_star_graph(self):
        run = FeedbackMIS().run(star_graph(15), Random(6))
        run.verify()

    def test_grid_graph(self):
        run = FeedbackMIS().run(grid_graph(8, 8), Random(7))
        run.verify()


class TestPerformanceShape:
    """The Theorem 2 / Corollary 5 shape: rounds grow like log n."""

    def test_rounds_logarithmic_on_random_graphs(self):
        trials = 8
        means = {}
        for n in (32, 256):
            total = 0
            for t in range(trials):
                graph = gnp_random_graph(n, 0.5, Random(1000 * n + t))
                run = FeedbackMIS().run(graph, Random(2000 * n + t))
                total += run.rounds
            means[n] = total / trials
        # Paper: ~2.5 log2 n.  Allow a generous band.
        for n, mean_rounds in means.items():
            assert mean_rounds < 8 * math.log2(n)
        # Growth from n=32 to n=256 should be far from linear (8x).
        assert means[256] < 3 * means[32]

    def test_beeps_per_node_bounded(self):
        """Theorem 6: O(1) beeps per node; the paper measures ~1.1."""
        for n in (20, 80, 160):
            graph = gnp_random_graph(n, 0.5, Random(n))
            run = FeedbackMIS().run(graph, Random(n + 1))
            assert run.mean_beeps_per_node < 4.0
