"""Tests for the centralised greedy reference algorithm."""

from random import Random

import pytest

from repro.algorithms.greedy import SequentialGreedyMIS, greedy_mis
from repro.graphs.structured import complete_graph, path_graph, star_graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import is_maximal_independent_set


class TestGreedyFunction:
    def test_default_order(self):
        assert greedy_mis(path_graph(4)) == {0, 2}

    def test_custom_order(self):
        assert greedy_mis(path_graph(4), [1, 3, 0, 2]) == {1, 3}

    def test_star_hub_first(self):
        assert greedy_mis(star_graph(5)) == {0}

    def test_star_leaf_first(self):
        order = [1, 2, 3, 4, 5, 0]
        assert greedy_mis(star_graph(5), order) == {1, 2, 3, 4, 5}

    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            greedy_mis(path_graph(3), [0, 1])
        with pytest.raises(ValueError, match="permutation"):
            greedy_mis(path_graph(3), [0, 1, 1])

    @pytest.mark.parametrize("seed", range(10))
    def test_always_mis(self, seed):
        graph = gnp_random_graph(25, 0.35, Random(seed))
        assert is_maximal_independent_set(graph, greedy_mis(graph))


class TestAlgorithmWrapper:
    def test_names(self):
        assert SequentialGreedyMIS().name == "greedy"
        assert SequentialGreedyMIS(randomize_order=False).name == "greedy-fixed"

    def test_fixed_order_deterministic(self, random50):
        algorithm = SequentialGreedyMIS(randomize_order=False)
        a = algorithm.run(random50, Random(1))
        b = algorithm.run(random50, Random(2))
        assert a.mis == b.mis

    def test_random_order_varies(self, random50):
        algorithm = SequentialGreedyMIS()
        results = {
            frozenset(algorithm.run(random50, Random(seed)).mis)
            for seed in range(10)
        }
        assert len(results) > 1

    def test_reports_one_round(self, random50):
        run = SequentialGreedyMIS().run(random50, Random(3))
        assert run.rounds == 1
        assert run.beeps_by_node is None
        assert run.mean_beeps_per_node == 0.0

    def test_order_in_extra(self, random50):
        run = SequentialGreedyMIS().run(random50, Random(4))
        assert sorted(run.extra["order"]) == list(range(50))

    def test_complete_graph(self):
        run = SequentialGreedyMIS().run(complete_graph(7), Random(5))
        run.verify()
        assert run.mis_size == 1
