"""Tests for the deterministic local-minimum-ID baseline."""

import math
from random import Random

import pytest

from repro.algorithms.feedback import FeedbackMIS
from repro.algorithms.local_minimum import (
    LocalMinimumIDMIS,
    adversarial_path_ids,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, empty_graph, path_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        graph = gnp_random_graph(30, 0.3, Random(seed))
        LocalMinimumIDMIS().run(graph, Random(seed + 5)).verify()

    def test_complete_graph_picks_min_id(self):
        run = LocalMinimumIDMIS(ids=list(range(8))).run(
            complete_graph(8), Random(1)
        )
        assert run.mis == {0}
        assert run.rounds == 1

    def test_empty_graph_one_round(self):
        run = LocalMinimumIDMIS().run(empty_graph(5), Random(2))
        run.verify()
        assert run.rounds == 1

    def test_deterministic_with_fixed_ids(self):
        graph = gnp_random_graph(20, 0.4, Random(3))
        ids = list(range(20))
        a = LocalMinimumIDMIS(ids=ids).run(graph, Random(4))
        b = LocalMinimumIDMIS(ids=ids).run(graph, Random(999))
        assert a.mis == b.mis
        assert a.rounds == b.rounds

    def test_ids_must_be_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            LocalMinimumIDMIS(ids=[0, 0, 1]).run(path_graph(3), Random(1))

    def test_registered(self):
        from repro.algorithms.registry import make_algorithm

        run = make_algorithm("local-minimum-id").run(
            gnp_random_graph(20, 0.3, Random(5)), Random(6)
        )
        run.verify()


class TestWorstCase:
    def test_adversarial_path_is_linear(self):
        """Increasing IDs along a path force one join per round: Θ(n)."""
        n = 40
        graph = path_graph(n)
        run = LocalMinimumIDMIS(ids=adversarial_path_ids(n)).run(
            graph, Random(7)
        )
        run.verify()
        assert run.rounds >= n // 2 - 1

    def test_randomized_algorithm_beats_adversarial_case(self):
        """The separation the paper's introduction is about."""
        n = 40
        graph = path_graph(n)
        deterministic = LocalMinimumIDMIS(ids=adversarial_path_ids(n)).run(
            graph, Random(8)
        )
        feedback_rounds = [
            FeedbackMIS().run(graph, Random(100 + t)).rounds
            for t in range(10)
        ]
        mean_feedback = sum(feedback_rounds) / len(feedback_rounds)
        assert mean_feedback < deterministic.rounds / 2
        assert mean_feedback < 8 * math.log2(n)

    def test_random_ids_typically_fast(self):
        """With random IDs the same rule finishes in O(log n) w.h.p."""
        graph = path_graph(60)
        rounds = [
            LocalMinimumIDMIS().run(graph, Random(t)).rounds
            for t in range(10)
        ]
        assert sum(rounds) / len(rounds) < 20
