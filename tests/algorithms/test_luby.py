"""Tests for the Luby baseline (both variants)."""

import math
from random import Random

import pytest

from repro.algorithms.luby import LubyMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
)


class TestConstruction:
    def test_variant_names(self):
        assert LubyMIS("permutation").name == "luby-permutation"
        assert LubyMIS("probability").name == "luby-probability"

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            LubyMIS("bogus")


@pytest.mark.parametrize("variant", ["permutation", "probability"])
class TestCorrectness:
    def test_empty_graph(self, variant):
        run = LubyMIS(variant).run(empty_graph(4), Random(1))
        run.verify()
        assert run.mis == {0, 1, 2, 3}
        assert run.rounds == 1

    def test_complete_graph(self, variant):
        run = LubyMIS(variant).run(complete_graph(10), Random(2))
        run.verify()
        assert run.mis_size == 1

    def test_path_and_cycle(self, variant):
        LubyMIS(variant).run(path_graph(9), Random(3)).verify()
        LubyMIS(variant).run(cycle_graph(9), Random(4)).verify()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, variant, seed):
        graph = gnp_random_graph(30, 0.4, Random(seed))
        LubyMIS(variant).run(graph, Random(seed + 9)).verify()

    def test_messages_accounted(self, variant):
        graph = gnp_random_graph(20, 0.5, Random(5))
        run = LubyMIS(variant).run(graph, Random(6))
        assert run.messages > 0
        bits_per_value = math.ceil(math.log2(20))
        assert run.bits == run.messages * bits_per_value


class TestPerformance:
    def test_few_rounds_on_random_graph(self):
        graph = gnp_random_graph(200, 0.5, Random(7))
        run = LubyMIS("permutation").run(graph, Random(8))
        run.verify()
        # Luby is O(log n) with small constants; generous band.
        assert run.rounds <= 4 * math.log2(200)

    def test_permutation_round_removes_conflict_free_minima(self):
        # On an empty graph every vertex is a local minimum: one round.
        run = LubyMIS("permutation").run(empty_graph(50), Random(9))
        assert run.rounds == 1

    def test_probability_variant_terminates_on_dense_graph(self):
        graph = gnp_random_graph(80, 0.9, Random(10))
        run = LubyMIS("probability").run(graph, Random(11))
        run.verify()
        assert run.rounds < 100
