"""Tests for the Métivier et al. bit-complexity baseline."""

from random import Random

import pytest

from repro.algorithms.metivier import MetivierMIS, _bits_to_separate
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import complete_graph, empty_graph, path_graph


class TestBitAccounting:
    def test_differ_in_top_bit(self):
        assert _bits_to_separate(0, 1 << 63) == 1

    def test_differ_in_bottom_bit(self):
        assert _bits_to_separate(0, 1) == 64

    def test_equal_values_cost_full_precision(self):
        assert _bits_to_separate(5, 5) == 64

    def test_shared_prefix(self):
        a = 0b1010 << 60
        b = 0b1011 << 60
        assert _bits_to_separate(a, b) == 4


class TestCorrectness:
    def test_empty_graph(self):
        run = MetivierMIS().run(empty_graph(5), Random(1))
        run.verify()
        assert run.rounds == 1
        assert run.bits == 0

    def test_complete_graph(self):
        run = MetivierMIS().run(complete_graph(12), Random(2))
        run.verify()
        assert run.mis_size == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        graph = gnp_random_graph(30, 0.4, Random(seed))
        MetivierMIS().run(graph, Random(seed + 77)).verify()

    def test_name(self):
        assert MetivierMIS().name == "metivier"


class TestBitComplexity:
    def test_bits_per_edge_modest(self):
        """The headline property: expected bits per channel is O(log n),
        and in practice small — first-round comparisons cost ~2*2=4 bits
        per edge on average (expected 2 bits to separate two uniforms)."""
        graph = gnp_random_graph(60, 0.5, Random(3))
        run = MetivierMIS().run(graph, Random(4))
        bits_per_edge = run.bits / graph.num_edges
        assert bits_per_edge < 30

    def test_path_bits(self):
        run = MetivierMIS().run(path_graph(40), Random(5))
        run.verify()
        assert run.bits > 0
        assert run.messages % 2 == 0  # both endpoints always send
