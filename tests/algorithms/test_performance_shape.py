"""Cross-algorithm performance-shape tests (small-scale Figure 3/5 facts).

These tests pin the relative ordering of the algorithms — the qualitative
content of the paper's evaluation — at sizes small enough for the unit
test budget.  The full-scale quantitative checks live in the benchmarks.
"""

import math
from random import Random

import pytest

from repro.algorithms.registry import make_algorithm
from repro.graphs.random_graphs import gnp_random_graph


def mean_rounds(name: str, graph, trials: int = 12, base_seed: int = 0) -> float:
    algorithm = make_algorithm(name)
    total = 0
    for t in range(trials):
        run = algorithm.run(graph, Random(base_seed + t))
        total += run.rounds
    return total / trials


def mean_beeps(name: str, graph, trials: int = 12, base_seed: int = 0) -> float:
    algorithm = make_algorithm(name)
    total = 0.0
    for t in range(trials):
        run = algorithm.run(graph, Random(base_seed + t))
        total += run.mean_beeps_per_node
    return total / trials


@pytest.fixture(scope="module")
def workload():
    return gnp_random_graph(80, 0.5, Random(17))


class TestRoundOrdering:
    def test_feedback_beats_sweep(self, workload):
        assert mean_rounds("feedback", workload) < mean_rounds(
            "afek-sweep", workload
        )

    def test_luby_fast(self, workload):
        assert mean_rounds("luby-permutation", workload) < 3 * math.log2(80)

    def test_beeping_slower_than_full_message_passing(self, workload):
        """One-bit beeps cost more rounds than full numeric messages —
        the price of the restricted model."""
        assert mean_rounds("luby-permutation", workload) <= mean_rounds(
            "feedback", workload
        )

    def test_sweep_within_polylog(self, workload):
        assert mean_rounds("afek-sweep", workload) < 3 * math.log2(80) ** 2


class TestBeepOrdering:
    def test_feedback_fewer_beeps_than_sweep(self, workload):
        assert mean_beeps("feedback", workload) < mean_beeps(
            "afek-sweep", workload
        )

    def test_feedback_beeps_near_paper_value(self, workload):
        assert 0.7 < mean_beeps("feedback", workload) < 1.8


class TestMISQuality:
    def test_all_algorithms_nontrivial_sets(self, workload):
        lower = workload.num_vertices / (workload.max_degree() + 1)
        for name in ("feedback", "afek-sweep", "luby-permutation", "greedy"):
            run = make_algorithm(name).run(workload, Random(23))
            assert run.mis_size >= lower
