"""Tests for the algorithm registry and the shared MISRun/MISAlgorithm API."""

from random import Random

import pytest

from repro.algorithms.base import MISRun
from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.graphs.structured import path_graph
from repro.graphs.validation import MISValidationError


class TestRegistry:
    def test_expected_names_present(self):
        names = available_algorithms()
        for expected in (
            "feedback",
            "afek-sweep",
            "afek-global",
            "luby-permutation",
            "luby-probability",
            "metivier",
            "greedy",
            "greedy-fixed",
        ):
            assert expected in names

    def test_names_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)

    def test_factory_name_matches_key(self):
        for name in available_algorithms():
            assert make_algorithm(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_algorithm("nope")

    def test_factories_return_fresh_instances(self):
        assert make_algorithm("feedback") is not make_algorithm("feedback")


class TestMISRun:
    def _run(self, mis):
        return MISRun(
            algorithm="test",
            graph=path_graph(4),
            mis=set(mis),
            rounds=1,
        )

    def test_verify_accepts_valid(self):
        assert self._run({0, 2}).verify() == {0, 2}

    def test_verify_rejects_invalid(self):
        with pytest.raises(MISValidationError):
            self._run({0, 1}).verify()

    def test_mis_size(self):
        assert self._run({1, 3}).mis_size == 2

    def test_mean_beeps_default_zero(self):
        assert self._run({0, 2}).mean_beeps_per_node == 0.0

    def test_repr_of_algorithm(self):
        algorithm = make_algorithm("feedback")
        assert "feedback" in repr(algorithm)


class TestUniformBehaviour:
    """Every registered algorithm must satisfy the same contract."""

    @pytest.mark.parametrize("name", [
        "feedback",
        "afek-sweep",
        "afek-global",
        "luby-permutation",
        "luby-probability",
        "metivier",
        "greedy",
        "greedy-fixed",
    ])
    def test_contract(self, name, random50):
        algorithm = make_algorithm(name)
        run = algorithm.run(random50, Random(99))
        assert run.algorithm == name
        assert run.rounds >= 1
        run.verify()
