"""Tests for convergence analysis."""

import math
from random import Random

import pytest

from repro.analysis.convergence import (
    active_series,
    empirical_half_life,
    fit_exponential_decay,
    inactivation_series,
    rounds_to_fraction,
)
from repro.beeping.metrics import RoundRecord


def _records(counts):
    records = []
    for t, (active, gone) in enumerate(counts):
        records.append(
            RoundRecord(
                round_index=t,
                active_before=active,
                beeps=0,
                joins=gone,
                retirements=0,
            )
        )
    return records


class TestSeries:
    def test_active_series(self):
        records = _records([(10, 4), (6, 6)])
        assert active_series(records) == [10, 6]

    def test_inactivation_series(self):
        records = _records([(10, 4), (6, 6)])
        assert inactivation_series(records) == [4, 6]


class TestDecayFit:
    def test_perfect_geometric(self):
        series = [int(1000 * 0.5 ** t) for t in range(8)]
        fit = fit_exponential_decay(series)
        assert fit is not None
        assert fit.rate == pytest.approx(0.5, abs=0.02)
        assert fit.r_squared > 0.999
        assert fit.half_life == pytest.approx(1.0, abs=0.05)

    def test_slow_decay(self):
        series = [int(1000 * 0.9 ** t) for t in range(20)]
        fit = fit_exponential_decay(series)
        assert fit.rate == pytest.approx(0.9, abs=0.02)
        assert fit.half_life == pytest.approx(math.log(0.5) / math.log(0.9), rel=0.1)

    def test_zero_terminates_prefix(self):
        fit = fit_exponential_decay([100, 50, 0, 0])
        assert fit is not None
        assert fit.rate == pytest.approx(0.5, abs=0.01)

    def test_too_short(self):
        assert fit_exponential_decay([5]) is None
        assert fit_exponential_decay([]) is None
        assert fit_exponential_decay([0, 0]) is None

    def test_constant_series_infinite_half_life(self):
        fit = fit_exponential_decay([10, 10, 10, 10])
        assert fit is not None
        assert fit.rate == pytest.approx(1.0)
        assert fit.half_life == math.inf


class TestHalfLife:
    def test_exact(self):
        assert empirical_half_life([100, 80, 50, 20]) == 2

    def test_never_halves(self):
        assert empirical_half_life([10, 9, 8]) is None

    def test_empty(self):
        assert empirical_half_life([]) is None

    def test_rounds_to_fraction(self):
        series = [100, 60, 30, 9, 0]
        assert rounds_to_fraction(series, 0.5) == 2
        assert rounds_to_fraction(series, 0.1) == 3
        assert rounds_to_fraction(series, 0.0) == 4

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            rounds_to_fraction([10], 1.5)


class TestOnRealRuns:
    def test_feedback_run_decays_geometrically(self):
        from repro.algorithms.feedback import FeedbackMIS
        from repro.graphs.random_graphs import gnp_random_graph

        graph = gnp_random_graph(120, 0.3, Random(5))
        run = FeedbackMIS().run(graph, Random(6))
        series = active_series(run.simulation.metrics.round_records)
        assert series[0] == 120
        fit = fit_exponential_decay(series)
        assert fit is not None
        # The active set shrinks by a constant factor per round on average.
        assert fit.rate < 0.95
        half = empirical_half_life(series)
        assert half is not None
        assert half <= run.rounds
