"""Tests for the exact Markov-chain analysis of the feedback algorithm."""

import statistics

import pytest

from repro.analysis.markov import (
    expected_rounds_complete_graph,
    expected_rounds_k2,
    k2_transition_exponent,
    simulated_rounds_k2,
)


class TestTransition:
    def test_hear_increments(self):
        assert k2_transition_exponent(3, heard=True) == 4

    def test_silence_decrements_with_floor(self):
        assert k2_transition_exponent(3, heard=False) == 2
        assert k2_transition_exponent(1, heard=False) == 1


class TestExactK2:
    def test_value_stable_under_truncation(self):
        coarse = expected_rounds_k2(truncation=20)
        fine = expected_rounds_k2(truncation=60)
        assert coarse == pytest.approx(fine, abs=1e-6)

    def test_known_value(self):
        """Regression pin: E[rounds on K_2] = 2.12496..."""
        assert expected_rounds_k2() == pytest.approx(2.124965, abs=1e-4)

    def test_truncation_validation(self):
        with pytest.raises(ValueError):
            expected_rounds_k2(truncation=1)

    def test_matches_common_exponent_model(self):
        """On K_2 the exponents never diverge, so the common-exponent
        approximation is exact."""
        assert expected_rounds_complete_graph(2) == pytest.approx(
            expected_rounds_k2(), abs=1e-9
        )


class TestAgainstSimulation:
    def test_k2_simulation_matches_exact(self):
        """The strongest cross-validation in the suite: closed-form vs
        Monte Carlo.  5000 trials give a standard error of ~0.02."""
        exact = expected_rounds_k2()
        rounds = simulated_rounds_k2(5000, seed=13)
        mean = statistics.mean(rounds)
        sem = statistics.stdev(rounds) / len(rounds) ** 0.5
        assert abs(mean - exact) < 5 * sem + 0.02

    @pytest.mark.parametrize("n", [3, 6, 12])
    def test_common_exponent_model_tracks_simulation(self, n):
        from random import Random

        from repro.algorithms.feedback import FeedbackMIS
        from repro.graphs.structured import complete_graph

        graph = complete_graph(n)
        algorithm = FeedbackMIS()
        rounds = [
            algorithm.run(graph, Random(1000 + t)).rounds
            for t in range(400)
        ]
        predicted = expected_rounds_complete_graph(n)
        mean = statistics.mean(rounds)
        # The common-exponent chain is an approximation for n > 2; it
        # should land within 25% of the simulated mean.
        assert mean == pytest.approx(predicted, rel=0.25)


class TestGrowth:
    def test_logarithmic_growth(self):
        """Expected rounds on K_n grow like log n (Theorem 2 on cliques)."""
        import math

        values = {
            n: expected_rounds_complete_graph(n) for n in (4, 16, 64, 256)
        }
        # Consecutive quadruplings of n add a roughly constant increment.
        increments = [
            values[16] - values[4],
            values[64] - values[16],
            values[256] - values[64],
        ]
        for increment in increments:
            assert 0.5 < increment < 4.0
        spread = max(increments) - min(increments)
        assert spread < 1.0

    def test_n_validation(self):
        with pytest.raises(ValueError):
            expected_rounds_complete_graph(1)
