"""Tests for the scaling-law regression fits."""

import math
from random import Random

import pytest

from repro.analysis.regression import (
    best_model,
    fit_linear,
    fit_log2,
    fit_log2_squared,
    r_squared,
)


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])

    def test_constant_feature_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            fit_linear([2, 2, 2], [1, 2, 3])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1])

    def test_format(self):
        text = fit_linear([1, 2, 3], [2, 4, 6]).format()
        assert "x" in text and "R²" in text


class TestLogFits:
    def test_recovers_log_law(self):
        ns = [50, 100, 200, 400, 800]
        ys = [2.5 * math.log2(n) + 1.0 for n in ns]
        fit = fit_log2(ns, ys)
        assert fit.slope == pytest.approx(2.5)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.feature_name == "log2(n)"

    def test_recovers_log_squared_law(self):
        ns = [50, 100, 200, 400, 800]
        ys = [1.0 * math.log2(n) ** 2 for n in ns]
        fit = fit_log2_squared(ns, ys)
        assert fit.slope == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = Random(1)
        ns = list(range(50, 1001, 50))
        ys = [2.5 * math.log2(n) + rng.gauss(0, 0.5) for n in ns]
        fit = fit_log2(ns, ys)
        assert fit.slope == pytest.approx(2.5, abs=0.5)
        assert fit.r_squared > 0.8


class TestModelSelection:
    def test_log_data_prefers_log_model(self):
        ns = [50, 100, 200, 400, 800, 1000]
        ys = [2.5 * math.log2(n) for n in ns]
        name, fit = best_model(ns, ys)
        assert name == "log2"
        assert fit.r_squared == pytest.approx(1.0)

    def test_log_squared_data_prefers_square_model(self):
        ns = [50, 100, 200, 400, 800, 1000]
        ys = [math.log2(n) ** 2 for n in ns]
        name, _fit = best_model(ns, ys)
        assert name == "log2_squared"


class TestRSquared:
    def test_perfect_prediction(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_prediction_is_zero(self):
        assert r_squared([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_constant_target(self):
        assert r_squared([5, 5], [5, 5]) == 1.0
        assert r_squared([5, 5], [4, 6]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            r_squared([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1, 2], [1])
