"""Tests for summary statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.statistics import (
    confidence_interval,
    mean,
    median,
    sample_std,
    standard_error,
    summarize,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_std_known_value(self):
        assert sample_std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            math.sqrt(32 / 7)
        )

    def test_std_of_singleton_is_zero(self):
        assert sample_std([5.0]) == 0.0

    def test_standard_error(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert standard_error(values) == pytest.approx(
            sample_std(values) / 2.0
        )

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 3, 2]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


class TestConfidenceInterval:
    def test_symmetric_about_mean(self):
        low, high = confidence_interval([1, 2, 3, 4, 5])
        assert (low + high) / 2 == pytest.approx(3.0)

    def test_wider_at_higher_level(self):
        values = [1, 2, 3, 4, 5, 6]
        low95, high95 = confidence_interval(values, 0.95)
        low99, high99 = confidence_interval(values, 0.99)
        assert high99 - low99 > high95 - low95

    def test_unsupported_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2], level=0.5)

    def test_degenerate_sample(self):
        low, high = confidence_interval([7.0])
        assert low == high == 7.0


class TestSummarize:
    def test_fields(self):
        stats = summarize([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5
        assert stats.std == pytest.approx(sample_std([1, 2, 3, 4]))

    def test_format(self):
        assert summarize([1.0, 3.0]).format() == "2.00 ± 1.41 (n=2)"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_summary_ordering_invariants(values):
    stats = summarize(values)
    # Tolerance: summing floats can carry the mean a few ulps past the
    # extremes (e.g. mean([0.05]*3) > 0.05).
    slack = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
    assert stats.std >= 0.0
    assert stats.sem <= stats.std + 1e-9


@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=30),
    st.floats(min_value=-10, max_value=10),
)
def test_mean_shift_equivariance(values, shift):
    shifted = [v + shift for v in values]
    assert mean(shifted) == pytest.approx(mean(values) + shift, abs=1e-6)
    assert sample_std(shifted) == pytest.approx(sample_std(values), abs=1e-6)
