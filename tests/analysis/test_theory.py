"""Tests for the theoretical reference quantities."""

import math

import pytest

from repro.analysis.theory import (
    MAX_CLIQUE_PROGRESS_BOUND,
    clique_progress_probability,
    clique_progress_upper_bound,
    expected_rounds_complete_graph_first_join,
    figure3_feedback_reference,
    figure3_sweep_reference,
    optimal_clique_probability,
)


class TestReferenceCurves:
    def test_values_at_1024(self):
        assert figure3_sweep_reference(1024) == pytest.approx(100.0)
        assert figure3_feedback_reference(1024) == pytest.approx(25.0)

    def test_degenerate(self):
        assert figure3_sweep_reference(1) == 0.0
        assert figure3_feedback_reference(0.5) == 0.0

    def test_sweep_dominates_eventually(self):
        # log^2 n > 2.5 log n exactly when log n > 2.5, i.e. n > ~5.66.
        assert figure3_sweep_reference(4) < figure3_feedback_reference(4)
        assert figure3_sweep_reference(64) > figure3_feedback_reference(64)


class TestCliqueProgress:
    def test_exact_formula(self):
        assert clique_progress_probability(1, 0.5) == 0.5
        assert clique_progress_probability(2, 0.5) == pytest.approx(0.5)
        assert clique_progress_probability(4, 0.25) == pytest.approx(
            4 * 0.25 * 0.75 ** 3
        )

    def test_maximised_near_one_over_d(self):
        d = 20
        p_star = optimal_clique_probability(d)
        best = clique_progress_probability(d, p_star)
        for p in (p_star / 3, p_star * 3):
            assert clique_progress_probability(d, p) < best

    def test_upper_bound_dominates(self):
        for d in (2, 3, 5, 10, 50):
            for p in (0.01, 0.1, 0.3, 0.5, 0.9):
                assert clique_progress_probability(
                    d, p
                ) <= clique_progress_upper_bound(d, p) + 1e-12

    def test_paper_bound_holds_for_d_above_2(self):
        """The proof's bound 3/(2e) on d·p·e^{-(d-1)p} for d > 2."""
        for d in range(3, 60):
            for i in range(1, 100):
                p = i / 100
                assert (
                    clique_progress_upper_bound(d, p)
                    <= MAX_CLIQUE_PROGRESS_BOUND + 1e-12
                )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            clique_progress_probability(0, 0.5)
        with pytest.raises(ValueError):
            clique_progress_probability(3, 1.5)
        with pytest.raises(ValueError):
            clique_progress_upper_bound(0, 0.5)
        with pytest.raises(ValueError):
            optimal_clique_probability(0)


class TestCompleteGraphSlowness:
    def test_paper_example(self):
        """Section 4: for K_n at p=1/2 the per-step success probability is
        n/2^n, so the expected wait is 2^n/n."""
        n = 20
        expected = expected_rounds_complete_graph_first_join(n)
        assert expected == pytest.approx(2 ** n / n)

    def test_infinite_when_impossible(self):
        assert expected_rounds_complete_graph_first_join(5, 0.0) == math.inf

    def test_fast_at_good_probability(self):
        n = 64
        good = expected_rounds_complete_graph_first_join(n, 1.0 / n)
        bad = expected_rounds_complete_graph_first_join(n, 0.5)
        assert good < 4
        assert bad > 1e10
