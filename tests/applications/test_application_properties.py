"""Hypothesis properties of the application layer, on both engines.

Every reduction's defining invariants — proper/complete colouring within
the Δ+1 bound, domination plus independence, matching maximality, the
(α, β)-ruling conditions — must hold over random graphs and seeds
regardless of which engine computed the output: the per-node reference
reductions or the vectorised fleet kernels.  The verifiers themselves
come from the application modules, so a property failure localises to
the engine, not the check.
"""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.coloring import mis_coloring, verify_coloring
from repro.applications.dominating import (
    mis_dominating_set,
    verify_dominating_set,
)
from repro.applications.matching import mis_matching, verify_maximal_matching
from repro.applications.ruling_sets import ruling_set, verify_ruling_set
from repro.beeping.rng import derive_seed_block, spawn_rng
from repro.engine.applications import (
    ApplicationFleetSimulator,
    ColoringRule,
    DominatingSetRule,
    MatchingRule,
    RulingSetRule,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.validation import verify_mis

ENGINES = ("reference", "fleet")

graph_params = {
    "n": st.integers(min_value=1, max_value=26),
    "p": st.floats(min_value=0.0, max_value=0.5),
    "graph_seed": st.integers(min_value=0, max_value=100),
    "run_seed": st.integers(min_value=0, max_value=100),
    "engine": st.sampled_from(ENGINES),
}


def _fleet_run(graph, rule, run_seed):
    seeds = derive_seed_block(run_seed, 0, count=1)
    return ApplicationFleetSimulator(graph, rule).run_fleet(seeds)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(**graph_params)
def test_coloring_is_proper_complete_and_bounded(
    n, p, graph_seed, run_seed, engine
):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    if engine == "reference":
        result = mis_coloring(graph, spawn_rng(run_seed, 0))
        colors, num_colors = result.colors, result.num_colors
    else:
        run = _fleet_run(graph, ColoringRule(), run_seed)
        colors, num_colors = run.colors_list(0), run.num_colors(0)
    assert verify_coloring(graph, colors) == num_colors
    assert num_colors <= graph.max_degree() + 1


@settings(max_examples=40, deadline=None, derandomize=True)
@given(**graph_params)
def test_dominating_set_is_independent_and_dominating(
    n, p, graph_seed, run_seed, engine
):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    if engine == "reference":
        chosen = mis_dominating_set(graph, spawn_rng(run_seed, 0))
    else:
        chosen = _fleet_run(graph, DominatingSetRule(), run_seed).chosen_set(0)
    verify_mis(graph, chosen)
    verify_dominating_set(graph, chosen)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(**graph_params)
def test_matching_is_maximal(n, p, graph_seed, run_seed, engine):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    if engine == "reference":
        matching = mis_matching(graph, spawn_rng(run_seed, 0)).matching
    else:
        rule = MatchingRule()
        run = _fleet_run(graph, rule, run_seed)
        matching = rule.matching_edges(graph, run, 0)
    verify_maximal_matching(graph, matching)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(**graph_params)
def test_ruling_set_satisfies_alpha_beta(n, p, graph_seed, run_seed, engine):
    graph = gnp_random_graph(n, p, Random(graph_seed))
    if engine == "reference":
        chosen = ruling_set(graph, 3, spawn_rng(run_seed, 0))
    else:
        chosen = _fleet_run(graph, RulingSetRule(3), run_seed).chosen_set(0)
    verify_ruling_set(graph, chosen, 3, 2)
