"""Tests for MIS-based vertex colouring."""

from random import Random

import pytest

from repro.algorithms.greedy import SequentialGreedyMIS
from repro.algorithms.luby import LubyMIS
from repro.applications.coloring import mis_coloring, verify_coloring
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
)


class TestVerifyColoring:
    def test_accepts_proper(self):
        assert verify_coloring(path_graph(3), [0, 1, 0]) == 2

    def test_rejects_monochromatic_edge(self):
        with pytest.raises(AssertionError, match="monochromatic"):
            verify_coloring(path_graph(2), [3, 3])

    def test_rejects_uncoloured(self):
        with pytest.raises(AssertionError, match="uncoloured"):
            verify_coloring(path_graph(2), [0, -1])

    def test_rejects_wrong_length(self):
        with pytest.raises(AssertionError):
            verify_coloring(path_graph(3), [0, 1])


class TestMisColoring:
    def test_empty_graph_one_color(self):
        result = mis_coloring(empty_graph(5), Random(1))
        assert result.num_colors == 1
        assert result.colors == [0] * 5

    def test_complete_graph_needs_n_colors(self):
        result = mis_coloring(complete_graph(6), Random(2))
        assert result.num_colors == 6

    def test_even_cycle_two_or_three_colors(self):
        result = mis_coloring(cycle_graph(10), Random(3))
        assert result.num_colors in (2, 3)  # <= max_degree + 1 = 3

    def test_bipartite_within_bound(self):
        graph = complete_bipartite_graph(4, 6)
        result = mis_coloring(graph, Random(4))
        assert result.num_colors <= graph.max_degree() + 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graph_bound(self, seed):
        graph = gnp_random_graph(30, 0.3, Random(seed))
        result = mis_coloring(graph, Random(seed + 10))
        verify_coloring(graph, result.colors)
        assert result.num_colors <= graph.max_degree() + 1

    @pytest.mark.parametrize("seed", range(5))
    def test_num_colors_is_the_verified_count(self, seed):
        # Regression: num_colors used to be the peeling loop counter with
        # verify_coloring's return value discarded; the two are now the
        # same number by construction.
        graph = gnp_random_graph(30, 0.3, Random(seed))
        result = mis_coloring(graph, Random(seed + 20))
        assert result.num_colors == len(set(result.colors))
        assert result.num_colors == verify_coloring(graph, result.colors)

    def test_layers_partition_vertices(self):
        graph = gnp_random_graph(25, 0.4, Random(6))
        result = mis_coloring(graph, Random(7))
        seen = sorted(v for layer in result.layers for v in layer)
        assert seen == list(graph.vertices())
        assert len(result.layers) == result.num_colors

    def test_color_classes(self):
        result = mis_coloring(path_graph(4), Random(8))
        classes = result.color_classes()
        assert sum(len(c) for c in classes.values()) == 4

    def test_rounds_accumulated(self):
        graph = gnp_random_graph(25, 0.4, Random(9))
        result = mis_coloring(graph, Random(10))
        assert result.total_rounds >= result.num_colors

    @pytest.mark.parametrize(
        "algorithm_factory", [SequentialGreedyMIS, lambda: LubyMIS()]
    )
    def test_works_with_other_algorithms(self, algorithm_factory):
        graph = gnp_random_graph(25, 0.4, Random(11))
        result = mis_coloring(graph, Random(12), algorithm=algorithm_factory())
        assert result.num_colors <= graph.max_degree() + 1
