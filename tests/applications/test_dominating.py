"""Tests for dominating-set construction."""

from random import Random

import pytest

from repro.applications.dominating import (
    greedy_dominating_set,
    mis_dominating_set,
    verify_dominating_set,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graphs.validation import is_independent_set


class TestVerify:
    def test_accepts_valid(self):
        assert verify_dominating_set(star_graph(4), {0}) == {0}

    def test_rejects_invalid(self):
        with pytest.raises(AssertionError, match="not dominated"):
            verify_dominating_set(path_graph(5), {0})

    def test_empty_graph(self):
        assert verify_dominating_set(empty_graph(0), set()) == set()


class TestMisDominatingSet:
    @pytest.mark.parametrize("seed", range(5))
    def test_dominating_and_independent(self, seed):
        graph = gnp_random_graph(30, 0.3, Random(seed))
        chosen = mis_dominating_set(graph, Random(seed + 40))
        verify_dominating_set(graph, chosen)
        assert is_independent_set(graph, chosen)

    def test_star(self):
        chosen = mis_dominating_set(star_graph(8), Random(1))
        assert chosen == {0} or chosen == set(range(1, 9))


class TestGreedyDominatingSet:
    def test_star_picks_hub(self):
        assert greedy_dominating_set(star_graph(9)) == {0}

    def test_path(self):
        chosen = greedy_dominating_set(path_graph(9))
        verify_dominating_set(path_graph(9), chosen)
        assert len(chosen) == 3  # ceil(9/3): greedy is optimal on paths

    def test_complete_graph_one_vertex(self):
        assert len(greedy_dominating_set(complete_graph(7))) == 1

    def test_isolated_vertices_all_chosen(self):
        assert greedy_dominating_set(empty_graph(4)) == {0, 1, 2, 3}

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_not_larger_than_mis_by_much(self, seed):
        """Greedy optimises size; the MIS trades size for independence.
        Greedy should never be dramatically larger."""
        graph = gnp_random_graph(30, 0.3, Random(seed))
        greedy = greedy_dominating_set(graph)
        mis = mis_dominating_set(graph, Random(seed + 50))
        assert len(greedy) <= len(mis) + 2

    def test_cycle(self):
        chosen = greedy_dominating_set(cycle_graph(12))
        verify_dominating_set(cycle_graph(12), chosen)
        assert len(chosen) <= 5
