"""Tests for MIS-based maximal matching."""

from random import Random

import pytest

from repro.applications.matching import (
    line_graph,
    mis_matching,
    verify_maximal_matching,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_graph,
)


class TestLineGraph:
    def test_path(self):
        lg, edges = line_graph(path_graph(4))
        # P4 has 3 edges; consecutive edges share a vertex -> L(P4) = P3.
        assert lg.num_vertices == 3
        assert lg.num_edges == 2
        assert edges == [(0, 1), (1, 2), (2, 3)]

    def test_star_line_graph_is_clique(self):
        lg, _edges = line_graph(star_graph(5))
        assert lg.num_vertices == 5
        assert lg.num_edges == 10  # K5

    def test_triangle_line_graph_is_triangle(self):
        lg, _edges = line_graph(complete_graph(3))
        assert lg.num_vertices == 3
        assert lg.num_edges == 3

    def test_tolerates_non_normalised_edge_order(self):
        # Regression: the index was keyed by raw edges() tuples while the
        # lookup normalised to (min, max), so a subclass yielding (v, u)
        # pairs KeyError'd.  Both sides are normalised now.
        class ReversedEdgeGraph(Graph):
            def edges(self):
                for u, v in super().edges():
                    yield (v, u)

        base = gnp_random_graph(12, 0.4, Random(7))
        reversed_graph = ReversedEdgeGraph(
            base.num_vertices, base.edges()
        )
        lg, edges = line_graph(reversed_graph)
        base_lg, base_edges = line_graph(base)
        assert lg == base_lg
        assert edges == base_edges  # normalised (u, v) with u <= v

    def test_empty(self):
        lg, edges = line_graph(empty_graph(4))
        assert lg.num_vertices == 0
        assert edges == []

    def test_edge_count_formula(self):
        # |E(L(G))| = sum_v C(deg(v), 2).
        graph = gnp_random_graph(15, 0.4, Random(1))
        lg, _edges = line_graph(graph)
        expected = sum(
            graph.degree(v) * (graph.degree(v) - 1) // 2
            for v in graph.vertices()
        )
        assert lg.num_edges == expected


class TestVerifyMatching:
    def test_accepts_valid(self):
        graph = path_graph(4)
        assert verify_maximal_matching(graph, {(0, 1), (2, 3)}) == {
            (0, 1),
            (2, 3),
        }

    def test_rejects_shared_endpoint(self):
        graph = path_graph(3)
        with pytest.raises(AssertionError, match="shares an endpoint"):
            verify_maximal_matching(graph, {(0, 1), (1, 2)})

    def test_rejects_non_edge(self):
        graph = path_graph(3)
        with pytest.raises(AssertionError, match="not an edge"):
            verify_maximal_matching(graph, {(0, 2)})

    def test_rejects_non_maximal(self):
        graph = path_graph(5)
        with pytest.raises(AssertionError, match="not maximal"):
            verify_maximal_matching(graph, {(1, 2)})


class TestMisMatching:
    def test_empty_graph(self):
        result = mis_matching(empty_graph(5), Random(1))
        assert result.matching == set()
        assert result.size == 0

    def test_single_edge(self):
        result = mis_matching(Graph(2, [(0, 1)]), Random(2))
        assert result.matching == {(0, 1)}

    def test_star_matches_one_edge(self):
        result = mis_matching(star_graph(6), Random(3))
        assert result.size == 1

    def test_even_cycle(self):
        result = mis_matching(cycle_graph(8), Random(4))
        assert 3 <= result.size <= 4

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        graph = gnp_random_graph(20, 0.3, Random(seed))
        result = mis_matching(graph, Random(seed + 20))
        verify_maximal_matching(graph, result.matching)
        assert len(result.matched_vertices()) == 2 * result.size

    def test_matching_at_least_half_maximum(self):
        """A maximal matching is a 2-approximation of the maximum one;
        check against the trivial upper bound n/2."""
        graph = complete_graph(10)
        result = mis_matching(graph, Random(30))
        assert result.size >= 10 // 4
