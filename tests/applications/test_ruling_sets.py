"""Tests for graph powers and ruling sets."""

from random import Random

import pytest

from repro.applications.ruling_sets import (
    graph_power,
    hop_distance,
    ruling_set,
    verify_ruling_set,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.graphs.structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)


class TestGraphPower:
    def test_power_one_is_identity(self, c5):
        assert graph_power(c5, 1) == c5

    def test_path_squared(self):
        squared = graph_power(path_graph(5), 2)
        assert squared.has_edge(0, 2)
        assert squared.has_edge(0, 1)
        assert not squared.has_edge(0, 3)

    def test_cycle_power_saturates(self):
        g = cycle_graph(7)
        assert graph_power(g, 3) == complete_graph(7)

    def test_disconnected_components_stay_apart(self):
        g = Graph(4, [(0, 1), (2, 3)])
        powered = graph_power(g, 5)
        assert not powered.has_edge(0, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            graph_power(path_graph(3), 0)


class TestHopDistance:
    def test_path_distances(self):
        g = path_graph(5)
        assert hop_distance(g, 0, 4) == 4
        assert hop_distance(g, 2, 2) == 0

    def test_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert hop_distance(g, 0, 2) is None


class TestVerifyRulingSet:
    def test_mis_is_2_1_ruling(self, p4):
        assert verify_ruling_set(p4, {0, 2}, 2, 1) == {0, 2}

    def test_too_close_rejected(self):
        with pytest.raises(AssertionError, match="distance"):
            verify_ruling_set(path_graph(4), {0, 1}, 2, 1)

    def test_uncovered_rejected(self):
        with pytest.raises(AssertionError, match="farther"):
            verify_ruling_set(path_graph(7), {0}, 2, 1)


class TestRulingSet:
    def test_alpha_two_is_mis(self, random50):
        from repro.graphs.validation import is_maximal_independent_set

        chosen = ruling_set(random50, 2, Random(1))
        assert is_maximal_independent_set(random50, chosen)

    @pytest.mark.parametrize("alpha", [2, 3, 4])
    def test_grid_ruling_sets(self, alpha):
        graph = grid_graph(7, 7)
        chosen = ruling_set(graph, alpha, Random(alpha))
        verify_ruling_set(graph, chosen, alpha, alpha - 1)
        assert chosen

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graph_three_ruling(self, seed):
        graph = gnp_random_graph(30, 0.15, Random(seed))
        chosen = ruling_set(graph, 3, Random(seed + 9))
        verify_ruling_set(graph, chosen, 3, 2)

    def test_tree_ruling(self):
        tree = random_tree(40, Random(5))
        chosen = ruling_set(tree, 4, Random(6))
        verify_ruling_set(tree, chosen, 4, 3)

    def test_higher_alpha_gives_sparser_sets(self):
        graph = grid_graph(8, 8)
        mis = ruling_set(graph, 2, Random(7))
        sparse = ruling_set(graph, 4, Random(8))
        assert len(sparse) < len(mis)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ruling_set(path_graph(3), 1, Random(1))
