"""Unit tests for beep delivery and fault injection."""

from random import Random

from repro.beeping.channel import BeepChannel
from repro.beeping.faults import FaultModel
from repro.graphs.structured import complete_graph, path_graph, star_graph


class TestFaultFreeDelivery:
    def test_hears_adjacent_beep(self):
        channel = BeepChannel(path_graph(3))
        heard = channel.deliver({0}, {0, 1, 2}, Random(1))
        assert heard == {1}

    def test_beeper_does_not_hear_itself(self):
        channel = BeepChannel(path_graph(2))
        heard = channel.deliver({0}, {0, 1}, Random(1))
        assert 0 not in heard

    def test_multiple_beepers(self):
        channel = BeepChannel(path_graph(4))
        heard = channel.deliver({0, 3}, {0, 1, 2, 3}, Random(1))
        assert heard == {1, 2}

    def test_only_listeners_reported(self):
        channel = BeepChannel(star_graph(4))
        heard = channel.deliver({0}, {1, 2}, Random(1))
        assert heard == {1, 2}

    def test_no_beepers(self):
        channel = BeepChannel(complete_graph(4))
        assert channel.deliver(set(), {0, 1, 2, 3}, Random(1)) == set()

    def test_reliable_or(self):
        channel = BeepChannel(path_graph(3))
        assert channel.reliable_or({0}, 1)
        assert not channel.reliable_or({0}, 2)


class TestBeepLoss:
    def test_total_loss_silences_channel(self):
        channel = BeepChannel(
            complete_graph(5), FaultModel(beep_loss_probability=1.0)
        )
        heard = channel.deliver({0, 1}, set(range(5)), Random(1))
        assert heard == set()

    def test_zero_loss_equals_fault_free(self):
        graph = complete_graph(6)
        lossless = BeepChannel(graph, FaultModel(beep_loss_probability=0.0))
        plain = BeepChannel(graph)
        beepers = {0, 3}
        listeners = set(range(6))
        assert lossless.deliver(beepers, listeners, Random(2)) == plain.deliver(
            beepers, listeners, Random(2)
        )

    def test_partial_loss_drops_some_deliveries(self):
        graph = star_graph(200)
        channel = BeepChannel(graph, FaultModel(beep_loss_probability=0.5))
        heard = channel.deliver({0}, set(range(1, 201)), Random(3))
        # Each leaf independently hears with probability 1/2.
        assert 50 < len(heard) < 150

    def test_loss_is_per_edge_not_per_beep(self):
        # With two beeping neighbours and 50% loss, a listener hears with
        # probability 3/4; over many trials some rounds must still deliver.
        graph = path_graph(3)  # 1 listens to 0 and 2
        channel = BeepChannel(graph, FaultModel(beep_loss_probability=0.5))
        outcomes = [
            1 in channel.deliver({0, 2}, {1}, Random(seed))
            for seed in range(200)
        ]
        hear_rate = sum(outcomes) / len(outcomes)
        assert 0.6 < hear_rate < 0.9


class TestSpuriousBeeps:
    def test_certain_spurious_fills_listeners(self):
        channel = BeepChannel(
            path_graph(4), FaultModel(spurious_beep_probability=1.0)
        )
        heard = channel.deliver(set(), {0, 1, 2, 3}, Random(1))
        assert heard == {0, 1, 2, 3}

    def test_spurious_rate(self):
        channel = BeepChannel(
            star_graph(300), FaultModel(spurious_beep_probability=0.2)
        )
        heard = channel.deliver(set(), set(range(1, 301)), Random(4))
        assert 30 < len(heard) < 100

    def test_real_beeps_unaffected(self):
        channel = BeepChannel(
            path_graph(2), FaultModel(spurious_beep_probability=0.5)
        )
        heard = channel.deliver({0}, {0, 1}, Random(5))
        assert 1 in heard


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        channel = BeepChannel(
            complete_graph(20),
            FaultModel(beep_loss_probability=0.3, spurious_beep_probability=0.1),
        )
        a = channel.deliver({0, 5, 9}, set(range(20)), Random(42))
        b = channel.deliver({0, 5, 9}, set(range(20)), Random(42))
        assert a == b

    def test_fault_free_consumes_no_randomness(self):
        channel = BeepChannel(complete_graph(5))
        rng = Random(1)
        channel.deliver({0}, set(range(5)), rng)
        fresh = Random(1)
        assert rng.random() == fresh.random()
