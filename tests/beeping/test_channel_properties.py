"""Property-based tests for the beep channel."""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.channel import BeepChannel
from repro.beeping.faults import FaultModel
from repro.graphs.random_graphs import gnp_random_graph


@st.composite
def channel_cases(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    graph_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    graph = gnp_random_graph(n, p, Random(graph_seed))
    vertices = list(range(n))
    beepers = set(draw(st.lists(st.sampled_from(vertices), max_size=n)))
    listeners = set(draw(st.lists(st.sampled_from(vertices), max_size=n)))
    return graph, beepers, listeners


@given(channel_cases())
@settings(max_examples=60, deadline=None)
def test_heard_is_subset_of_listeners(case):
    graph, beepers, listeners = case
    channel = BeepChannel(graph)
    heard = channel.deliver(beepers, listeners, Random(1))
    assert heard <= listeners


@given(channel_cases())
@settings(max_examples=60, deadline=None)
def test_fault_free_heard_is_exact_neighbor_or(case):
    graph, beepers, listeners = case
    channel = BeepChannel(graph)
    heard = channel.deliver(beepers, listeners, Random(1))
    expected = {
        v
        for v in listeners
        if any(w in beepers for w in graph.neighbors(v))
    }
    assert heard == expected


@given(channel_cases(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_losses_only_remove_and_spurious_only_add(case, seed):
    graph, beepers, listeners = case
    clean = BeepChannel(graph).deliver(beepers, listeners, Random(seed))
    lossy = BeepChannel(
        graph, FaultModel(beep_loss_probability=0.5)
    ).deliver(beepers, listeners, Random(seed))
    assert lossy <= clean
    noisy = BeepChannel(
        graph, FaultModel(spurious_beep_probability=0.5)
    ).deliver(beepers, listeners, Random(seed))
    assert clean <= noisy


@given(channel_cases())
@settings(max_examples=40, deadline=None)
def test_reliable_or_consistent_with_deliver(case):
    graph, beepers, listeners = case
    channel = BeepChannel(graph)
    heard = channel.deliver(beepers, listeners, Random(2))
    for v in listeners:
        assert channel.reliable_or(beepers, v) == (v in heard)
