"""Unit tests for trace events."""

import pytest

from repro.beeping.events import RoundEvent, Trace


def _round(index, beepers=(), heard=(), joined=(), retired=()):
    return RoundEvent(
        round_index=index,
        beepers=frozenset(beepers),
        heard=frozenset(heard),
        joined=frozenset(joined),
        retired=frozenset(retired),
    )


class TestTrace:
    def test_append_in_order(self):
        trace = Trace()
        trace.append_round(_round(0))
        trace.append_round(_round(1))
        assert trace.num_rounds == 2

    def test_out_of_order_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="out of order"):
            trace.append_round(_round(3))

    def test_joins_extracted(self):
        trace = Trace()
        trace.append_round(_round(0, joined={5, 2}))
        assert [(e.round_index, e.vertex) for e in trace.joins] == [
            (0, 2),
            (0, 5),
        ]

    def test_join_round_of(self):
        trace = Trace()
        trace.append_round(_round(0))
        trace.append_round(_round(1, joined={7}))
        assert trace.join_round_of(7) == 1
        assert trace.join_round_of(3) is None

    def test_beeps_of(self):
        trace = Trace()
        trace.append_round(_round(0, beepers={1}))
        trace.append_round(_round(1, beepers={1, 2}))
        trace.append_round(_round(2, beepers={2}))
        assert trace.beeps_of(1) == [0, 1]
        assert trace.beeps_of(2) == [1, 2]
        assert trace.beeps_of(9) == []

    def test_retirements(self):
        trace = Trace()
        trace.append_retirement(4, vertex=3, cause=8)
        event = trace.retirements[0]
        assert (event.round_index, event.vertex, event.cause) == (4, 3, 8)

    def test_probability_recording_flag(self):
        assert Trace().record_probabilities is False
        assert Trace(record_probabilities=True).record_probabilities is True
